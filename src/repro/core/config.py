"""Configuration for the DeCloud double auction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional

from repro.common.errors import ValidationError
from repro.market.location import grid_columns
from repro.market.resources import CRITICAL_RESOURCES


@dataclass(frozen=True)
class ShardPlan:
    """How a block is partitioned into concurrent zone-local auctions.

    Attaching a plan to :class:`AuctionConfig` (``sharding=...``) makes
    :class:`~repro.core.auction.DecloudAuction` bucket the block's bids
    into zone shards, run the *entire* pipeline (match -> cluster ->
    normalize -> assemble -> clear) per shard — concurrently when
    ``shard_workers > 1`` — and then pool every shard's unmatched bids
    into one cross-zone *spillover* auction (see
    :mod:`repro.core.sharding`).

    Attributes:
        kind: ``"network"`` buckets by hierarchical zone prefix
            (:func:`~repro.market.location.zone_prefix`, the
            :class:`~repro.core.candidates.NetworkZoneGenerator` rule);
            ``"geo"`` buckets by grid cell
            (:func:`~repro.market.location.grid_cell`).  Bids whose
            location does not resolve land in a single *fallback* shard.
        depth: zone-prefix depth for ``kind="network"``.
        cell_deg: grid cell size in degrees for ``kind="geo"``.
        shard_workers: 0/1 clears shards sequentially in-process; > 1
            fans the shard pipelines out over a process pool of that
            many workers.  Outcomes are bit-identical for every value —
            per-shard RNG streams are derived from the block evidence
            and the shard's zone key alone (the
            ``tests/differential/test_sharding_equivalence.py``
            contract).
        spillover: run the cross-zone spillover round over the pooled
            unmatched bids (default).  Off = unmatched shard bids stay
            unmatched, the pure-partition ablation the sharding sweep
            quantifies.
        locations: optional mapping from bid location *tags* to
            :class:`~repro.market.location.GeoLocation` /
            :class:`~repro.market.location.NetworkLocation` objects
            (required for ``kind="geo"`` tags to resolve; with
            ``kind="network"`` and no map, the tag itself is parsed as
            the zone path).  Excluded from equality/hashing and never
            shipped across the process-pool boundary.
    """

    kind: str = "network"
    depth: int = 1
    cell_deg: float = 15.0
    shard_workers: int = 0
    spillover: bool = True
    locations: Optional[Mapping[str, object]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if self.kind not in ("network", "geo"):
            raise ValidationError(
                f"kind must be 'network' or 'geo', got {self.kind!r}"
            )
        if self.depth < 1:
            raise ValidationError("depth must be >= 1")
        grid_columns(self.cell_deg)  # validates the cell size
        if self.shard_workers < 0:
            raise ValidationError("shard_workers must be >= 0")


@dataclass(frozen=True)
class AuctionConfig:
    """Tunable knobs of the mechanism.

    Attributes:
        cluster_breadth: how many top-ranked offers form a request's
            "best offers" set ``best_r`` in Alg. 2.  The paper leaves the
            breadth implicit; 3 reproduces the clustered behaviour without
            collapsing every request into one global cluster.
        critical_resources: the base critical set ``K_CR`` of §IV-C
            (grown per cluster by the resource types all requests share).
        enable_trade_reduction: turn off to obtain the paper's
            non-truthful greedy benchmark.
        enable_randomization: evidence-seeded random exclusion applied on
            supply/demand imbalance (§IV-D); also off for the benchmark.
        enable_mini_auctions: group price-compatible clusters into
            mini-auctions (Alg. 3).  Off = each cluster is its own
            auction, the ablation DESIGN.md calls out.
        enforce_price_consistency: keep the in-cluster greedy fill
            uniform-price-supportable — every used offer's normalized
            cost stays at or below the lowest winner's normalized value
            (the invariant the paper's IR proof assumes, §IV-E).  The
            non-truthful benchmark turns this off: it prices each pair
            separately and need not support a common price.
        price_epsilon: tolerance for floating-point price comparisons.
        engine: ``"reference"`` runs the scalar pure-Python pipeline (the
            oracle); ``"vectorized"`` computes the quality-of-match
            matrix and best-offer sets with the NumPy kernel of
            :mod:`repro.core.matching_vectorized`.  The two engines are
            bit-identical by contract — ``tests/differential/`` is the
            enforcement.
        candidates: optional candidate generator (an object with a
            ``generate(requests, offers, maxima, breadth, scorer=...)``
            method, see :mod:`repro.core.candidates`) placed in front of
            the matcher.  ``None`` (default) runs the exact all-pairs
            path.  Generators certify their pruning, so any generator
            yields outcomes bit-identical to ``None`` on either engine —
            ``tests/differential/test_candidate_equivalence.py`` is the
            enforcement.  Excluded from config equality/hashing
            (generators carry transient state such as ``last_stats``).
        miniauction_workers: 0 (default) clears mini-auctions
            sequentially from one evidence-seeded RNG stream, the
            historical behaviour.  >= 1 switches to an independent
            per-auction RNG stream (derived from the evidence and the
            auction's position), which makes non-conflicting auctions
            order-independent; > 1 additionally clears independent
            auctions in a process pool of that many workers.  Results
            for any N >= 1 are bit-identical to N = 1.
        sharding: optional :class:`ShardPlan`.  ``None`` (default)
            clears the block as one global auction.  With a plan, the
            block is partitioned into zone-local shards, each shard runs
            the full pipeline (concurrently for
            ``ShardPlan.shard_workers > 1``), and unmatched bids meet
            again in a single cross-zone spillover round — see
            :mod:`repro.core.sharding`.  A plan whose partition yields a
            single shard degenerates to the global auction exactly.
    """

    cluster_breadth: int = 3
    enforce_price_consistency: bool = True
    critical_resources: FrozenSet[str] = field(
        default_factory=lambda: CRITICAL_RESOURCES
    )
    enable_trade_reduction: bool = True
    enable_randomization: bool = True
    enable_mini_auctions: bool = True
    price_epsilon: float = 1e-9
    engine: str = "reference"
    miniauction_workers: int = 0
    candidates: Optional[object] = field(default=None, compare=False)
    sharding: Optional[ShardPlan] = None

    def __post_init__(self) -> None:
        if self.cluster_breadth < 1:
            raise ValidationError("cluster_breadth must be >= 1")
        if self.price_epsilon < 0:
            raise ValidationError("price_epsilon must be >= 0")
        if self.engine not in ("reference", "vectorized"):
            raise ValidationError(
                f"engine must be 'reference' or 'vectorized', got {self.engine!r}"
            )
        if self.miniauction_workers < 0:
            raise ValidationError("miniauction_workers must be >= 0")
        if self.candidates is not None and not callable(
            getattr(self.candidates, "generate", None)
        ):
            raise ValidationError(
                "candidates must expose a generate(...) method "
                f"(got {type(self.candidates).__name__})"
            )
        if self.sharding is not None and not isinstance(
            self.sharding, ShardPlan
        ):
            raise ValidationError(
                f"sharding must be a ShardPlan (got "
                f"{type(self.sharding).__name__})"
            )

    @classmethod
    def benchmark(cls, **overrides) -> "AuctionConfig":
        """The paper's non-truthful greedy benchmark configuration."""
        params = {
            "enable_trade_reduction": False,
            "enable_randomization": False,
            "enforce_price_consistency": False,
        }
        params.update(overrides)
        return cls(**params)
