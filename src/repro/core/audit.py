"""Independent auditing of auction outcomes.

Miners verify blocks by re-executing the allocation function and
comparing payloads (§III-B).  Re-execution proves the leader ran *the
same code*; it does not, by itself, state what a correct outcome looks
like.  This module provides that statement: :func:`audit_outcome` checks
every mechanism invariant directly against the bids —

* matches are feasible (Const. 8, 10, 11) and welfare-positive (9);
* no request is allocated twice (Const. 5) and no bucket overlaps;
* per-offer capacity holds (Const. 7);
* clients are charged at most their bids (IR) and payments equal
  revenues exactly (strong budget balance);
* all participants in the outcome actually bid in the block.

Challengers and researchers can audit any historical block with nothing
but the revealed bids and the recorded allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.outcome import AuctionOutcome
from repro.core.welfare import resource_fraction
from repro.market.bids import Offer, Request
from repro.market.feasibility import is_feasible


@dataclass
class AuditReport:
    """Outcome of an audit: a list of violations (empty = clean)."""

    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def __str__(self) -> str:
        if self.ok:
            return "audit: OK"
        return "audit: " + "; ".join(self.violations)


def audit_outcome(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    outcome: AuctionOutcome,
    tolerance: float = 1e-6,
) -> AuditReport:
    """Check every mechanism invariant of ``outcome`` against the bids."""
    report = AuditReport()
    request_by_id: Dict[str, Request] = {
        r.request_id: r for r in requests
    }
    offer_by_id: Dict[str, Offer] = {o.offer_id: o for o in offers}

    # --- membership and uniqueness (Const. 5) -------------------------
    seen: Dict[str, int] = {}
    for match in outcome.matches:
        rid = match.request.request_id
        oid = match.offer.offer_id
        if rid not in request_by_id:
            report.add(f"match references unknown request {rid}")
        elif request_by_id[rid] != match.request:
            report.add(f"match alters the bid of request {rid}")
        if oid not in offer_by_id:
            report.add(f"match references unknown offer {oid}")
        elif offer_by_id[oid] != match.offer:
            report.add(f"match alters the bid of offer {oid}")
        seen[rid] = seen.get(rid, 0) + 1
    for rid, count in seen.items():
        if count > 1:
            report.add(f"request {rid} allocated {count} times (Const. 5)")

    buckets = [
        {m.request.request_id for m in outcome.matches},
        {r.request_id for r in outcome.reduced_requests},
        {r.request_id for r in outcome.unmatched_requests},
    ]
    for i in range(len(buckets)):
        for j in range(i + 1, len(buckets)):
            overlap = buckets[i] & buckets[j]
            if overlap:
                report.add(
                    f"requests in two buckets: {sorted(overlap)[:3]}..."
                )
    union = set().union(*buckets)
    missing = set(request_by_id) - union
    if missing:
        report.add(f"requests unaccounted for: {sorted(missing)[:3]}...")

    # --- feasibility and welfare (Const. 8-11, 9) ----------------------
    for match in outcome.matches:
        if not is_feasible(match.request, match.offer):
            report.add(
                f"infeasible match {match.request.request_id} -> "
                f"{match.offer.offer_id}"
            )
            continue
        fraction = resource_fraction(match.request, match.offer)
        if match.request.bid < fraction * match.offer.bid - tolerance:
            report.add(
                f"value below fraction cost for "
                f"{match.request.request_id} (Const. 9)"
            )

    # --- capacity (Const. 7) -------------------------------------------
    loads: Dict[str, Dict[str, float]] = {}
    for match in outcome.matches:
        offer = match.offer
        per_type = loads.setdefault(offer.offer_id, {})
        share = match.request.duration / offer.span
        for key, amount in match.request.resources.items():
            if key in offer.resources:
                per_type[key] = per_type.get(key, 0.0) + share * min(
                    amount, offer.resources[key]
                )
    for oid, per_type in loads.items():
        offer = offer_by_id.get(oid)
        if offer is None:
            continue
        for key, load in per_type.items():
            if load > offer.resources[key] + tolerance:
                report.add(
                    f"offer {oid} oversubscribed on {key}: "
                    f"{load:.4f} > {offer.resources[key]:.4f} (Const. 7)"
                )

    # --- economics: IR and strong budget balance -----------------------
    for match in outcome.matches:
        if match.payment > match.request.bid + tolerance:
            report.add(
                f"client {match.request.client_id} charged above bid (IR)"
            )
        if match.payment < -tolerance:
            report.add(
                f"negative payment for {match.request.request_id}"
            )
    revenues = sum(outcome.revenues().values())
    if abs(outcome.total_payments - revenues) > tolerance:
        report.add(
            f"budget imbalance: payments {outcome.total_payments:.6f} != "
            f"revenues {revenues:.6f}"
        )
    return report
