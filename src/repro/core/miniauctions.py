"""Mini-auction formation (paper Alg. 3, Fig. 4).

Trade reduction sacrifices one participant per auction, so tiny clusters
lose a large welfare share.  DeCloud therefore pools *price-compatible*
clusters into mini-auctions that clear at one common price: clusters ``a``
and ``b`` are compatible when each one's lowest winning valuation exceeds
the other's highest used cost,

    v_hat_{z,a} > c_hat_{z',b}   and   v_hat_{z,b} > c_hat_{z',a}.

Construction follows Alg. 3: the *roots* are a maximum-weight set of
clusters with non-overlapping price ranges (weighted-interval scheduling,
weight favouring narrow ranges — "minimum non-overlapping ranges");
remaining clusters attach under the deepest node of a root's tree whose
whole root-path they are compatible with; each leaf-to-root path becomes
one mini-auction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.cluster_allocation import ClusterAllocation
from repro.core.config import AuctionConfig


@dataclass
class MiniAuction:
    """A set of mutually price-compatible clusters clearing together."""

    allocations: List[ClusterAllocation]

    @property
    def tentative_welfare(self) -> float:
        return sum(a.tentative_welfare for a in self.allocations)

    @property
    def num_tentative_trades(self) -> int:
        return sum(len(a.matches) for a in self.allocations)


@dataclass
class _TreeNode:
    allocation: ClusterAllocation
    children: List["_TreeNode"] = field(default_factory=list)


def allocation_key(allocation: ClusterAllocation) -> tuple:
    """Deterministic identity of a cluster: its sorted offer ids.

    Every ordering decision over cluster allocations breaks float ties
    with this key.  Sorting on a bare float key would leave exact ties
    (duplicated bids produce them routinely) to Python's sort stability —
    i.e. to whatever order the allocations happened to arrive in.
    """
    return tuple(sorted(allocation.cluster.offer_ids))


def auction_key(auction: "MiniAuction") -> tuple:
    """Deterministic identity of a mini-auction: its clusters' keys."""
    return tuple(allocation_key(a) for a in auction.allocations)


def price_compatible(
    a: ClusterAllocation, b: ClusterAllocation, epsilon: float = 1e-12
) -> bool:
    """The paper's pairwise compatibility predicate."""
    if not (a.has_trades and b.has_trades):
        return False
    return a.v_z > b.c_z + epsilon and b.v_z > a.c_z + epsilon


def _interval_weight(allocation: ClusterAllocation) -> float:
    """Root-selection weight: prefer narrow price ranges.

    "Minimum non-overlapping ranges" — a narrow range constrains its tree
    least, so narrow intervals get high weight.  Welfare breaks ties so
    that, between equally narrow clusters, the economically heavier one
    anchors a root.
    """
    low, high = allocation.price_range
    width = max(0.0, high - low)
    return 1.0 / (1.0 + width) + 1e-9 * allocation.tentative_welfare


def select_roots(
    allocations: Sequence[ClusterAllocation],
    *,
    vectorized: bool = False,
) -> List[ClusterAllocation]:
    """Maximum-weight non-overlapping price intervals via classic DP.

    With ``vectorized`` the predecessor table comes from one
    ``np.searchsorted`` over the end-sorted intervals instead of the
    O(n^2) backward scan, and the interval weights are computed as one
    array expression.  Ends are sorted non-decreasing, so the rightmost
    ``j`` with ``ends[j] <= start_i`` is ``searchsorted(ends, start_i,
    "right") - 1`` clamped below ``i`` — including all-tie runs, where
    any ``j < i`` with the same end qualifies exactly as in the scan.
    The weights use the same elementwise operations as
    :func:`_interval_weight`, so both paths are bit-identical.
    """
    intervals = [
        a
        for a in allocations
        if a.has_trades and math.isfinite(a.c_z) and math.isfinite(a.v_z)
    ]
    if not intervals:
        return []
    # Explicit id-lexicographic tie-break: identical price ranges must
    # not fall back to input order via sort stability.
    intervals.sort(
        key=lambda a: (a.price_range[1], a.price_range[0], allocation_key(a))
    )
    n = len(intervals)
    if vectorized:
        import numpy as np

        starts = np.array([a.price_range[0] for a in intervals])
        ends = np.array([a.price_range[1] for a in intervals])
        pred = np.searchsorted(ends, starts, side="right") - 1
        predecessor = np.minimum(pred, np.arange(n) - 1).tolist()
        welfare = np.array([a.tentative_welfare for a in intervals])
        weights = (
            1.0 / (1.0 + np.maximum(0.0, ends - starts)) + 1e-9 * welfare
        ).tolist()
    else:
        # predecessor[i] = rightmost j < i whose interval ends before i
        # starts
        predecessor = []
        for i, alloc in enumerate(intervals):
            start = alloc.price_range[0]
            j = i - 1
            while j >= 0 and intervals[j].price_range[1] > start:
                j -= 1
            predecessor.append(j)
        weights = [_interval_weight(a) for a in intervals]
    best = [0.0] * (n + 1)
    take = [False] * n
    for i in range(1, n + 1):
        weight = weights[i - 1]
        with_i = weight + best[predecessor[i - 1] + 1]
        without_i = best[i - 1]
        take[i - 1] = with_i >= without_i
        best[i] = max(with_i, without_i)
    # Backtrack.
    chosen: List[ClusterAllocation] = []
    i = n - 1
    while i >= 0:
        if take[i] and best[i + 1] != best[i]:
            chosen.append(intervals[i])
            i = predecessor[i]
        else:
            i -= 1
    chosen.reverse()
    return chosen


def _attach(
    root: _TreeNode,
    allocation: ClusterAllocation,
    compatible: Callable[
        [ClusterAllocation, ClusterAllocation], bool
    ] = price_compatible,
) -> bool:
    """Attach under the deepest node whose whole root-path is compatible."""
    if not compatible(allocation, root.allocation):
        return False
    node = root
    while True:
        next_child: Optional[_TreeNode] = None
        for child in node.children:
            if compatible(allocation, child.allocation):
                next_child = child
                break
        if next_child is None:
            node.children.append(_TreeNode(allocation))
            return True
        node = next_child


def _paths(root: _TreeNode) -> List[List[ClusterAllocation]]:
    """All root-to-leaf paths (a lone root is its own path)."""
    if not root.children:
        return [[root.allocation]]
    out: List[List[ClusterAllocation]] = []
    for child in root.children:
        for path in _paths(child):
            out.append([root.allocation] + path)
    return out


def build_mini_auctions(
    allocations: Sequence[ClusterAllocation],
    config: AuctionConfig,
) -> List[MiniAuction]:
    """Group cluster allocations into mini-auctions.

    Clusters without any tentative trade cannot anchor or join an auction
    and are dropped here (their requests surface as unmatched).  With
    ``enable_mini_auctions`` off, every trading cluster is a stand-alone
    auction — the ablation configuration.
    """
    trading = [a for a in allocations if a.has_trades]
    if not config.enable_mini_auctions:
        return [MiniAuction(allocations=[a]) for a in trading]

    use_vectorized = config.engine == "vectorized" and len(trading) > 1
    if use_vectorized:
        # Precompute the pairwise compatibility matrix with the exact
        # scalar comparison (v_z > c_z + 1e-12, elementwise); the attach
        # walk then does O(1) lookups instead of float comparisons.
        import numpy as np

        v_z = np.array([a.v_z for a in trading])
        c_eps = np.array([a.c_z for a in trading]) + 1e-12
        comp = (v_z[:, None] > c_eps[None, :]) & (v_z[None, :] > c_eps[:, None])
        position = {id(a): i for i, a in enumerate(trading)}

        def compatible(a: ClusterAllocation, b: ClusterAllocation) -> bool:
            return bool(comp[position[id(a)], position[id(b)]])

    else:
        compatible = price_compatible

    roots = select_roots(trading, vectorized=use_vectorized)
    root_ids = {id(a) for a in roots}
    trees = [_TreeNode(a) for a in roots]
    remaining = sorted(
        (a for a in trading if id(a) not in root_ids),
        key=lambda a: (-a.tentative_welfare, allocation_key(a)),
    )
    unattached: List[ClusterAllocation] = []
    for allocation in remaining:
        if not any(_attach(tree, allocation, compatible) for tree in trees):
            unattached.append(allocation)

    auctions = [
        MiniAuction(allocations=path) for tree in trees for path in _paths(tree)
    ]
    auctions.extend(MiniAuction(allocations=[a]) for a in unattached)
    auctions.sort(
        key=lambda auction: (-auction.tentative_welfare, auction_key(auction))
    )
    return auctions
