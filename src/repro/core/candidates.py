"""Pluggable candidate generation in front of the matcher.

The §IV-B gravity quality-of-match is an all-pairs request x offer
computation — vectorized, but O(R x O) in time and memory, which walls
block clearing off from six-figure bid counts.  This module puts a
*candidate-generation* stage in front of the ranking: every request is
matched only against a provably sufficient subset of the offers, and the
pruning is certified.

Safety model
------------

A request's ``best_r`` (Alg. 2) is the top-``breadth`` feasible offers
under the §IV-D total order ``(-quality, submit_time, offer_id)``.
Scores are computed pairwise-elementwise in both engines, so restricting
the ranking to any *superset of the true best set* yields bit-identical
sets, clusters and outcomes.  A pruned (request, offer) pair is safe
exactly when it provably cannot enter the best set:

* **window screen** — every offer in the pruned group fails the
  temporal containment of constraints (10)-(11) (the group's window
  hull cannot cover the request window);
* **resource screen** — a strictly-required, positive-amount resource
  exceeds the group's per-type maximum, so every offer in the group is
  infeasible under constraint (8);
* **score bound** — the group's quality-of-match upper bound
  ``UB(r, g) = sum_k sigma_(r,k) * max_(o in g) rho'_(o,k)`` is
  *strictly* below the request's ``breadth``-th best feasible score
  among admitted offers.  Each exact Eq. (18) term is
  ``(sigma * rho'_o) / (gap^2 + 1)`` with denominator >= 1, and IEEE-754
  multiplication/division/addition are monotone, so the bound — when
  accumulated in the same sorted-type order as the kernel — dominates
  every admitted-precision score in the group.  Strict ``<`` means ties
  on score (which the §IV-D rule breaks by submission time and id)
  are never pruned.

Every generator emits a per-request :class:`SafetyCertificate` recording
the admitted offers, the pruning threshold (the ``breadth``-th best
feasible rank key), and each pruned group with its reason and claimed
bound.  :func:`check_certificate` replays the certificate against the
*scalar* reference kernel — an independent oracle from the vectorized
scorer — and rejects any certificate whose pruned pairs could have
entered the best set (``tests/property/test_candidate_safety.py`` proves
the checker catches a deliberately over-pruning generator).

Generators
----------

* :class:`ResourceVectorGenerator` — offers sorted by normalized
  magnitude and sliced into sqrt-sized groups; examination order is the
  per-request score bound itself (pure top-k pruning, §IV-B's gravity
  means large offers are screened first).
* :class:`GeoBucketGenerator` — grid cells over
  :class:`~repro.market.location.GeoLocation` with neighbour-ring
  examination order, wrapped at the ±180° antimeridian.
* :class:`NetworkZoneGenerator` — zone-prefix buckets over
  :class:`~repro.market.location.NetworkLocation` hierarchies, examined
  by hop distance of the shared prefix.
* :class:`AllPairsGenerator` — one group holding every offer (the exact
  path expressed through the candidate machinery; mostly a test aid).

All grouping strategies share the same certified admission loop, so
they differ only in pruning *effectiveness*, never in outcomes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import CertificateError, ValidationError
from repro.market.bids import Offer, Request
from repro.market.feasibility import is_feasible
from repro.market.location import (
    GeoLocation,
    NetworkLocation,
    grid_cell,
    grid_columns,
    zone_prefix,
)
from repro.core.matching import quality_of_match

#: Resolution codes of the (request, group) state matrix.
UNRESOLVED = 0
PRUNED_WINDOW = 1
PRUNED_RESOURCE = 2
PRUNED_SCORE = 3
ADMITTED = 4

REASON_NAMES = {
    PRUNED_WINDOW: "window",
    PRUNED_RESOURCE: "resource",
    PRUNED_SCORE: "score-bound",
}

#: ``scorer(requests, offer_indices) -> (scores, feasible)`` — exact
#: Eq. (18) scores and constraint-(8)/(10)-(11) feasibility for the
#: given requests against the given offer columns of the block.
Scorer = Callable[[Sequence[Request], np.ndarray], Tuple[np.ndarray, np.ndarray]]


def tie_rank_key(
    request: Request, offer: Offer, maxima: Dict[str, float]
) -> Tuple[float, float, str]:
    """The §IV-D total order as a comparable key (smaller = better)."""
    return (
        -quality_of_match(request, offer, maxima),
        offer.submit_time,
        offer.offer_id,
    )


@dataclass
class SafetyCertificate:
    """Machine-checkable proof that pruning could not change ``best_r``.

    ``threshold`` is the ``breadth``-th best feasible rank key
    ``(score, submit_time, offer_id)`` among the admitted offers (None
    when fewer than ``breadth`` feasible offers were admitted — in which
    case no score-bound pruning may have happened).  ``pruned_groups``
    / ``reasons`` / ``bounds`` are parallel arrays over the pruned
    groups; the group id indexes the generating
    :class:`CandidateResult`'s shared partition.
    """

    request_id: str
    breadth: int
    admitted_groups: np.ndarray
    pruned_groups: np.ndarray
    reasons: np.ndarray
    bounds: np.ndarray
    threshold: Optional[Tuple[float, float, str]]

    def to_payload(self, groups: List[np.ndarray]) -> Dict:
        """Canonical JSON-ready form (floats as ``hex()``) for equality
        and determinism assertions."""
        threshold = None
        if self.threshold is not None:
            score, submit, offer_id = self.threshold
            threshold = [float(score).hex(), float(submit).hex(), offer_id]
        return {
            "request_id": self.request_id,
            "breadth": self.breadth,
            "admitted": sorted(
                int(j) for g in self.admitted_groups for j in groups[g]
            ),
            "threshold": threshold,
            "pruned": [
                {
                    "offers": sorted(int(j) for j in groups[g]),
                    "reason": REASON_NAMES[int(reason)],
                    "bound": float(bound).hex()
                    if int(reason) == PRUNED_SCORE
                    else None,
                }
                for g, reason, bound in sorted(
                    zip(
                        self.pruned_groups.tolist(),
                        self.reasons.tolist(),
                        self.bounds.tolist(),
                    )
                )
            ],
        }


@dataclass
class CandidateResult:
    """Output of one :meth:`CandidateGenerator.generate` call."""

    groups: List[np.ndarray]
    best_sets: List[frozenset]
    certificates: List[SafetyCertificate]
    stats: Dict[str, int] = field(default_factory=dict)

    def candidate_indices(self, i: int) -> np.ndarray:
        """Sorted offer indices admitted for the ``i``-th request."""
        certificate = self.certificates[i]
        if not len(certificate.admitted_groups):
            return np.empty(0, dtype=np.int64)
        return np.sort(
            np.concatenate(
                [self.groups[g] for g in certificate.admitted_groups]
            )
        )


def check_certificate(
    request: Request,
    offers: Sequence[Offer],
    maxima: Dict[str, float],
    certificate: SafetyCertificate,
    groups: List[np.ndarray],
) -> int:
    """Replay one certificate against the scalar reference kernel.

    Raises :class:`~repro.common.errors.CertificateError` when the
    certificate does not actually prove safety; returns the number of
    individual pair checks performed.  The checker recomputes every
    pruned pair's exact feasibility/score with
    :func:`~repro.core.matching.quality_of_match` — deliberately *not*
    the vectorized scorer the generator used — so a buggy or adversarial
    generator cannot vouch for itself.
    """
    checks = 0
    admitted = {
        int(j) for g in certificate.admitted_groups for j in groups[g]
    }
    pruned = {int(j) for g in certificate.pruned_groups for j in groups[g]}
    if admitted & pruned:
        raise CertificateError(
            f"{certificate.request_id}: offers both admitted and pruned: "
            f"{sorted(admitted & pruned)[:5]}"
        )
    if admitted | pruned != set(range(len(offers))):
        missing = set(range(len(offers))) - admitted - pruned
        raise CertificateError(
            f"{certificate.request_id}: certificate does not cover offers "
            f"{sorted(missing)[:5]}"
        )

    # The recorded threshold must be the breadth-th best feasible rank
    # key among the admitted offers (recomputed from scratch).
    feasible_keys = sorted(
        tie_rank_key(request, offers[j], maxima)
        for j in admitted
        if is_feasible(request, offers[j])
    )
    checks += len(admitted)
    expected = None
    if len(feasible_keys) >= certificate.breadth:
        neg_score, submit, offer_id = feasible_keys[certificate.breadth - 1]
        expected = (-neg_score, submit, offer_id)
    if certificate.threshold != expected:
        raise CertificateError(
            f"{certificate.request_id}: recorded threshold "
            f"{certificate.threshold!r} != recomputed {expected!r}"
        )

    for g, reason, bound in zip(
        certificate.pruned_groups.tolist(),
        certificate.reasons.tolist(),
        certificate.bounds.tolist(),
    ):
        for j in groups[g].tolist():
            offer = offers[j]
            checks += 1
            if reason in (PRUNED_WINDOW, PRUNED_RESOURCE):
                if is_feasible(request, offer):
                    raise CertificateError(
                        f"{certificate.request_id}: offer "
                        f"{offer.offer_id} pruned as infeasible "
                        f"({REASON_NAMES[reason]}) but is feasible"
                    )
                continue
            if reason != PRUNED_SCORE:
                raise CertificateError(
                    f"{certificate.request_id}: unknown prune reason "
                    f"{reason!r} for group {g}"
                )
            if expected is None:
                raise CertificateError(
                    f"{certificate.request_id}: score-bound pruning with "
                    f"fewer than breadth={certificate.breadth} feasible "
                    "admitted offers"
                )
            score = quality_of_match(request, offer, maxima)
            if not (score <= bound):
                raise CertificateError(
                    f"{certificate.request_id}: claimed bound "
                    f"{bound!r} does not dominate exact score {score!r} "
                    f"of pruned offer {offer.offer_id}"
                )
            if not (bound < expected[0]):
                raise CertificateError(
                    f"{certificate.request_id}: bound {bound!r} is not "
                    f"strictly below threshold score {expected[0]!r} "
                    f"(offer {offer.offer_id})"
                )
    return checks


def _direct_scorer(
    offers: Sequence[Offer], maxima: Dict[str, float]
) -> Scorer:
    """Exact (scores, feasibility) on offer subsets via the NumPy kernel.

    Both kernels are elementwise per pair, so a submatrix computed over a
    subset (with the subset's own type universe but the *block* maxima)
    is bit-identical to the corresponding slice of the full matrices.
    """
    from repro.core.matching_vectorized import (
        _OfferArrays,
        _RequestArrays,
        _feasibility_from_arrays,
        _score_from_arrays,
        _type_universe,
    )

    def scorer(
        requests: Sequence[Request], cols: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        subset = [offers[j] for j in cols.tolist()]
        types = _type_universe(requests, subset)
        req = _RequestArrays(requests, types)
        off = _OfferArrays(subset, types)
        return (
            _score_from_arrays(req, off, types, maxima),
            _feasibility_from_arrays(req, off),
        )

    return scorer


class _GroupStats:
    """Per-group screening statistics, keyed by resource type."""

    def __init__(
        self,
        groups: List[np.ndarray],
        offers: Sequence[Offer],
        maxima: Dict[str, float],
    ) -> None:
        n_groups = len(groups)
        self.raw_max: Dict[str, np.ndarray] = {}
        self.rho_max: Dict[str, np.ndarray] = {}
        self.win_start_min = np.full(n_groups, math.inf)
        self.win_end_max = np.full(n_groups, -math.inf)
        for g, indices in enumerate(groups):
            for j in indices.tolist():
                offer = offers[j]
                for t, amount in offer.resources.items():
                    row = self.raw_max.get(t)
                    if row is None:
                        row = self.raw_max[t] = np.zeros(n_groups)
                    if amount > row[g]:
                        row[g] = amount
                self.win_start_min[g] = min(
                    self.win_start_min[g], offer.window.start
                )
                self.win_end_max[g] = max(
                    self.win_end_max[g], offer.window.end
                )
        for t, row in self.raw_max.items():
            top = maxima.get(t, 0.0)
            if top > 0:
                self.rho_max[t] = row / top


class CandidateGenerator:
    """Base class: the certified bucketed admission loop.

    Subclasses define the offer partition (:meth:`_group_offers`) and
    the per-request examination order (:meth:`_priority_rows`); the base
    class owns screening, top-k admission, certificates and stats, so
    every strategy inherits the same safety argument.
    """

    def __init__(self, *, verify: str = "off", chunk_size: int = 2048) -> None:
        if verify not in ("off", "sample", "full"):
            raise ValidationError(
                f"verify must be 'off', 'sample' or 'full', got {verify!r}"
            )
        if chunk_size < 1:
            raise ValidationError("chunk_size must be >= 1")
        self.verify = verify
        self.chunk_size = chunk_size
        #: Stats of the most recent :meth:`generate` call (the auction
        #: reads these into the ``candidate_*`` metrics).
        self.last_stats: Dict[str, int] = {}

    # -- strategy hooks -------------------------------------------------

    def _group_offers(
        self, offers: Sequence[Offer]
    ) -> List[Tuple[object, np.ndarray]]:
        raise NotImplementedError

    def _priority_rows(
        self,
        requests: Sequence[Request],
        keys: List[object],
        ub: np.ndarray,
    ) -> np.ndarray:
        """Examination order (smaller = earlier); default: best score
        bound first, which is pure top-k pruning."""
        return -ub

    # -- the certified admission loop -----------------------------------

    def generate(
        self,
        requests: Sequence[Request],
        offers: Sequence[Offer],
        maxima: Dict[str, float],
        breadth: int,
        scorer: Optional[Scorer] = None,
    ) -> CandidateResult:
        if scorer is None:
            scorer = _direct_scorer(offers, maxima)
        grouped = [
            (key, np.asarray(indices, dtype=np.int64))
            for key, indices in self._group_offers(offers)
            if len(indices)
        ]
        keys = [key for key, _ in grouped]
        groups = [indices for _, indices in grouped]
        n_groups = len(groups)
        group_sizes = np.array(
            [len(g) for g in groups], dtype=np.int64
        )
        stats = {
            "requests": len(requests),
            "offers": len(offers),
            "groups": n_groups,
            "pairs_total": len(requests) * len(offers),
            "pairs_admitted": 0,
            "pairs_pruned_score": 0,
            "pairs_pruned_window": 0,
            "pairs_pruned_resource": 0,
            "rounds": 0,
            "certificate_checks": 0,
        }
        group_stats = _GroupStats(groups, offers, maxima)

        pair_rows: List[np.ndarray] = []
        pair_cols: List[np.ndarray] = []
        pair_scores: List[np.ndarray] = []
        pair_feasible: List[np.ndarray] = []
        certificates: List[Optional[SafetyCertificate]] = [
            None for _ in requests
        ]

        for start in range(0, len(requests), self.chunk_size):
            chunk = list(requests[start : start + self.chunk_size])
            reason, bounds = self._resolve_chunk(
                chunk, start, groups, keys, group_stats, group_sizes,
                breadth, scorer, stats,
                pair_rows, pair_cols, pair_scores, pair_feasible,
            )
            for local, request in enumerate(chunk):
                row = reason[local]
                admitted_groups = np.nonzero(row == ADMITTED)[0]
                pruned_mask = (row != ADMITTED) & (row != UNRESOLVED)
                pruned_groups = np.nonzero(pruned_mask)[0]
                certificates[start + local] = SafetyCertificate(
                    request_id=request.request_id,
                    breadth=breadth,
                    admitted_groups=admitted_groups,
                    pruned_groups=pruned_groups,
                    reasons=row[pruned_groups].copy(),
                    bounds=bounds[local, pruned_groups].copy(),
                    threshold=None,
                )

        best_sets, thresholds = self._rank_admitted(
            requests, offers, breadth,
            pair_rows, pair_cols, pair_scores, pair_feasible,
        )
        for certificate, threshold in zip(certificates, thresholds):
            certificate.threshold = threshold

        result = CandidateResult(
            groups=groups,
            best_sets=best_sets,
            certificates=certificates,  # type: ignore[arg-type]
            stats=stats,
        )
        if self.verify != "off":
            stride = 1 if self.verify == "full" else 16
            for i in range(0, len(requests), stride):
                stats["certificate_checks"] += check_certificate(
                    requests[i], offers, maxima, certificates[i], groups
                )
        self.last_stats = stats
        return result

    def _resolve_chunk(
        self,
        chunk: List[Request],
        chunk_start: int,
        groups: List[np.ndarray],
        keys: List[object],
        group_stats: _GroupStats,
        group_sizes: np.ndarray,
        breadth: int,
        scorer: Scorer,
        stats: Dict[str, int],
        pair_rows: List[np.ndarray],
        pair_cols: List[np.ndarray],
        pair_scores: List[np.ndarray],
        pair_feasible: List[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Screen + admit one chunk; returns the (R_c, G) reason and
        score-bound matrices."""
        n_req, n_groups = len(chunk), len(groups)
        reason = np.zeros((n_req, n_groups), dtype=np.int8)
        ub = np.zeros((n_req, n_groups))

        # Feasibility screens: window hull, then strict per-type maxima.
        r_start = np.array([r.window.start for r in chunk])
        r_end = np.array([r.window.end for r in chunk])
        window_pruned = (group_stats.win_start_min[None, :] > r_start[:, None]) | (
            group_stats.win_end_max[None, :] < r_end[:, None]
        )
        reason[window_pruned] = PRUNED_WINDOW

        # Group requests by declared type so each type costs one
        # (rows_t, G) pass instead of a dense (R, K, G) broadcast.
        sigma_by_type: Dict[str, List[Tuple[int, float]]] = {}
        strict_by_type: Dict[str, List[Tuple[int, float]]] = {}
        for local, request in enumerate(chunk):
            for t, amount in request.resources.items():
                sigma = request.sigma(t)
                sigma_by_type.setdefault(t, []).append((local, sigma))
                if sigma >= 1.0 and amount > 0:
                    strict_by_type.setdefault(t, []).append((local, amount))
        zero_row = np.zeros(n_groups)
        for t in sorted(strict_by_type):
            raw = group_stats.raw_max.get(t, zero_row)
            rows, needed = zip(*strict_by_type[t])
            short = raw[None, :] < np.array(needed)[:, None]
            sub = reason[np.array(rows)]
            sub[short & (sub == UNRESOLVED)] = PRUNED_RESOURCE
            reason[np.array(rows)] = sub

        # Score upper bound, accumulated in sorted-type order so IEEE
        # monotonicity makes it dominate every exact Eq. (18) score.
        for t in sorted(sigma_by_type):
            rho = group_stats.rho_max.get(t)
            if rho is None:
                continue
            rows, sigmas = zip(*sigma_by_type[t])
            ub[np.array(rows)] += np.array(sigmas)[:, None] * rho[None, :]

        priority = np.asarray(
            self._priority_rows(chunk, keys, ub), dtype=np.float64
        )
        order = np.argsort(priority, axis=1, kind="stable")
        pointer = np.zeros(n_req, dtype=np.int64)
        topk = np.full((n_req, breadth), -math.inf)
        batch = 1
        while True:
            threshold = topk[:, breadth - 1]
            score_pruned = (reason == UNRESOLVED) & (
                ub < threshold[:, None]
            )
            reason[score_pruned] = PRUNED_SCORE
            active = np.nonzero((reason == UNRESOLVED).any(axis=1))[0]
            if not len(active):
                break
            stats["rounds"] += 1
            by_group: Dict[int, List[int]] = {}
            for row in active.tolist():
                taken = 0
                p = pointer[row]
                while p < n_groups and taken < batch:
                    g = order[row, p]
                    if reason[row, g] == UNRESOLVED:
                        reason[row, g] = ADMITTED
                        by_group.setdefault(int(g), []).append(row)
                        taken += 1
                    p += 1
                pointer[row] = p
            for g in sorted(by_group):
                rows = np.array(by_group[g], dtype=np.int64)
                scores, feasible = scorer(
                    [chunk[row] for row in rows.tolist()], groups[g]
                )
                pair_rows.append(
                    np.repeat(rows + chunk_start, len(groups[g]))
                )
                pair_cols.append(np.tile(groups[g], len(rows)))
                pair_scores.append(scores.ravel())
                pair_feasible.append(feasible.ravel())
                ranked = np.where(feasible, scores, -math.inf)
                merged = np.concatenate([topk[rows], ranked], axis=1)
                merged.partition(merged.shape[1] - breadth, axis=1)
                topk[rows] = merged[:, -breadth:][:, ::-1]
            batch = min(batch * 2, n_groups)

        for code, name in (
            (ADMITTED, "pairs_admitted"),
            (PRUNED_SCORE, "pairs_pruned_score"),
            (PRUNED_WINDOW, "pairs_pruned_window"),
            (PRUNED_RESOURCE, "pairs_pruned_resource"),
        ):
            stats[name] += int(
                (group_sizes[None, :] * (reason == code)).sum()
            )
        return reason, ub

    def _rank_admitted(
        self,
        requests: Sequence[Request],
        offers: Sequence[Offer],
        breadth: int,
        pair_rows: List[np.ndarray],
        pair_cols: List[np.ndarray],
        pair_scores: List[np.ndarray],
        pair_feasible: List[np.ndarray],
    ) -> Tuple[List[frozenset], List[Optional[Tuple[float, float, str]]]]:
        """Rank every request's admitted pairs under the §IV-D tie rule.

        One global lexsort over the flattened feasible pairs replaces a
        per-request sort: pairs order by (request, -score, offer rank)
        where the offer rank encodes ``(submit_time, offer_id)``.
        """
        best_sets: List[frozenset] = [frozenset() for _ in requests]
        thresholds: List[Optional[Tuple[float, float, str]]] = [
            None for _ in requests
        ]
        if not pair_rows:
            return best_sets, thresholds
        rows = np.concatenate(pair_rows)
        cols = np.concatenate(pair_cols)
        scores = np.concatenate(pair_scores)
        feasible = np.concatenate(pair_feasible)

        perm = sorted(
            range(len(offers)),
            key=lambda j: (offers[j].submit_time, offers[j].offer_id),
        )
        rank = np.empty(len(offers), dtype=np.int64)
        rank[perm] = np.arange(len(offers))

        rows = rows[feasible]
        cols = cols[feasible]
        scores = scores[feasible]
        order = np.lexsort((rank[cols], -scores, rows))
        rows, cols, scores = rows[order], cols[order], scores[order]

        starts = np.searchsorted(rows, np.arange(len(requests)))
        ends = np.searchsorted(rows, np.arange(len(requests)), side="right")
        for i in range(len(requests)):
            lo, hi = int(starts[i]), int(ends[i])
            if lo == hi:
                continue
            take = min(breadth, hi - lo)
            best_sets[i] = frozenset(
                offers[j].offer_id for j in cols[lo : lo + take].tolist()
            )
            if hi - lo >= breadth:
                j = int(cols[lo + breadth - 1])
                thresholds[i] = (
                    float(scores[lo + breadth - 1]),
                    offers[j].submit_time,
                    offers[j].offer_id,
                )
        return best_sets, thresholds


class AllPairsGenerator(CandidateGenerator):
    """Every offer in one group — the exact path, expressed as a
    (trivially certified) candidate stage."""

    def _group_offers(self, offers):
        return [("all", np.arange(len(offers), dtype=np.int64))]


class ResourceVectorGenerator(CandidateGenerator):
    """Offers sorted by normalized magnitude, sliced into sqrt-sized
    groups; the default bound-descending order makes this pure top-k
    best-offer pruning with per-type maxima screens."""

    def __init__(
        self, group_size: Optional[int] = None, **kwargs
    ) -> None:
        super().__init__(**kwargs)
        if group_size is not None and group_size < 1:
            raise ValidationError("group_size must be >= 1")
        self.group_size = group_size

    def _group_offers(self, offers):
        if not offers:
            return []
        size = self.group_size or max(16, int(math.isqrt(len(offers))))
        magnitude = {
            offer.offer_id: sum(offer.resources.values())
            for offer in offers
        }
        ordered = sorted(
            range(len(offers)),
            key=lambda j: (-magnitude[offers[j].offer_id], offers[j].offer_id),
        )
        return [
            (g, np.array(ordered[lo : lo + size], dtype=np.int64))
            for g, lo in enumerate(range(0, len(ordered), size))
        ]


class GeoBucketGenerator(CandidateGenerator):
    """Grid-cell buckets over geo locations with neighbour-ring order.

    ``locations`` maps bid location *tags* to
    :class:`~repro.market.location.GeoLocation`; offers without a
    resolvable geo location fall into a single fallback bucket that is
    always examined first (it cannot be distance-pruned, only
    score-bound pruned like any other group).  The grid wraps at the
    ±180° antimeridian: cells at +179.9° and -179.9° are ring-1
    neighbours.
    """

    FALLBACK = None

    def __init__(
        self,
        locations: Dict[str, GeoLocation],
        cell_deg: float = 15.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.locations = dict(locations)
        self.cell_deg = float(cell_deg)
        grid_columns(self.cell_deg)  # validates the cell size

    def _resolve(self, tag: Optional[str]) -> Optional[GeoLocation]:
        location = self.locations.get(tag or "")
        return location if isinstance(location, GeoLocation) else None

    def _group_offers(self, offers):
        buckets: Dict[object, List[int]] = {}
        for j, offer in enumerate(offers):
            location = self._resolve(offer.location)
            key = (
                grid_cell(location, self.cell_deg)
                if location is not None
                else self.FALLBACK
            )
            buckets.setdefault(key, []).append(j)
        ordered = sorted(
            (key for key in buckets if key is not None)
        ) + ([self.FALLBACK] if self.FALLBACK in buckets else [])
        return [
            (key, np.array(buckets[key], dtype=np.int64)) for key in ordered
        ]

    def _priority_rows(self, requests, keys, ub):
        n_cols = grid_columns(self.cell_deg)
        priority = -ub.copy()
        cells = [key for key in keys if key is not None]
        if not cells:
            return priority
        cell_rows = np.array([c[0] for c in keys if c is not None])
        cell_cols = np.array([c[1] for c in keys if c is not None])
        located_columns = np.array(
            [k for k, key in enumerate(keys) if key is not None]
        )
        for local, request in enumerate(requests):
            location = self._resolve(request.location)
            if location is None:
                continue  # keep the bound-descending fallback order
            row, col = grid_cell(location, self.cell_deg)
            d_row = np.abs(cell_rows - row)
            d_col = np.abs(cell_cols - col)
            d_col = np.minimum(d_col, n_cols - d_col)
            priority[local, located_columns] = np.maximum(d_row, d_col)
            if len(located_columns) != len(keys):
                fallback = [
                    k for k, key in enumerate(keys) if key is None
                ]
                priority[local, fallback] = -1.0
        return priority


class NetworkZoneGenerator(CandidateGenerator):
    """Zone-prefix buckets over hierarchical network locations.

    Offers bucket by the first ``depth`` zone segments (zones shorter
    than ``depth`` bucket by their whole name); a request examines
    buckets by descending shared-prefix length with its own zone — the
    hop-count order of :meth:`NetworkLocation.hops_to` restricted to
    prefixes.  When no ``locations`` map is given, the bid's location
    tag is interpreted as the zone itself.
    """

    FALLBACK = None

    def __init__(
        self,
        locations: Optional[Dict[str, NetworkLocation]] = None,
        depth: int = 1,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if depth < 1:
            raise ValidationError("depth must be >= 1")
        self.locations = dict(locations) if locations is not None else None
        self.depth = depth

    def _resolve(self, tag: Optional[str]) -> Optional[str]:
        if not tag:
            return None
        if self.locations is not None:
            location = self.locations.get(tag)
            return (
                location.zone
                if isinstance(location, NetworkLocation)
                else None
            )
        try:
            return NetworkLocation(tag).zone
        except ValidationError:
            return None

    def _group_offers(self, offers):
        buckets: Dict[object, List[int]] = {}
        for j, offer in enumerate(offers):
            zone = self._resolve(offer.location)
            key = (
                zone_prefix(zone, self.depth)
                if zone is not None
                else self.FALLBACK
            )
            buckets.setdefault(key, []).append(j)
        ordered = sorted(
            (key for key in buckets if key is not None)
        ) + ([self.FALLBACK] if self.FALLBACK in buckets else [])
        return [
            (key, np.array(buckets[key], dtype=np.int64)) for key in ordered
        ]

    def _priority_rows(self, requests, keys, ub):
        priority = -ub.copy()
        prefix_parts = [
            key.split("/") if key is not None else None for key in keys
        ]
        for local, request in enumerate(requests):
            zone = self._resolve(request.location)
            if zone is None:
                continue
            mine = zone.split("/")
            for k, parts in enumerate(prefix_parts):
                if parts is None:
                    priority[local, k] = -1.0
                    continue
                common = 0
                for a, b in zip(mine, parts):
                    if a != b:
                        break
                    common += 1
                priority[local, k] = float(self.depth - common)
        return priority
