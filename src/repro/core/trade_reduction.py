"""Clearing a mini-auction: pricing, trade reduction, randomization (Alg. 4).

The clearing price pools Eq. (20) over the auction's clusters:

    p = min over clusters of min(v_hat_z, c_hat_{z'+1})

The participant *determining* the price never trades: if ``p`` comes from
a request ``z``, every request of that client leaves the auction; if it
comes from an offer ``z'+1``, every offer of that provider leaves.  When a
price-eligible surplus remains on both sides after the deterministic
re-fit, the allocation of that cluster is randomized with the
evidence-seeded PRNG so that no infra-marginal participant can steer who
wins by shading bids (paper §IV-D).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.cluster_allocation import (
    ClusterAllocation,
    OfferCapacity,
    allocate_cluster,
    greedy_fit,
)
from repro.core.config import AuctionConfig
from repro.core.miniauctions import MiniAuction
from repro.core.normalization import ClusterEconomics, payment_for

# Pricing moved to repro.core.pricing; re-exported here because public
# API and tests import it from this module.
from repro.core.pricing import PriceResult, pooled_price  # noqa: F401
from repro.core.outcome import Match
from repro.market.bids import Offer, Request


@dataclass
class ClearingResult:
    """What one mini-auction produced."""

    matches: List[Match] = field(default_factory=list)
    reduced_requests: List[Request] = field(default_factory=list)
    reduced_offers: List[Offer] = field(default_factory=list)
    participant_requests: Set[str] = field(default_factory=set)
    participant_offers: Set[str] = field(default_factory=set)
    price: Optional[float] = None
    tentative_trades: int = 0


def _live_allocations(
    auction: MiniAuction,
    request_by_id: Dict[str, Request],
    offer_by_id: Dict[str, Offer],
    consumed_requests: Set[str],
    consumed_offers: Set[str],
    config: AuctionConfig,
) -> List[ClusterAllocation]:
    """Re-run greedy allocation on still-available participants.

    Capacity and the taken-request set are shared across the auction's
    clusters: an offer appearing in two nested clusters exposes one pool
    of capacity, and a request wins at most once (Const. 5).
    """
    survivors = []
    for allocation in auction.allocations:
        cluster = allocation.cluster
        requests = [
            request_by_id[rid]
            for rid in sorted(cluster.request_ids)
            if rid not in consumed_requests
        ]
        offers = [
            offer_by_id[oid]
            for oid in sorted(cluster.offer_ids)
            if oid not in consumed_offers
        ]
        if not requests or not offers:
            continue
        survivors.append((cluster, requests, offers))

    economics_list: List[Optional[ClusterEconomics]]
    if config.engine == "vectorized" and survivors:
        # Batch §IV-C over the auction's surviving clusters at once —
        # bit-identical to the per-cluster scalar computation.
        from repro.core.normalization_vectorized import (
            compute_economics_batch,
        )

        economics_list = list(
            compute_economics_batch(
                [(requests, offers) for _, requests, offers in survivors],
                config,
            )
        )
    else:
        economics_list = [None] * len(survivors)

    live: List[ClusterAllocation] = []
    capacity: Optional[OfferCapacity] = None
    taken: Set[str] = set()
    for (cluster, requests, offers), economics in zip(
        survivors, economics_list
    ):
        if capacity is None:
            capacity = OfferCapacity(offers)
        else:
            for offer in offers:
                capacity.add_offer(offer)
        live.append(
            allocate_cluster(
                cluster, requests, offers, config, capacity=capacity,
                taken_requests=taken, economics=economics,
            )
        )
    return live


def _final_fit(
    allocation: ClusterAllocation,
    price: float,
    excluded_client: Optional[str],
    excluded_provider: Optional[str],
    capacity: OfferCapacity,
    taken: Set[str],
    config: AuctionConfig,
    rng: random.Random,
) -> List[Tuple[Request, Offer]]:
    """Re-fit one cluster at the clearing price (with randomization)."""
    epsilon = config.price_epsilon
    economics = allocation.economics
    requests = [
        r for r in allocation.requests if r.client_id != excluded_client
    ]
    offers = [
        o for o in allocation.offers if o.provider_id != excluded_provider
    ]
    for offer in offers:
        capacity.add_offer(offer)

    matches = greedy_fit(
        requests,
        offers,
        economics,
        capacity,
        taken,
        min_value=price,
        max_cost=price,
        epsilon=epsilon,
    )
    if not config.enable_randomization:
        return matches

    matched_requests = {r.request_id for r, _ in matches}
    matched_offers = {o.offer_id for _, o in matches}
    leftover_requests = [
        r
        for r in requests
        if r.request_id not in matched_requests
        and r.request_id not in taken
        and economics.v_hat(r.request_id) >= price - epsilon
    ]
    leftover_offers = [
        o
        for o in offers
        if o.offer_id not in matched_offers
        and economics.c_hat(o.offer_id) <= price + epsilon
    ]
    if not leftover_requests and not leftover_offers:
        return matches

    # A price-eligible surplus remains (paper §IV-D): on a supply
    # shortage the *requests* that win are drawn verifiably at random;
    # on a demand shortage the redundant *offers* are excluded at random
    # (requests spread over a random offer order).  Otherwise an
    # infra-marginal participant could steer who wins by shading its bid.
    for request, offer in matches:
        taken.discard(request.request_id)
        capacity.restore(offer, request)
    eligible_requests = [
        r
        for r in requests
        if r.request_id not in taken
        and economics.v_hat(r.request_id) >= price - epsilon
    ]
    eligible_offers = [
        o for o in offers if economics.c_hat(o.offer_id) <= price + epsilon
    ]
    if leftover_requests:
        rng.shuffle(eligible_requests)
    if leftover_offers:
        rng.shuffle(eligible_offers)
    return greedy_fit(
        eligible_requests,
        eligible_offers,
        economics,
        capacity,
        taken,
        min_value=price,
        max_cost=price,
        epsilon=epsilon,
    )


def clear_mini_auction(
    auction: MiniAuction,
    request_by_id: Dict[str, Request],
    offer_by_id: Dict[str, Offer],
    consumed_requests: Set[str],
    consumed_offers: Set[str],
    config: AuctionConfig,
    rng: random.Random,
    live: Optional[List[ClusterAllocation]] = None,
    pooled: Optional[PriceResult] = None,
) -> ClearingResult:
    """Run Alg. 4 for one mini-auction against live participants.

    ``live``/``pooled`` may be precomputed by the wave scheduler: within
    a wave the auctions are participant-disjoint, so the vectorized
    engine re-fits all their clusters and prices every auction in one
    batched pass (``pooled_prices_batch``) before clearing each one.
    """
    result = ClearingResult()
    if live is None:
        live = _live_allocations(
            auction, request_by_id, offer_by_id, consumed_requests,
            consumed_offers, config,
        )
    tentative: List[Tuple[ClusterAllocation, Request, Offer]] = [
        (allocation, request, offer)
        for allocation in live
        for request, offer in allocation.matches
    ]
    result.tentative_trades = len(tentative)
    if not tentative:
        return result  # nothing cleared; participants stay available

    if not config.enable_trade_reduction:
        # Non-truthful benchmark: keep every tentative trade; each pair
        # trades at the midpoint of its own normalized value/cost.
        for allocation, request, offer in tentative:
            economics = allocation.economics
            unit = 0.5 * (
                economics.v_hat(request.request_id)
                + economics.c_hat(offer.offer_id)
            )
            result.matches.append(
                Match(
                    request=request,
                    offer=offer,
                    payment=payment_for(economics, request, unit),
                    unit_price=unit,
                )
            )
        result.participant_requests.update(
            m.request.request_id for m in result.matches
        )
        result.participant_offers.update(
            m.offer.offer_id for m in result.matches
        )
        return result

    if pooled is None:
        pooled = pooled_price(live)
    price, z_request, z1_offer = pooled
    assert price is not None  # tentative trades exist, so v_candidates did
    result.price = price
    excluded_client = z_request.client_id if z_request is not None else None
    excluded_provider = z1_offer.provider_id if z1_offer is not None else None

    capacity: Optional[OfferCapacity] = None
    taken: Set[str] = set()
    final: List[Tuple[ClusterAllocation, Request, Offer]] = []
    for allocation in live:
        if capacity is None:
            capacity = OfferCapacity([])
        for request, offer in _final_fit(
            allocation, price, excluded_client, excluded_provider,
            capacity, taken, config, rng,
        ):
            final.append((allocation, request, offer))

    for allocation, request, offer in final:
        result.matches.append(
            Match(
                request=request,
                offer=offer,
                payment=payment_for(allocation.economics, request, price),
                unit_price=price,
            )
        )

    final_request_ids = {r.request_id for _, r, _ in final}
    final_offer_ids = {o.offer_id for _, _, o in final}
    seen_reduced: Set[str] = set()
    for _, request, offer in tentative:
        if (
            request.request_id not in final_request_ids
            and request.request_id not in seen_reduced
        ):
            result.reduced_requests.append(request)
            seen_reduced.add(request.request_id)
        if offer.offer_id not in final_offer_ids and offer.offer_id not in seen_reduced:
            result.reduced_offers.append(offer)
            seen_reduced.add(offer.offer_id)

    # Alg. 1 removes the auction's participants from the remaining
    # auctions.  We consume the participants whose allocation this
    # auction decided — the matched winners (Const. 5: a request trades
    # once; a matched offer's residual capacity is not re-offered).
    # Trade-reduction exclusion is scoped to "the same mini-auction"
    # (§IV-C), so excluded and unallocated participants remain available
    # to later mini-auctions, mirroring the protocol's resubmission of
    # unallocated bids (§III-B).
    result.participant_requests.update(final_request_ids)
    result.participant_offers.update(final_offer_ids)
    return result
