"""Vectorized quality-of-match kernel (the fast path of Eq. 18).

The scalar reference in :mod:`repro.core.matching` walks every
(request, offer) pair in pure Python — O(R x O x K) interpreter work that
dominates block clearing from a few hundred participants up.  This module
computes the same quantities as NumPy array programs:

* :func:`score_matrix` — the full R x O quality-of-match matrix;
* :func:`feasibility_matrix` — the R x O hard-constraint mask
  (time-window containment, shared resource types, strict-resource
  presence, flexibility-discounted amounts);
* :func:`best_offer_sets` — every request's ``best_r`` of Alg. 2 in one
  batched ranking;
* :class:`IncrementalMatcher` — an LRU row cache for the online
  simulator: across block rounds only rows/columns touched by new bids
  are recomputed (as long as the block maxima are unchanged).

Bit-identity contract
---------------------

Every float produced here is required to be *bit-identical* to the
scalar reference (``tests/differential/`` enforces it).  The kernel
therefore mirrors the reference's IEEE-754 operation order exactly:

* terms accumulate type-by-type in sorted resource-type order (one
  elementwise add per type), never via ``np.sum`` whose pairwise
  accumulation would round differently;
* each term is computed as ``(sigma * rho_o) / (gap * gap + 1.0)`` —
  the same multiply/divide sequence as the scalar code;
* pairs whose resource type is absent on the request side contribute an
  exact ``+0.0`` (adding ``0.0`` is the identity on non-negative
  floats), so masking cannot perturb low bits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.market.bids import Offer, Request


def _type_universe(
    requests: Sequence[Request], offers: Sequence[Offer]
) -> List[str]:
    """Sorted union of every resource type in the block."""
    types = set()
    for request in requests:
        types.update(request.resources)
    for offer in offers:
        types.update(offer.resources)
    return sorted(types)


class _RequestArrays:
    """Column-aligned per-request tensors over a type universe."""

    def __init__(self, requests: Sequence[Request], types: List[str]) -> None:
        index = {t: k for k, t in enumerate(types)}
        n, k = len(requests), len(types)
        self.amount = np.zeros((n, k))
        self.present = np.zeros((n, k), dtype=bool)
        self.sigma = np.ones((n, k))
        self.strict = np.ones((n, k), dtype=bool)
        self.win_start = np.empty(n)
        self.win_end = np.empty(n)
        for i, request in enumerate(requests):
            for t, amount in request.resources.items():
                col = index[t]
                self.amount[i, col] = amount
                self.present[i, col] = True
                sigma = request.significance[t]
                self.sigma[i, col] = sigma
                self.strict[i, col] = sigma >= 1.0
            self.win_start[i] = request.window.start
            self.win_end[i] = request.window.end
        flex = np.array([r.flexibility for r in requests])
        # required_amount(): strict resources need the full amount,
        # flexible ones ``amount * flexibility`` (same float multiply as
        # the scalar code).
        self.needed = np.where(
            self.strict, self.amount, self.amount * flex[:, None]
        )
        self.positive = self.amount > 0


class _OfferArrays:
    """Column-aligned per-offer tensors over a type universe."""

    def __init__(self, offers: Sequence[Offer], types: List[str]) -> None:
        index = {t: k for k, t in enumerate(types)}
        n, k = len(offers), len(types)
        self.amount = np.zeros((n, k))
        self.present = np.zeros((n, k), dtype=bool)
        self.win_start = np.empty(n)
        self.win_end = np.empty(n)
        for j, offer in enumerate(offers):
            for t, amount in offer.resources.items():
                col = index[t]
                self.amount[j, col] = amount
                self.present[j, col] = True
            self.win_start[j] = offer.window.start
            self.win_end[j] = offer.window.end


def _score_from_arrays(
    req: _RequestArrays,
    off: _OfferArrays,
    types: List[str],
    maxima: Dict[str, float],
) -> np.ndarray:
    """Eq. (18) for all pairs, accumulated in sorted-type order."""
    shape = (req.amount.shape[0], off.amount.shape[0])
    scores = np.zeros(shape)
    # Two reusable (R, O) scratch buffers shared across all types: ``gap``
    # is squared and offset in place to become the denominator, the
    # numerator is divided in place, and the masked accumulation uses
    # ``where=`` (skipping a pair leaves the sum untouched — the same
    # result as adding the reference's exact ``+0.0``).  Reuse keeps the
    # kernel from allocating two R x O temporaries per resource type.
    gap = np.empty(shape)
    term = np.empty(shape)
    for col, t in enumerate(types):
        top = maxima.get(t, 0.0)
        if top <= 0:
            continue
        rho_o = off.amount[:, col] / top
        rho_r = req.amount[:, col] / top
        np.subtract(rho_o[None, :], rho_r[:, None], out=gap)
        np.multiply(gap, gap, out=gap)
        np.add(gap, 1.0, out=gap)
        np.multiply(req.sigma[:, col][:, None], rho_o[None, :], out=term)
        np.divide(term, gap, out=term)
        # A type the request does not declare is outside K_(r,o): the
        # reference skips it entirely.  (Types absent from the *offer*
        # zero-fill to rho_o == 0, which already yields a 0.0 term.)
        np.add(scores, term, out=scores,
               where=req.present[:, col][:, None])
    return scores


def _feasibility_from_arrays(
    req: _RequestArrays, off: _OfferArrays
) -> np.ndarray:
    """Hard-constraint mask for all pairs (mirrors ``is_feasible``)."""
    n_req = req.amount.shape[0]
    n_off = off.amount.shape[0]
    if n_req == 0 or n_off == 0:
        return np.zeros((n_req, n_off), dtype=bool)

    # Constraints (10)-(11): the offer window contains the request window.
    temporal = (off.win_start[None, :] <= req.win_start[:, None]) & (
        off.win_end[None, :] >= req.win_end[:, None]
    )

    # At least one shared resource type (else Eq. 18 is undefined).
    req_present = req.present.astype(np.float64)
    off_present = off.present.astype(np.float64)
    shared = (req_present @ off_present.T) > 0

    # Constraint (8a): a strict, positive-amount resource missing from
    # the offer is fatal.
    strict_demand = (req.present & req.strict & req.positive).astype(
        np.float64
    )
    strict_missing = (strict_demand @ (1.0 - off_present).T) > 0

    feasible = temporal & shared & ~strict_missing

    # Constraint (8b): where the offer declares the type, its amount must
    # cover the (flexibility-discounted) requirement.  One (R, O)
    # comparison per resource type: K is small (a handful of types), so
    # K passes over an R x O matrix beat a single (R, O, K) broadcast —
    # less peak memory and several times faster.  Pure boolean logic, so
    # the mask is trivially identical to the 3-D formulation.
    violated = np.zeros((n_req, n_off), dtype=bool)
    k_types = req.amount.shape[1]
    for col in range(k_types):
        short = off.amount[:, col][None, :] < req.needed[:, col][:, None]
        relevant = req.positive[:, col][:, None] & off.present[:, col][None, :]
        violated |= short & relevant
    feasible &= ~violated
    return feasible


def score_matrix(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    maxima: Dict[str, float],
) -> np.ndarray:
    """Quality-of-match of every (request, offer) pair, bit-identical to
    :func:`repro.core.matching.quality_of_match`."""
    types = _type_universe(requests, offers)
    return _score_from_arrays(
        _RequestArrays(requests, types), _OfferArrays(offers, types),
        types, maxima,
    )


def feasibility_matrix(
    requests: Sequence[Request], offers: Sequence[Offer]
) -> np.ndarray:
    """Boolean mask equal to ``is_feasible`` on every pair."""
    types = _type_universe(requests, offers)
    return _feasibility_from_arrays(
        _RequestArrays(requests, types), _OfferArrays(offers, types)
    )


def best_offer_sets(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    maxima: Dict[str, float],
    breadth: int,
    scores: Optional[np.ndarray] = None,
    feasible: Optional[np.ndarray] = None,
) -> List[frozenset]:
    """``best_r`` of Alg. 2 for every request in one batched ranking.

    Equivalent to ``best_offer_set(r, offers, maxima, breadth)`` per
    request: feasible offers ranked by (-quality, submit_time, offer_id).
    Precomputed ``scores``/``feasible`` matrices may be passed in (the
    incremental path does).
    """
    if not offers:
        return [frozenset() for _ in requests]
    if scores is None:
        scores = score_matrix(requests, offers, maxima)
    if feasible is None:
        feasible = feasibility_matrix(requests, offers)

    # Secondary permutation: offers by (submit_time, offer_id).  Under
    # the permutation, the reference's (-quality, submit_time, offer_id)
    # total order becomes (key, permuted column index) with
    # key = -score (infeasible -> +inf): exactly what a stable argsort
    # would produce.  ``best_r`` is a *set*, though, so the full argsort
    # can be replaced by top-``breadth`` membership selection:
    # ``np.partition`` yields each row's boundary value (the take-th
    # smallest key), every key strictly below the boundary is in, and
    # ties *at* the boundary are filled in ascending permuted index —
    # the same elements the stable argsort prefix would select.
    perm = sorted(
        range(len(offers)),
        key=lambda j: (offers[j].submit_time, offers[j].offer_id),
    )
    permuted_scores = scores[:, perm]
    permuted_feasible = feasible[:, perm]
    sort_key = np.where(permuted_feasible, -permuted_scores, np.inf)
    counts = permuted_feasible.sum(axis=1)
    take = np.minimum(breadth, counts)

    n_req, n_off = sort_key.shape
    if breadth >= n_off:
        members = permuted_feasible
    else:
        part = np.partition(sort_key, np.arange(breadth), axis=1)
        # Rows with no feasible offer have an all-inf key row; their
        # boundary is inf and ``need`` is 0, selecting nothing.
        boundary = part[np.arange(n_req), np.maximum(take, 1) - 1]
        below = sort_key < boundary[:, None]
        at = sort_key == boundary[:, None]
        need = take - below.sum(axis=1)
        # Fill the first ``need`` boundary ties per row in ascending
        # permuted index.  ``np.nonzero`` walks the (sparse) tie mask in
        # row-major order, so ranking ties by their position within the
        # row replaces a full R x O cumsum with work linear in the number
        # of ties.
        at &= (need > 0)[:, None]
        members = below
        tie_rows, tie_cols = np.nonzero(at)
        if len(tie_rows):
            starts = np.searchsorted(tie_rows, np.arange(n_req))
            rank = np.arange(len(tie_rows)) - starts[tie_rows]
            keep = rank < need[tie_rows]
            members[tie_rows[keep], tie_cols[keep]] = True

    ids = [offers[j].offer_id for j in perm]
    out: List[List[str]] = [[] for _ in requests]
    rows_idx, cols_idx = np.nonzero(members)
    for i, j in zip(rows_idx.tolist(), cols_idx.tolist()):
        out[i].append(ids[j])
    return [frozenset(chosen) for chosen in out]


def _request_fingerprint(request: Request) -> Tuple:
    return (
        request.submit_time,
        request.bid,
        request.duration,
        request.flexibility,
        request.window.start,
        request.window.end,
        tuple(sorted(request.resources.items())),
        tuple(sorted(request.significance.items())),
    )


def _offer_fingerprint(offer: Offer) -> Tuple:
    return (
        offer.submit_time,
        offer.bid,
        offer.window.start,
        offer.window.end,
        tuple(sorted(offer.resources.items())),
    )


class IncrementalMatcher:
    """Incremental score/feasibility rows for repeated (online) blocks.

    The online simulator clears overlapping participant pools every
    block: most requests and offers persist between rounds.  This cache
    keeps, per request id, its score and feasibility row against a
    growing *offer registry*; a new block then only computes

    * rows for requests never seen before,
    * column suffixes for rows that predate newly registered offers.

    Rows are invalidated wholesale when the block maxima change (every
    rho in Eq. 18 shifts) and are bounded by an LRU of ``max_rows``.
    All cached values are bit-identical to a fresh computation: the
    kernel is elementwise per pair, so computing a column subset later
    yields exactly the same floats.
    """

    def __init__(self, max_rows: int = 4096) -> None:
        self.max_rows = max_rows
        self.hits = 0
        self.misses = 0
        self._maxima_key: Optional[Tuple] = None
        self._registry: List[Offer] = []
        self._columns: Dict[str, int] = {}
        self._offer_keys: Dict[str, Tuple] = {}
        #: request_id -> [fingerprint, score_row, feasible_row]; rows are
        #: aligned to a prefix of the registry (their length records how
        #: many columns they have seen).
        self._rows: "OrderedDict[str, list]" = OrderedDict()
        #: request_id -> [fingerprint, score_row, feasible_row, valid];
        #: rows whose columns were filled piecemeal by the candidate
        #: path (:meth:`gather`) — ``valid`` marks which registry
        #: columns actually hold computed values.
        self._partial: "OrderedDict[str, list]" = OrderedDict()

    def reset(self) -> None:
        self._maxima_key = None
        self._registry = []
        self._columns = {}
        self._offer_keys = {}
        self._rows.clear()
        self._partial.clear()

    def _sync_maxima(self, maxima: Dict[str, float]) -> None:
        key = tuple(sorted(maxima.items()))
        if key != self._maxima_key:
            # Every normalized amount changes; feasibility would survive,
            # but a shared invalidation keeps the bookkeeping simple.
            self._rows.clear()
            self._partial.clear()
            self._maxima_key = key

    def _sync_offers(self, offers: Sequence[Offer]) -> None:
        fresh: List[Offer] = []
        for offer in offers:
            known = self._offer_keys.get(offer.offer_id)
            if known is None:
                fresh.append(offer)
            elif known != _offer_fingerprint(offer):
                # Same id, different content: the cache keys no longer
                # identify bids — start over.
                self.reset()
                self._sync_offers(offers)
                return
        for offer in fresh:
            self._columns[offer.offer_id] = len(self._registry)
            self._registry.append(offer)
            self._offer_keys[offer.offer_id] = _offer_fingerprint(offer)
        # Compact when expired offers dominate the registry, so cached
        # rows stop paying for columns nobody asks about.
        if len(self._registry) > 2 * len(offers) + 32:
            self._compact({o.offer_id for o in offers})

    def _compact(self, live_ids: set) -> None:
        keep = [j for j, o in enumerate(self._registry) if o.offer_id in live_ids]
        keep_arr = np.array(keep, dtype=int)
        new_registry = [self._registry[j] for j in keep]
        for entry in self._rows.values():
            length = len(entry[1])
            usable = keep_arr[keep_arr < length]
            if len(usable) == len(keep_arr):
                entry[1] = entry[1][keep_arr]
                entry[2] = entry[2][keep_arr]
            else:
                entry[1] = None  # row predates some surviving columns
        self._rows = OrderedDict(
            (rid, e) for rid, e in self._rows.items() if e[1] is not None
        )
        for entry in self._partial.values():
            length = len(entry[1])
            usable = keep_arr[keep_arr < length]
            if len(usable) == len(keep_arr):
                entry[1] = entry[1][keep_arr]
                entry[2] = entry[2][keep_arr]
                entry[3] = entry[3][keep_arr]
            else:
                entry[1] = None
        self._partial = OrderedDict(
            (rid, e) for rid, e in self._partial.items() if e[1] is not None
        )
        self._registry = new_registry
        self._columns = {o.offer_id: j for j, o in enumerate(new_registry)}
        self._offer_keys = {
            oid: key for oid, key in self._offer_keys.items() if oid in live_ids
        }

    def _compute_rows(
        self,
        requests: List[Request],
        offers: List[Offer],
        maxima: Dict[str, float],
    ) -> Tuple[np.ndarray, np.ndarray]:
        types = _type_universe(requests, offers)
        req = _RequestArrays(requests, types)
        off = _OfferArrays(offers, types)
        return (
            _score_from_arrays(req, off, types, maxima),
            _feasibility_from_arrays(req, off),
        )

    def matrices(
        self,
        requests: Sequence[Request],
        offers: Sequence[Offer],
        maxima: Dict[str, float],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(scores, feasible) for ``requests`` x ``offers``."""
        self._sync_maxima(maxima)
        self._sync_offers(offers)
        registry_size = len(self._registry)

        missing: List[Request] = []
        stale: Dict[int, List[Request]] = {}
        for request in requests:
            entry = self._rows.get(request.request_id)
            if entry is None or entry[0] != _request_fingerprint(request):
                missing.append(request)
            elif len(entry[1]) < registry_size:
                stale.setdefault(len(entry[1]), []).append(request)
            else:
                self.hits += 1
                self._rows.move_to_end(request.request_id)

        if missing:
            self.misses += len(missing)
            scores, feasible = self._compute_rows(
                missing, self._registry, maxima
            )
            for i, request in enumerate(missing):
                self._rows[request.request_id] = [
                    _request_fingerprint(request), scores[i], feasible[i],
                ]
                self._rows.move_to_end(request.request_id)
        for length, group in stale.items():
            # Only the columns added since these rows were computed.
            self.misses += len(group)
            scores, feasible = self._compute_rows(
                group, self._registry[length:], maxima
            )
            for i, request in enumerate(group):
                entry = self._rows[request.request_id]
                entry[1] = np.concatenate([entry[1], scores[i]])
                entry[2] = np.concatenate([entry[2], feasible[i]])
                self._rows.move_to_end(request.request_id)

        cols = np.array(
            [self._columns[o.offer_id] for o in offers], dtype=int
        )
        n_req, n_off = len(requests), len(offers)
        if n_req == 0 or n_off == 0:
            while len(self._rows) > self.max_rows:
                self._rows.popitem(last=False)
            return (
                np.empty((n_req, n_off)),
                np.empty((n_req, n_off), dtype=bool),
            )
        # Every requested row was brought to full registry length above,
        # so the rows stack into one matrix and the live columns are
        # gathered with a single fancy index instead of one per row.
        entries = [self._rows[r.request_id] for r in requests]
        out_scores = np.stack([e[1] for e in entries])[:, cols]
        out_feasible = np.stack([e[2] for e in entries])[:, cols]
        # Evict only after assembling the output: one oversized block
        # (more rows than ``max_rows``) must not drop rows it is about
        # to serve.
        while len(self._rows) > self.max_rows:
            self._rows.popitem(last=False)
        return out_scores, out_feasible

    def best_offer_sets(
        self,
        requests: Sequence[Request],
        offers: Sequence[Offer],
        maxima: Dict[str, float],
        breadth: int,
    ) -> List[frozenset]:
        """Incremental drop-in for :func:`best_offer_sets`."""
        if not offers:
            return [frozenset() for _ in requests]
        scores, feasible = self.matrices(requests, offers, maxima)
        return best_offer_sets(
            requests, offers, maxima, breadth,
            scores=scores, feasible=feasible,
        )

    def prepare(
        self, offers: Sequence[Offer], maxima: Dict[str, float]
    ) -> None:
        """Register a block's offers/maxima without computing any rows."""
        self._sync_maxima(maxima)
        self._sync_offers(offers)

    def gather(
        self,
        requests: Sequence[Request],
        cols: np.ndarray,
        maxima: Dict[str, float],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(scores, feasible) for ``requests`` x registry columns ``cols``.

        The candidate path asks for sparse column subsets, so full
        registry rows would mostly hold values nobody looks at.  These
        rows instead carry a per-column validity mask: a request whose
        requested columns are all valid is a pure cache hit; otherwise
        the *requested* columns are recomputed in one kernel call
        (recomputing an already-valid column rewrites the identical
        float — the kernel is elementwise and deterministic).  Call
        :meth:`prepare` first so the registry matches the block.
        """
        registry_size = len(self._registry)
        cols = np.asarray(cols, dtype=int)
        need_compute: List[Request] = []
        for request in requests:
            entry = self._partial.get(request.request_id)
            if entry is None or entry[0] != _request_fingerprint(request):
                entry = [
                    _request_fingerprint(request),
                    np.zeros(registry_size),
                    np.zeros(registry_size, dtype=bool),
                    np.zeros(registry_size, dtype=bool),
                ]
                self._partial[request.request_id] = entry
            elif len(entry[1]) < registry_size:
                grow = registry_size - len(entry[1])
                entry[1] = np.concatenate([entry[1], np.zeros(grow)])
                entry[2] = np.concatenate(
                    [entry[2], np.zeros(grow, dtype=bool)]
                )
                entry[3] = np.concatenate(
                    [entry[3], np.zeros(grow, dtype=bool)]
                )
            if entry[3][cols].all():
                self.hits += 1
            else:
                need_compute.append(request)
            self._partial.move_to_end(request.request_id)

        if need_compute:
            self.misses += len(need_compute)
            subset = [self._registry[j] for j in cols.tolist()]
            scores, feasible = self._compute_rows(
                need_compute, subset, maxima
            )
            for i, request in enumerate(need_compute):
                entry = self._partial[request.request_id]
                entry[1][cols] = scores[i]
                entry[2][cols] = feasible[i]
                entry[3][cols] = True

        if requests:
            entries = [self._partial[r.request_id] for r in requests]
            out_scores = np.stack([e[1] for e in entries])[:, cols]
            out_feasible = np.stack([e[2] for e in entries])[:, cols]
        else:
            out_scores = np.empty((0, len(cols)))
            out_feasible = np.empty((0, len(cols)), dtype=bool)
        while len(self._partial) > self.max_rows:
            self._partial.popitem(last=False)
        return out_scores, out_feasible

    def scorer(self, offers: Sequence[Offer], maxima: Dict[str, float]):
        """A candidate-stage scorer backed by this cache.

        Returns ``scorer(requests, offer_indices)`` where
        ``offer_indices`` index into ``offers`` (the block's offer
        list); rows persist across blocks like the full-row cache.
        """
        self.prepare(offers, maxima)
        offer_cols = np.array(
            [self._columns[o.offer_id] for o in offers], dtype=int
        )

        def scorer(requests, indices):
            cols = offer_cols[np.asarray(indices, dtype=int)]
            return self.gather(requests, cols, maxima)

        return scorer
