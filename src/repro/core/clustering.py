"""Cluster formation (paper Alg. 2).

A *cluster* is a set of offers plus the set of requests for which those
offers are (a subset of) their best matches.  Alg. 2 maintains the
invariant that requests propagate into clusters whose offer sets are
subsets of their best-offer set, and intersection clusters are created so
that requests agreeing on part of their best offers still compete in one
mini-auction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.common.timing import PhaseTimer, resolve
from repro.core.config import AuctionConfig
from repro.core.matching import best_offer_set, block_maxima
from repro.market.bids import Offer, Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.core.matching_vectorized import IncrementalMatcher


@dataclass
class Cluster:
    """A set of offer ids and the request ids grouped onto them."""

    offer_ids: frozenset
    request_ids: Set[str] = field(default_factory=set)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(offers={sorted(self.offer_ids)}, "
            f"requests={sorted(self.request_ids)})"
        )


def update_clusters(
    clusters: List[Cluster], request_id: str, best: frozenset
) -> None:
    """Insert one request's best-offer set into the cluster structure.

    Direct transcription of Alg. 2:

    * ensure a cluster keyed exactly by ``best`` exists;
    * add the request to every cluster whose offers are a subset of
      ``best`` (they are competing for the same machines);
    * fold superset clusters' requests into those subsets (their requests
      can also be served by the narrower offer set);
    * for partially-overlapping clusters, materialize the intersection
      (when it still contains more than one offer) as its own cluster.
    """
    if not best:
        return
    if not any(cluster.offer_ids == best for cluster in clusters):
        clusters.append(Cluster(offer_ids=best))

    subsets = [c for c in clusters if c.offer_ids <= best]
    supersets = [c for c in clusters if best <= c.offer_ids]
    for subset in subsets:
        subset.request_ids.add(request_id)
        for superset in supersets:
            if superset is subset:
                continue
            subset.request_ids |= superset.request_ids

    for cluster in list(clusters):
        if cluster.offer_ids == best:
            continue
        intersection = cluster.offer_ids & best
        if len(intersection) > 1 and intersection != cluster.offer_ids:
            existing = next(
                (c for c in clusters if c.offer_ids == intersection), None
            )
            if existing is None:
                clusters.append(
                    Cluster(
                        offer_ids=frozenset(intersection),
                        request_ids={request_id} | set(cluster.request_ids),
                    )
                )
            else:
                existing.request_ids.add(request_id)


class _IndexedClusters:
    """Inverted-index Alg. 2 builder, exactly equivalent to repeated
    :func:`update_clusters` calls.

    The reference insertion scans the whole cluster list per request —
    O(C) per insert and quadratic over a block, which dominates once
    candidate generation makes the matching itself sub-quadratic.  Every
    cluster affected by an insertion (subset, superset, or >1-offer
    intersection of ``best``) shares at least one offer with ``best``,
    so posting lists by offer id find the exact candidate set; a
    by-offer-set map replaces the linear ``existing`` lookups.  Append
    order, request-set contents and object shapes match the reference
    builder exactly (``tests/test_clustering_indexed.py``).
    """

    def __init__(self) -> None:
        self.clusters: List[Cluster] = []
        self._by_key: Dict[frozenset, int] = {}
        self._by_offer: Dict[str, List[int]] = {}

    def _append(self, cluster: Cluster) -> None:
        position = len(self.clusters)
        self.clusters.append(cluster)
        self._by_key[cluster.offer_ids] = position
        for offer_id in cluster.offer_ids:
            self._by_offer.setdefault(offer_id, []).append(position)

    def insert(self, request_id: str, best: frozenset) -> None:
        if not best:
            return
        if best not in self._by_key:
            self._append(Cluster(offer_ids=best))
        best_position = self._by_key[best]
        clusters = self.clusters
        touched = sorted(
            {
                position
                for offer_id in best
                for position in self._by_offer.get(offer_id, ())
            }
        )
        subsets = [p for p in touched if clusters[p].offer_ids <= best]
        supersets = [p for p in touched if best <= clusters[p].offer_ids]

        # The reference folds every superset's requests into every
        # subset (skipping the one cluster that is both — ``best``
        # itself).  Strict supersets are never mutated in that loop, so
        # the fold is order-insensitive given the pre-insert snapshots.
        best_snapshot = set(clusters[best_position].request_ids)
        strict_union: Set[str] = set()
        for p in supersets:
            if p != best_position:
                strict_union |= clusters[p].request_ids
        for p in subsets:
            cluster = clusters[p]
            cluster.request_ids.add(request_id)
            cluster.request_ids |= strict_union
            if p != best_position:
                cluster.request_ids |= best_snapshot

        # Intersection materialization: the reference iterates a
        # snapshot of the cluster list (clusters appended below are not
        # revisited) but resolves ``existing`` against the live list.
        for p in touched:
            cluster = clusters[p]
            if cluster.offer_ids == best:
                continue
            intersection = cluster.offer_ids & best
            if len(intersection) > 1 and intersection != cluster.offer_ids:
                existing = self._by_key.get(intersection)
                if existing is None:
                    self._append(
                        Cluster(
                            offer_ids=frozenset(intersection),
                            request_ids={request_id}
                            | set(cluster.request_ids),
                        )
                    )
                else:
                    clusters[existing].request_ids.add(request_id)


def build_clusters(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    config: AuctionConfig,
    matcher: Optional["IncrementalMatcher"] = None,
    timer: Optional[PhaseTimer] = None,
) -> tuple[List[Cluster], List[Request]]:
    """Run Alg. 2 over a block.

    Returns the cluster list and the requests that found no feasible
    offer at all (they are unmatched before the auction even starts).
    Requests are processed in submission order so the structure — like
    everything else in the mechanism — cannot be gamed by delaying.

    ``config.engine`` picks how the per-request best-offer sets are
    computed: the scalar reference, or the batched NumPy kernel (with an
    optional :class:`~repro.core.matching_vectorized.IncrementalMatcher`
    reusing rows across blocks).  ``config.candidates`` optionally puts
    a certified candidate-generation stage in front of either engine
    (see :mod:`repro.core.candidates`).  All paths produce bit-identical
    sets, so the cluster structure is engine- and candidate-invariant.

    ``timer`` (optional) records the ``match`` (best-offer sets) and
    ``cluster`` (Alg. 2 insertion) phases.
    """
    timer = resolve(timer)
    with timer.phase("match"):
        maxima = block_maxima(requests, offers)
        ordered = sorted(
            requests, key=lambda r: (r.submit_time, r.request_id)
        )
        if config.candidates is not None and offers:
            best_sets = _candidate_best_sets(
                ordered, offers, maxima, config, matcher
            )
        elif config.engine == "vectorized":
            best_sets = _vectorized_best_sets(
                ordered, offers, maxima, config, matcher
            )
        else:
            best_sets = [
                best_offer_set(
                    request, offers, maxima, config.cluster_breadth
                )
                for request in ordered
            ]
    with timer.phase("cluster"):
        builder = _IndexedClusters()
        orphans: List[Request] = []
        for request, best in zip(ordered, best_sets):
            if not best:
                orphans.append(request)
                continue
            builder.insert(request.request_id, best)
    return builder.clusters, orphans


def _vectorized_best_sets(
    ordered: Sequence[Request],
    offers: Sequence[Offer],
    maxima,
    config: AuctionConfig,
    matcher: Optional["IncrementalMatcher"],
) -> List[frozenset]:
    from repro.core import matching_vectorized

    if matcher is not None:
        return matcher.best_offer_sets(
            ordered, offers, maxima, config.cluster_breadth
        )
    return matching_vectorized.best_offer_sets(
        ordered, offers, maxima, config.cluster_breadth
    )


def _candidate_best_sets(
    ordered: Sequence[Request],
    offers: Sequence[Offer],
    maxima,
    config: AuctionConfig,
    matcher: Optional["IncrementalMatcher"],
) -> List[frozenset]:
    """Best-offer sets through the certified candidate stage.

    The vectorized engine takes the generator's own ranking (assembled
    from the exact scores it collected while admitting candidates); the
    reference engine re-ranks each request's admitted offers with the
    scalar kernel — deliberately a different code path, so the
    differential suite compares two independent ways of consuming the
    same certificates.
    """
    generator = config.candidates
    scorer = None
    if (
        config.engine == "vectorized"
        and matcher is not None
        and len(ordered) <= matcher.max_rows
    ):
        # The matcher's partial-row cache costs O(registry) per request
        # row, which only pays off when the whole round fits in the LRU
        # and rows survive to the next online round.  A block larger
        # than ``max_rows`` would evict rows before any reuse, so the
        # one-shot direct scorer (O(chunk x group) allocations) wins.
        scorer = matcher.scorer(offers, maxima)
    result = generator.generate(
        ordered, offers, maxima, config.cluster_breadth, scorer=scorer
    )
    if config.engine == "vectorized":
        return result.best_sets
    return [
        best_offer_set(
            request,
            [offers[j] for j in result.candidate_indices(i).tolist()],
            maxima,
            config.cluster_breadth,
        )
        for i, request in enumerate(ordered)
    ]


def clusters_by_offer(clusters: Sequence[Cluster]) -> Dict[str, List[Cluster]]:
    """Index clusters by the offers they contain (diagnostics)."""
    index: Dict[str, List[Cluster]] = {}
    for cluster in clusters:
        for offer_id in cluster.offer_ids:
            index.setdefault(offer_id, []).append(cluster)
    return index
