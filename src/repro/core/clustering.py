"""Cluster formation (paper Alg. 2).

A *cluster* is a set of offers plus the set of requests for which those
offers are (a subset of) their best matches.  Alg. 2 maintains the
invariant that requests propagate into clusters whose offer sets are
subsets of their best-offer set, and intersection clusters are created so
that requests agreeing on part of their best offers still compete in one
mini-auction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.common.timing import PhaseTimer, resolve
from repro.core.config import AuctionConfig
from repro.core.matching import best_offer_set, block_maxima
from repro.market.bids import Offer, Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.core.matching_vectorized import IncrementalMatcher


@dataclass
class Cluster:
    """A set of offer ids and the request ids grouped onto them."""

    offer_ids: frozenset
    request_ids: Set[str] = field(default_factory=set)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(offers={sorted(self.offer_ids)}, "
            f"requests={sorted(self.request_ids)})"
        )


def update_clusters(
    clusters: List[Cluster], request_id: str, best: frozenset
) -> None:
    """Insert one request's best-offer set into the cluster structure.

    Direct transcription of Alg. 2:

    * ensure a cluster keyed exactly by ``best`` exists;
    * add the request to every cluster whose offers are a subset of
      ``best`` (they are competing for the same machines);
    * fold superset clusters' requests into those subsets (their requests
      can also be served by the narrower offer set);
    * for partially-overlapping clusters, materialize the intersection
      (when it still contains more than one offer) as its own cluster.
    """
    if not best:
        return
    if not any(cluster.offer_ids == best for cluster in clusters):
        clusters.append(Cluster(offer_ids=best))

    subsets = [c for c in clusters if c.offer_ids <= best]
    supersets = [c for c in clusters if best <= c.offer_ids]
    for subset in subsets:
        subset.request_ids.add(request_id)
        for superset in supersets:
            if superset is subset:
                continue
            subset.request_ids |= superset.request_ids

    for cluster in list(clusters):
        if cluster.offer_ids == best:
            continue
        intersection = cluster.offer_ids & best
        if len(intersection) > 1 and intersection != cluster.offer_ids:
            existing = next(
                (c for c in clusters if c.offer_ids == intersection), None
            )
            if existing is None:
                clusters.append(
                    Cluster(
                        offer_ids=frozenset(intersection),
                        request_ids={request_id} | set(cluster.request_ids),
                    )
                )
            else:
                existing.request_ids.add(request_id)


def build_clusters(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    config: AuctionConfig,
    matcher: Optional["IncrementalMatcher"] = None,
    timer: Optional[PhaseTimer] = None,
) -> tuple[List[Cluster], List[Request]]:
    """Run Alg. 2 over a block.

    Returns the cluster list and the requests that found no feasible
    offer at all (they are unmatched before the auction even starts).
    Requests are processed in submission order so the structure — like
    everything else in the mechanism — cannot be gamed by delaying.

    ``config.engine`` picks how the per-request best-offer sets are
    computed: the scalar reference, or the batched NumPy kernel (with an
    optional :class:`~repro.core.matching_vectorized.IncrementalMatcher`
    reusing rows across blocks).  Both produce bit-identical sets, so
    the cluster structure is engine-invariant.

    ``timer`` (optional) records the ``match`` (best-offer sets) and
    ``cluster`` (Alg. 2 insertion) phases.
    """
    timer = resolve(timer)
    with timer.phase("match"):
        maxima = block_maxima(requests, offers)
        ordered = sorted(
            requests, key=lambda r: (r.submit_time, r.request_id)
        )
        if config.engine == "vectorized":
            best_sets = _vectorized_best_sets(
                ordered, offers, maxima, config, matcher
            )
        else:
            best_sets = [
                best_offer_set(
                    request, offers, maxima, config.cluster_breadth
                )
                for request in ordered
            ]
    with timer.phase("cluster"):
        clusters: List[Cluster] = []
        orphans: List[Request] = []
        for request, best in zip(ordered, best_sets):
            if not best:
                orphans.append(request)
                continue
            update_clusters(clusters, request.request_id, best)
    return clusters, orphans


def _vectorized_best_sets(
    ordered: Sequence[Request],
    offers: Sequence[Offer],
    maxima,
    config: AuctionConfig,
    matcher: Optional["IncrementalMatcher"],
) -> List[frozenset]:
    from repro.core import matching_vectorized

    if matcher is not None:
        return matcher.best_offer_sets(
            ordered, offers, maxima, config.cluster_breadth
        )
    return matching_vectorized.best_offer_sets(
        ordered, offers, maxima, config.cluster_breadth
    )


def clusters_by_offer(clusters: Sequence[Cluster]) -> Dict[str, List[Cluster]]:
    """Index clusters by the offers they contain (diagnostics)."""
    index: Dict[str, List[Cluster]] = {}
    for cluster in clusters:
        for offer_id in cluster.offer_ids:
            index.setdefault(offer_id, []).append(cluster)
    return index
