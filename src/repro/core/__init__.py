"""DeCloud's core contribution: the truthful clustered double auction."""

from repro.core.audit import AuditReport, audit_outcome
from repro.core.auction import DecloudAuction
from repro.core.explain import Explanation, explain_block, explain_request
from repro.core.cluster_allocation import (
    ClusterAllocation,
    OfferCapacity,
    allocate_cluster,
)
from repro.core.candidates import (
    AllPairsGenerator,
    CandidateGenerator,
    CandidateResult,
    GeoBucketGenerator,
    NetworkZoneGenerator,
    ResourceVectorGenerator,
    SafetyCertificate,
    check_certificate,
    tie_rank_key,
)
from repro.core.clustering import Cluster, build_clusters, update_clusters
from repro.core.config import AuctionConfig, ShardPlan
from repro.core.sharding import (
    Shard,
    derive_shard_evidence,
    partition_block,
    run_sharded,
    shard_key,
)
from repro.core.matching import (
    best_offer_set,
    block_maxima,
    quality_of_match,
    rank_offers,
)
from repro.core.matching_vectorized import (
    IncrementalMatcher,
    best_offer_sets,
    feasibility_matrix,
    score_matrix,
)
from repro.core.miniauctions import (
    MiniAuction,
    build_mini_auctions,
    price_compatible,
    select_roots,
)
from repro.core.normalization import (
    ClusterEconomics,
    compute_economics,
    payment_for,
)
from repro.core.normalization_vectorized import compute_economics_batch
from repro.core.pricing import (
    pooled_price_vectorized,
    pooled_prices_batch,
)
from repro.core.outcome import (
    AuctionOutcome,
    Match,
    canonical_outcome,
    utility_of_client,
    utility_of_provider,
)
from repro.core.trade_reduction import clear_mini_auction, pooled_price
from repro.core.welfare import (
    pair_welfare,
    resource_fraction,
    satisfaction,
    total_welfare,
)

__all__ = [
    "AuditReport",
    "audit_outcome",
    "Explanation",
    "explain_block",
    "explain_request",
    "DecloudAuction",
    "AuctionConfig",
    "ShardPlan",
    "Shard",
    "shard_key",
    "partition_block",
    "derive_shard_evidence",
    "run_sharded",
    "AuctionOutcome",
    "Match",
    "canonical_outcome",
    "utility_of_client",
    "utility_of_provider",
    "Cluster",
    "build_clusters",
    "update_clusters",
    "CandidateGenerator",
    "CandidateResult",
    "SafetyCertificate",
    "AllPairsGenerator",
    "ResourceVectorGenerator",
    "GeoBucketGenerator",
    "NetworkZoneGenerator",
    "check_certificate",
    "tie_rank_key",
    "ClusterAllocation",
    "OfferCapacity",
    "allocate_cluster",
    "quality_of_match",
    "rank_offers",
    "best_offer_set",
    "block_maxima",
    "IncrementalMatcher",
    "best_offer_sets",
    "feasibility_matrix",
    "score_matrix",
    "MiniAuction",
    "build_mini_auctions",
    "price_compatible",
    "select_roots",
    "ClusterEconomics",
    "compute_economics",
    "compute_economics_batch",
    "payment_for",
    "clear_mini_auction",
    "pooled_price",
    "pooled_prices_batch",
    "pooled_price_vectorized",
    "pair_welfare",
    "resource_fraction",
    "total_welfare",
    "satisfaction",
]
