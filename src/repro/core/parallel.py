"""Process-pool clearing of independent mini-auctions.

Mini-auctions interact only through the participants they consume: an
auction whose requests and offers are disjoint from every earlier
auction's cannot observe whether those auctions ran before it.  That
makes the sequential clearing loop of Alg. 1 parallelizable by *waves*:
auction ``i`` is scheduled one level after the latest earlier auction it
shares a participant with, and auctions on the same level clear
concurrently.

Sequential clearing draws all randomization from one evidence-seeded RNG
stream, which serializes the auctions.  The scheduled path instead
derives an independent stream per auction from the evidence and the
auction's position (:func:`derive_auction_rng`) — still fully
deterministic and miner-reproducible, and *identical whether the wave
runs in-process or across a process pool*.  ``AuctionConfig`` gates the
behaviour: ``miniauction_workers == 0`` keeps the historical shared
stream; ``>= 1`` uses per-auction streams; ``> 1`` adds the pool.

The non-nesting invariant
-------------------------

One clearing tree uses at most **one** process pool.  All pooled
execution — the shard fan-out of :mod:`repro.core.sharding` and the
mini-auction waves here — goes through :func:`shared_pool`, which hands
nested requests the outermost lease instead of spawning a second
executor, so total workers stay capped at the outermost width (the shard
fan-out caps at ``ShardPlan.shard_workers``).  Code that already runs
*inside* a pool worker must never request a pool of its own: the shard
runner clamps the per-shard ``miniauction_workers`` to <= 1 before a
shard config crosses the pickle boundary, and :class:`PoolLease` refuses
to resurrect a lease inherited from a forked parent (the pid guard).
Pools are also created lazily — a schedule whose waves are all
single-auction never pays the worker-spawn cost.
"""

from __future__ import annotations

import os
import random
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.common.rng import block_evidence_rng
from repro.core.config import AuctionConfig
from repro.core.miniauctions import MiniAuction
from repro.core.pricing import pooled_prices_batch
from repro.core.trade_reduction import (
    ClearingResult,
    _live_allocations,
    clear_mini_auction,
)
from repro.market.bids import Offer, Request
# Telemetry plane: capture_task/merge_payload only touch repro.common and
# repro.obs.registry at import time, so this cannot cycle back into core.
from repro.obs.telemetry import TelemetryPayload, capture_task, merge_payload


def derive_auction_rng(evidence: bytes, index: int) -> random.Random:
    """Independent verifiable stream for the ``index``-th mini-auction."""
    return block_evidence_rng(evidence + b"/mini-auction/" + str(index).encode())


class PoolLease:
    """A lazily-spawned, reusable :class:`ProcessPoolExecutor` handle.

    ``get()`` spawns the executor on first call and returns ``None``
    when the platform refuses to spawn workers (sandboxes) — callers
    then fall back to in-process execution, which is bit-identical by
    the per-auction/per-shard RNG-stream construction.  ``fail()``
    abandons a pool whose ``map`` raised so later waves stop retrying
    it.  The lease carries the pid that created it: a forked worker
    inheriting the module global must not touch the parent's executor.
    """

    __slots__ = ("max_workers", "_pool", "_pid", "_failed")

    def __init__(self, max_workers: int) -> None:
        self.max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pid = os.getpid()
        self._failed = False

    def get(self) -> Optional[ProcessPoolExecutor]:
        """The executor, spawned on first use; ``None`` if unavailable."""
        if self._failed or self._pid != os.getpid():
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers
                )
            except (OSError, PermissionError):  # pragma: no cover - sandboxed
                self._failed = True
                return None
        return self._pool

    def fail(self) -> None:
        """Abandon a broken pool; subsequent ``get()`` returns ``None``."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self._failed = True

    def close(self) -> None:
        if self._pool is not None and self._pid == os.getpid():
            self._pool.shutdown()
        self._pool = None


_CURRENT_LEASE: Optional[PoolLease] = None


@contextmanager
def shared_pool(max_workers: int) -> Iterator[PoolLease]:
    """Lease the clearing tree's single process pool.

    The outermost caller creates (and finally closes) the lease; nested
    callers are handed the *same* lease, so one pool serves both the
    shard fan-out and any inner mini-auction waves run by the parent
    process — the non-nesting invariant documented above.  Nested
    requests keep the outermost width: total workers never exceed what
    the outermost caller asked for.
    """
    global _CURRENT_LEASE
    current = _CURRENT_LEASE
    if current is not None and current._pid == os.getpid():
        yield current
        return
    lease = PoolLease(max_workers)
    _CURRENT_LEASE = lease
    try:
        yield lease
    finally:
        _CURRENT_LEASE = None
        lease.close()


def auction_participants(auction: MiniAuction) -> Set[str]:
    """Tagged participant ids of an auction (requests and offers)."""
    participants: Set[str] = set()
    for allocation in auction.allocations:
        cluster = allocation.cluster
        participants.update(f"r:{rid}" for rid in cluster.request_ids)
        participants.update(f"o:{oid}" for oid in cluster.offer_ids)
    return participants


def schedule_waves(auctions: Sequence[MiniAuction]) -> List[List[int]]:
    """Level-schedule auction indices: same wave => disjoint participants.

    Auction ``i`` lands one level below the deepest earlier auction it
    conflicts with, so executing waves in order reproduces the sequential
    consumed-participant evolution exactly.
    """
    participant_sets = [auction_participants(a) for a in auctions]
    levels: List[int] = []
    for i, participants in enumerate(participant_sets):
        level = 0
        for j in range(i):
            if participants & participant_sets[j]:
                level = max(level, levels[j] + 1)
        levels.append(level)
    waves: List[List[int]] = [[] for _ in range(max(levels, default=-1) + 1)]
    for i, level in enumerate(levels):
        waves[level].append(i)
    return waves


def _restrict(mapping: Dict[str, object], ids: Set[str]) -> Dict[str, object]:
    return {key: value for key, value in mapping.items() if key in ids}


def _clear_task(
    args: Tuple[
        MiniAuction,
        Dict[str, Request],
        Dict[str, Offer],
        Set[str],
        Set[str],
        AuctionConfig,
        bytes,
        int,
    ],
) -> ClearingResult:
    """Worker body: clear one auction with its derived RNG stream."""
    (auction, requests, offers, consumed_requests, consumed_offers,
     config, evidence, index) = args
    return clear_mini_auction(
        auction, requests, offers, consumed_requests, consumed_offers,
        config, derive_auction_rng(evidence, index),
    )


def _clear_task_captured(
    args: tuple,
) -> Tuple[Optional[ClearingResult], TelemetryPayload, Optional[BaseException]]:
    """Worker body under a local telemetry bundle (never observably dark).

    Runs :func:`_clear_task` inside :class:`~repro.obs.telemetry.capture_task`:
    the worker's metric deltas and trace records ship home with the
    result, *including on failure* — the payload arrives tagged
    ``aborted`` and the parent re-raises after merging it.
    """
    index = args[7]
    with capture_task(f"mini:{index}", "mini_auction") as cap:
        cap.set_value(_clear_task(args))
    return cap.value, cap.payload, cap.error


def _clear_wave_batched(tasks: Sequence[tuple]) -> List[ClearingResult]:
    """In-process wave clearing with SBBA pricing batched over the wave.

    Auctions in a wave are participant-disjoint, so their live re-fits
    and Eq. (20) prices are independent: the vectorized engine computes
    every auction's pooled price in one :func:`pooled_prices_batch`
    call, then clears each auction with its precomputed price.
    Bit-identical to clearing the wave one auction at a time.
    """
    lives = [
        _live_allocations(t[0], t[1], t[2], t[3], t[4], t[5]) for t in tasks
    ]
    pooled = pooled_prices_batch(lives)
    return [
        clear_mini_auction(
            t[0], t[1], t[2], t[3], t[4], t[5],
            derive_auction_rng(t[6], t[7]), live=live, pooled=price,
        )
        for t, live, price in zip(tasks, lives, pooled)
    ]


def clear_auctions_scheduled(
    auctions: Sequence[MiniAuction],
    request_by_id: Dict[str, Request],
    offer_by_id: Dict[str, Offer],
    consumed_requests: Set[str],
    consumed_offers: Set[str],
    config: AuctionConfig,
    evidence: bytes,
    obs: object = None,
) -> List[ClearingResult]:
    """Clear every auction with per-auction RNG streams, wave by wave.

    Mutates ``consumed_requests``/``consumed_offers`` exactly as the
    sequential loop would; the returned results are in auction order.
    With ``miniauction_workers > 1`` waves of two or more auctions run in
    a process pool — spawned lazily at the *first* such wave (an
    all-single-auction schedule never pays worker startup) and shared
    with any enclosing :func:`shared_pool` lease (e.g. the shard
    fan-out).  If the platform refuses to spawn workers the wave falls
    back to in-process execution, which is bit-identical.

    When ``obs`` has opted into the telemetry plane
    (``Observability(telemetry=True)``), every task — pooled *or*
    in-process — runs under a worker-local bundle whose deltas merge
    back into ``obs`` under ``worker="mini"`` in wave order.  The
    capture decision depends only on the bundle and the schedule, never
    on the worker count or whether a pool actually spawned, so the
    merged trace is byte-identical across ``miniauction_workers`` >= 1.
    """
    capture = (
        obs is not None
        and getattr(obs, "enabled", False)
        and getattr(obs, "telemetry", False)
    )
    if config.candidates is not None:
        # Candidate generators play no role in clearing and carry
        # transient state (stats, location maps) that must not cross
        # the process-pool pickle boundary.
        config = replace(config, candidates=None)
    results: List[ClearingResult] = [None] * len(auctions)  # type: ignore[list-item]
    may_pool = config.miniauction_workers > 1 and len(auctions) > 1
    with shared_pool(config.miniauction_workers) as lease:
        for wave in schedule_waves(auctions):
            tasks = []
            for index in wave:
                auction = auctions[index]
                request_ids = {
                    rid
                    for allocation in auction.allocations
                    for rid in allocation.cluster.request_ids
                }
                offer_ids = {
                    oid
                    for allocation in auction.allocations
                    for oid in allocation.cluster.offer_ids
                }
                tasks.append((
                    auction,
                    _restrict(request_by_id, request_ids),
                    _restrict(offer_by_id, offer_ids),
                    consumed_requests & request_ids,
                    consumed_offers & offer_ids,
                    config,
                    evidence,
                    index,
                ))
            pool = lease.get() if may_pool and len(wave) > 1 else None
            if capture:
                # Per-task capture replaces the batched fast path: the
                # clearing math is bit-identical either way (enforced by
                # the equivalence suite), and attribution needs one
                # bundle per task.
                if pool is not None:
                    try:
                        captured = list(pool.map(_clear_task_captured, tasks))
                    except (OSError, PermissionError):  # pragma: no cover
                        lease.fail()
                        captured = [_clear_task_captured(t) for t in tasks]
                else:
                    captured = [_clear_task_captured(t) for t in tasks]
                first_error: Optional[BaseException] = None
                wave_results = []
                for value, payload, error in captured:
                    # Merge before any re-raise: failed tasks report too.
                    merge_payload(obs, payload, worker="mini")
                    if error is not None and first_error is None:
                        first_error = error
                    wave_results.append(value)
                if first_error is not None:
                    raise first_error
            elif pool is not None:
                try:
                    wave_results = list(pool.map(_clear_task, tasks))
                except (OSError, PermissionError):  # pragma: no cover
                    lease.fail()
                    wave_results = [_clear_task(task) for task in tasks]
            elif (
                config.engine == "vectorized"
                and config.enable_trade_reduction
                and tasks
            ):
                wave_results = _clear_wave_batched(tasks)
            else:
                wave_results = [_clear_task(task) for task in tasks]
            for index, result in zip(wave, wave_results):
                results[index] = result
                consumed_requests |= result.participant_requests
                consumed_offers |= result.participant_offers
    return results
