"""Batched per-cluster normalization (the fast path of paper §IV-C).

:func:`compute_economics_batch` computes
:class:`~repro.core.normalization.ClusterEconomics` for *many* clusters
at once: the participants of all clusters are flattened into
segment-indexed NumPy arrays over one sorted type universe, and the
virtual maximum, critical-resource set, ``nu``, ``v_hat`` and ``c_hat``
of every cluster fall out of masked segment reductions
(``np.maximum.reduceat`` / ``np.logical_and.reduceat``) plus elementwise
kernels.

Bit-identity contract
---------------------

Like the matching kernel, every float must equal the scalar
:func:`~repro.core.normalization.compute_economics` bit for bit
(``tests/differential/`` and ``tests/property/`` enforce it):

* l2 norms accumulate squares column-by-column in sorted-type order
  (one elementwise add per type, never ``np.sum``), matching the scalar
  ``sum(v[k] ** 2 for k in sorted(keys))``.  Types outside a cluster's
  common set contribute an exact ``+0.0``.
* squares use ``np.float_power(x, 2.0)``: CPython's scalar ``x ** 2``
  goes through libm ``pow``, which is *not* correctly rounded and can
  differ from ``x * x`` in the last bit — and NumPy lowers ``arr ** 2``
  to ``arr * arr``.  ``np.float_power`` is the ufunc that reproduces the
  scalar ``pow`` result exactly.
* every division/multiplication keeps the scalar operand order:
  ``l2 / maxima_norm``, ``bid / (nu * span)``, ``bid / (nu * duration)``.
* ``nu_cr`` max-accumulates per-type ratios in sorted order from 0.0,
  and the cap is ``min(max(nu, 0.0), 1.0)`` exactly as written.

Degenerate clusters keep their PR 2 semantics: a zero-magnitude virtual
maximum prices every offer at ``inf`` and values every request at 0.0
instead of raising; a zero-``nu`` participant is unpriceable on its own.
Validation errors (empty side, no common types) are raised for the first
offending cluster in input order — the same error and order a scalar
loop over the batch would produce.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.common.errors import AuctionError
from repro.core.config import AuctionConfig
from repro.core.normalization import ClusterEconomics, cluster_common_types
from repro.market.bids import Offer, Request

ClusterParticipants = Tuple[Sequence[Request], Sequence[Offer]]


def _amount_matrix(
    participants: Sequence, index: Dict[str, int], k_types: int
) -> Tuple[np.ndarray, np.ndarray]:
    """(amounts, presence) rows over the type universe for one side."""
    n = len(participants)
    amount = np.zeros((n, k_types))
    present = np.zeros((n, k_types), dtype=bool)
    for i, participant in enumerate(participants):
        for t, value in participant.resources.items():
            col = index.get(t)
            if col is not None:
                amount[i, col] = value
                present[i, col] = True
    return amount, present


def compute_economics_batch(
    clusters: Sequence[ClusterParticipants],
    config: AuctionConfig,
) -> List[ClusterEconomics]:
    """``compute_economics`` for every ``(requests, offers)`` pair at once."""
    if not clusters:
        return []

    # Validation and common-type sets, cluster by cluster in input order
    # (a scalar loop reports the first offending cluster; so do we).
    commons: List[Set[str]] = []
    for requests, offers in clusters:
        if not requests or not offers:
            raise AuctionError(
                "cluster economics need at least one of each side"
            )
        common = cluster_common_types(requests, offers)
        if not common:
            raise AuctionError("cluster has no common resource types")
        commons.append(common)

    # One sorted type universe over every cluster's common set.  Types a
    # participant declares outside it are never read by the scalar path.
    types = sorted(set().union(*commons))
    index = {t: k for k, t in enumerate(types)}
    k_types = len(types)
    n_clusters = len(clusters)

    flat_requests: List[Request] = []
    flat_offers: List[Offer] = []
    req_starts = np.empty(n_clusters, dtype=np.intp)
    off_starts = np.empty(n_clusters, dtype=np.intp)
    for c, (requests, offers) in enumerate(clusters):
        req_starts[c] = len(flat_requests)
        off_starts[c] = len(flat_offers)
        flat_requests.extend(requests)
        flat_offers.extend(offers)
    req_cluster = np.repeat(
        np.arange(n_clusters),
        [len(requests) for requests, _ in clusters],
    )
    off_cluster = np.repeat(
        np.arange(n_clusters),
        [len(offers) for _, offers in clusters],
    )

    req_amount, req_present = _amount_matrix(flat_requests, index, k_types)
    off_amount, _ = _amount_matrix(flat_offers, index, k_types)

    common_mask = np.zeros((n_clusters, k_types), dtype=bool)
    for c, common in enumerate(commons):
        for t in common:
            common_mask[c, index[t]] = True

    # M_CL: per-type max over the cluster's offers, masked to the common
    # set.  Amounts are non-negative, so the segment max equals the
    # scalar's "grow from 0.0" accumulation (only positive values end up
    # in the dict; zeros read back via .get(k, 0.0) identically).
    maxima = np.maximum.reduceat(off_amount, off_starts, axis=0)
    np.copyto(maxima, 0.0, where=~common_mask)

    # ||M_CL||_2 with squares and accumulation order exactly as scalar.
    maxima_sq = np.float_power(maxima, 2.0)
    acc = np.zeros(n_clusters)
    for col in range(k_types):
        acc = acc + maxima_sq[:, col]
    maxima_norm = np.sqrt(acc)
    degenerate = maxima_norm <= 0

    # Offer side: nu_o = ||rho_o||_2 / ||M_CL||_2, c_hat = c / (nu * span).
    off_sq = np.float_power(off_amount, 2.0)
    off_common = common_mask[off_cluster]
    acc = np.zeros(len(flat_offers))
    for col in range(k_types):
        acc = acc + np.where(off_common[:, col], off_sq[:, col], 0.0)
    off_l2 = np.sqrt(acc)
    safe_norm = np.where(degenerate, 1.0, maxima_norm)
    nu_off = off_l2 / safe_norm[off_cluster]
    off_span = np.array([o.span for o in flat_offers])
    off_bid = np.array([o.bid for o in flat_offers])
    off_ok = (nu_off > 0) & (off_span > 0) & ~degenerate[off_cluster]
    denom = np.where(off_ok, nu_off * off_span, 1.0)
    cost = np.where(off_ok, off_bid / denom, math.inf)
    nu_off = np.where(off_ok, nu_off, 0.0)

    # K_CR: configured criticals plus types shared by every request.
    configured = np.array(
        [t in config.critical_resources for t in types], dtype=bool
    )
    shared = np.logical_and.reduceat(req_present, req_starts, axis=0)
    criticals = (configured[None, :] | shared) & common_mask

    # Request side: nu_cr, nu_r, v_hat.
    req_sq = np.float_power(req_amount, 2.0)
    req_common = common_mask[req_cluster]
    acc = np.zeros(len(flat_requests))
    nu_cr = np.zeros(len(flat_requests))
    req_criticals = criticals[req_cluster]
    req_maxima = maxima[req_cluster]
    for col in range(k_types):
        acc = acc + np.where(req_common[:, col], req_sq[:, col], 0.0)
        top = req_maxima[:, col]
        ratio_mask = req_criticals[:, col] & (top > 0)
        ratio = req_amount[:, col] / np.where(ratio_mask, top, 1.0)
        nu_cr = np.maximum(nu_cr, np.where(ratio_mask, ratio, 0.0))
    req_l2 = np.sqrt(acc)
    nu_req = np.maximum(nu_cr, req_l2 / safe_norm[req_cluster])
    nu_req = np.minimum(np.maximum(nu_req, 0.0), 1.0)
    req_duration = np.array([r.duration for r in flat_requests])
    req_bid = np.array([r.bid for r in flat_requests])
    req_ok = (nu_req > 0) & (req_duration > 0) & ~degenerate[req_cluster]
    denom = np.where(req_ok, nu_req * req_duration, 1.0)
    value = np.where(req_ok, req_bid / denom, 0.0)
    nu_req = np.where(req_ok, nu_req, 0.0)

    # Slice the flat arrays back into per-cluster ClusterEconomics.
    results: List[ClusterEconomics] = []
    req_ends = np.append(req_starts[1:], len(flat_requests))
    off_ends = np.append(off_starts[1:], len(flat_offers))
    nu_off_list = nu_off.tolist()
    cost_list = cost.tolist()
    nu_req_list = nu_req.tolist()
    value_list = value.tolist()
    for c, (requests, offers) in enumerate(clusters):
        r0, r1 = int(req_starts[c]), int(req_ends[c])
        o0, o1 = int(off_starts[c]), int(off_ends[c])
        virtual_max = {
            t: float(maxima[c, index[t]])
            for t in commons[c]
            if maxima[c, index[t]] > 0
        }
        request_ids = [r.request_id for r in requests]
        offer_ids = [o.offer_id for o in offers]
        results.append(
            ClusterEconomics(
                common_types=frozenset(commons[c]),
                virtual_maximum=virtual_max,
                nu_offers=dict(zip(offer_ids, nu_off_list[o0:o1])),
                nu_requests=dict(zip(request_ids, nu_req_list[r0:r1])),
                normalized_costs=dict(zip(offer_ids, cost_list[o0:o1])),
                normalized_values=dict(zip(request_ids, value_list[r0:r1])),
            )
        )
    return results
