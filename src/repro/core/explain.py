"""Explainability: why a request did or did not trade.

A market without an operator needs self-service diagnostics.  Given the
block's bids and the recorded outcome, :func:`explain_request` walks the
mechanism's stages for one request and reports, in order, the first
stage that ended its journey:

1. feasibility — did any offer satisfy the hard constraints at all?
2. affordability — did its value cover any feasible offer's fraction
   cost (Const. 9)?
3. clustering — did it reach a cluster with at least one offer?
4. pricing — was its normalized valuation above the clearing price of
   the auction(s) it reached?
5. exclusion — was it the price-determining bid, or a randomization
   casualty?

The output is a structured :class:`Explanation` plus a rendered text
summary, suitable for a client-side "why not me?" endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import AuctionConfig
from repro.core.matching import block_maxima, rank_offers
from repro.core.outcome import AuctionOutcome
from repro.core.welfare import resource_fraction
from repro.market.bids import Offer, Request
from repro.market.feasibility import explain_infeasibility, is_feasible


@dataclass
class Explanation:
    """Structured answer to "what happened to my request?"."""

    request_id: str
    status: str  # matched | reduced | unmatched | unknown
    reasons: List[str] = field(default_factory=list)
    matched_offer: Optional[str] = None
    payment: Optional[float] = None
    feasible_offers: int = 0
    affordable_offers: int = 0
    best_offer: Optional[str] = None

    def render(self) -> str:
        lines = [f"request {self.request_id}: {self.status}"]
        if self.matched_offer is not None:
            lines.append(
                f"  hosted on {self.matched_offer}, paying {self.payment:.4f}"
            )
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        return "\n".join(lines)


def explain_request(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    outcome: AuctionOutcome,
    request_id: str,
    config: Optional[AuctionConfig] = None,
) -> Explanation:
    """Diagnose one request's journey through the mechanism."""
    config = config or AuctionConfig()
    request = next(
        (r for r in requests if r.request_id == request_id), None
    )
    if request is None:
        return Explanation(
            request_id=request_id,
            status="unknown",
            reasons=["request was not part of this block"],
        )

    match = outcome.match_for(request_id)
    explanation = Explanation(
        request_id=request_id,
        status="matched" if match else "unmatched",
    )
    if match is not None:
        explanation.matched_offer = match.offer.offer_id
        explanation.payment = match.payment
        explanation.reasons.append(
            f"cleared at unit price {match.unit_price:.4f}"
        )
        return explanation

    if any(r.request_id == request_id for r in outcome.reduced_requests):
        explanation.status = "reduced"
        explanation.reasons.append(
            "sacrificed by trade reduction or randomized exclusion — the "
            "price-determining participant (or its client's other orders) "
            "never trades (paper Alg. 4); resubmit in the next block"
        )
        return explanation

    # Stage 1: feasibility.
    feasible = [o for o in offers if is_feasible(request, o)]
    explanation.feasible_offers = len(feasible)
    if not feasible:
        explanation.reasons.append("no offer satisfies the hard constraints:")
        for offer in list(offers)[:3]:
            problems = explain_infeasibility(request, offer)
            if problems:
                explanation.reasons.append(
                    f"  {offer.offer_id}: {problems[0]}"
                )
        if len(offers) > 3:
            explanation.reasons.append(
                f"  ... and {len(offers) - 3} more offers"
            )
        return explanation

    # Stage 2: affordability (Const. 9).
    affordable = [
        o
        for o in feasible
        if request.bid >= resource_fraction(request, o) * o.bid
    ]
    explanation.affordable_offers = len(affordable)
    if not affordable:
        cheapest = min(
            resource_fraction(request, o) * o.bid for o in feasible
        )
        explanation.reasons.append(
            f"value {request.bid:.4f} does not cover the cheapest feasible "
            f"fraction cost {cheapest:.4f} (Const. 9) — bid reflects too "
            "little value for the requested bundle"
        )
        return explanation

    # Stage 3: best-match context.
    maxima = block_maxima(list(requests), list(offers))
    ranked = rank_offers(request, list(offers), maxima)
    if ranked:
        explanation.best_offer = ranked[0][1].offer_id

    # Stage 4: pricing.  The request reached an auction but lost on price
    # or capacity.
    if outcome.prices:
        floor = min(outcome.prices)
        explanation.reasons.append(
            f"feasible and affordable ({len(affordable)} offers), but not "
            f"allocated: the block cleared at unit price(s) "
            f"{[round(p, 4) for p in outcome.prices]} and either the "
            "request's normalized valuation fell below the price of every "
            "auction it reached, or the price-eligible capacity filled "
            "first; resubmitting next block re-enters the market "
            f"(current price floor {floor:.4f})"
        )
    else:
        explanation.reasons.append(
            "feasible and affordable, but the block cleared no trades in "
            "its market segment (too few compatible counterparts — the "
            "McAfee degenerate case); resubmit when more participants "
            "are present"
        )
    return explanation


def explain_block(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    outcome: AuctionOutcome,
    config: Optional[AuctionConfig] = None,
) -> List[Explanation]:
    """Explanations for every request in the block."""
    return [
        explain_request(requests, offers, outcome, r.request_id, config)
        for r in requests
    ]
