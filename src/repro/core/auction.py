"""The DeCloud double auction — Alg. 1 end to end.

:class:`DecloudAuction` glues the pipeline together:

1. cluster requests and offers by quality of match (Alg. 2);
2. greedy-fit each cluster and derive its break-even indices (§IV-C);
3. pool price-compatible clusters into mini-auctions (Alg. 3);
4. clear mini-auctions in descending welfare order, applying the SBBA
   price rule, trade reduction, and verifiable randomization (Alg. 4);
5. assemble the :class:`~repro.core.outcome.AuctionOutcome` recorded in
   the block.

The same class also runs the paper's *non-truthful greedy benchmark*:
``AuctionConfig.benchmark()`` disables trade reduction and randomization,
yielding the best welfare greedy allocation can reach.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.common.errors import AuctionError
from repro.common.rng import block_evidence_rng
from repro.common.timing import PhaseTimer, resolve
from repro.obs import ObservabilityLike, resolve as resolve_obs
from repro.core.cluster_allocation import ClusterAllocation, allocate_cluster
from repro.core.clustering import build_clusters
from repro.core.config import AuctionConfig
from repro.core.miniauctions import build_mini_auctions
from repro.core.outcome import AuctionOutcome
from repro.core.trade_reduction import clear_mini_auction
from repro.market.bids import Offer, Request


class DecloudAuction:
    """The truthful decentralized double auction of the paper."""

    def __init__(self, config: Optional[AuctionConfig] = None) -> None:
        self.config = config or AuctionConfig()
        #: Statistics of the most recent sharded run (shards built,
        #: spillover volume, per-shard seconds) — populated by
        #: :mod:`repro.core.sharding` when ``config.sharding`` is set.
        self.last_shard_stats: dict = {}
        self._matcher = None
        if self.config.engine == "vectorized":
            from repro.core.matching_vectorized import IncrementalMatcher

            # One matcher per auction instance: the online simulator runs
            # many overlapping blocks through the same instance, and the
            # incremental cache then only recomputes rows touched by new
            # bids.
            self._matcher = IncrementalMatcher()

    def run(
        self,
        requests: Sequence[Request],
        offers: Sequence[Offer],
        evidence: bytes = b"decloud-default-evidence",
        timer: Optional[PhaseTimer] = None,
        obs: Optional[ObservabilityLike] = None,
    ) -> AuctionOutcome:
        """Clear one block of requests and offers.

        ``evidence`` is the block's preamble hash in the ledger-backed
        deployment: it seeds the verifiable randomization so that every
        miner recomputes the identical outcome.

        ``timer`` (optional :class:`~repro.common.timing.PhaseTimer`)
        accumulates per-phase wall time: ``match`` / ``cluster`` (inside
        :func:`build_clusters`), ``normalize`` (§IV-C economics plus the
        greedy fits), ``assemble`` (Alg. 3) and ``clear`` (Alg. 4).

        ``obs`` (optional :class:`~repro.obs.Observability`) records the
        round's metrics (bids in/matched/clustered, trades before/after
        reduction, welfare, surplus, per-phase durations) and an
        ``auction`` span with ``match``/``normalize``/``assemble``/
        ``clear`` children.  Instrumentation is read-only: outcomes are
        bit-identical with observability on or off (enforced by the
        differential suite, which runs with it on).

        With ``config.sharding`` set, the block instead clears through
        the sharded fabric of :mod:`repro.core.sharding`: zone-local
        shards run the full pipeline (concurrently for
        ``shard_workers > 1``) and unmatched bids meet again in one
        cross-zone spillover round — bit-identical across worker
        counts, and identical to the global auction whenever the
        partition yields a single shard.
        """
        obs = resolve_obs(obs)
        if self.config.sharding is not None:
            from repro.core.sharding import run_sharded

            with obs.tracer.span(
                "sharded_auction",
                requests=len(requests),
                offers=len(offers),
                engine=self.config.engine,
            ):
                return run_sharded(
                    self, requests, offers, evidence, timer, obs
                )
        with obs.tracer.span(
            "auction",
            requests=len(requests),
            offers=len(offers),
            engine=self.config.engine,
        ):
            return self._run(requests, offers, evidence, timer, obs)

    def _run(
        self,
        requests: Sequence[Request],
        offers: Sequence[Offer],
        evidence: bytes,
        caller_timer: Optional[PhaseTimer],
        obs: ObservabilityLike,
    ) -> AuctionOutcome:
        if obs.enabled:
            # Phase times are measured round-locally so they can be
            # folded into the registry per round, then merged into the
            # caller's timer and the bundle's cumulative timer.
            timer: "PhaseTimer | object" = PhaseTimer()
        else:
            timer = resolve(caller_timer)
        request_by_id = _index_requests(requests)
        offer_by_id = _index_offers(offers)

        with obs.tracer.span("match"):
            clusters, orphans = build_clusters(
                list(request_by_id.values()),
                list(offer_by_id.values()),
                self.config,
                matcher=self._matcher,
                timer=timer,
            )
        with timer.phase("normalize"), obs.tracer.span("normalize"):
            populated = []
            for cluster in clusters:
                cluster_requests = [
                    request_by_id[rid] for rid in sorted(cluster.request_ids)
                ]
                cluster_offers = [
                    offer_by_id[oid] for oid in sorted(cluster.offer_ids)
                ]
                if not cluster_requests or not cluster_offers:
                    continue
                populated.append((cluster, cluster_requests, cluster_offers))
            if self.config.engine == "vectorized" and populated:
                # Batch §IV-C over every cluster of the block at once —
                # bit-identical to per-cluster scalar normalization.
                from repro.core.normalization_vectorized import (
                    compute_economics_batch,
                )

                economics_list = list(
                    compute_economics_batch(
                        [(reqs, offs) for _, reqs, offs in populated],
                        self.config,
                    )
                )
            else:
                economics_list = [None] * len(populated)
            allocations: List[ClusterAllocation] = [
                allocate_cluster(
                    cluster, cluster_requests, cluster_offers, self.config,
                    economics=economics,
                )
                for (cluster, cluster_requests, cluster_offers), economics
                in zip(populated, economics_list)
            ]

        with timer.phase("assemble"), obs.tracer.span("assemble"):
            auctions = build_mini_auctions(allocations, self.config)

        outcome = AuctionOutcome()
        consumed_requests: Set[str] = set()
        consumed_offers: Set[str] = set()
        with timer.phase("clear"), obs.tracer.span("clear"):
            if self.config.miniauction_workers >= 1:
                # Per-auction RNG streams; waves of independent auctions
                # may clear in a process pool (see repro.core.parallel).
                from repro.core.parallel import clear_auctions_scheduled

                results = clear_auctions_scheduled(
                    auctions,
                    request_by_id,
                    offer_by_id,
                    consumed_requests,
                    consumed_offers,
                    self.config,
                    evidence,
                    obs=obs,
                )
            else:
                rng = block_evidence_rng(evidence)
                results = []
                for auction in auctions:
                    result = clear_mini_auction(
                        auction,
                        request_by_id,
                        offer_by_id,
                        consumed_requests,
                        consumed_offers,
                        self.config,
                        rng,
                    )
                    results.append(result)
                    consumed_requests |= result.participant_requests
                    consumed_offers |= result.participant_offers
        for result in results:
            outcome.matches.extend(result.matches)
            outcome.reduced_requests.extend(result.reduced_requests)
            outcome.reduced_offers.extend(result.reduced_offers)
            if result.price is not None:
                outcome.prices.append(result.price)

        matched_requests = {m.request.request_id for m in outcome.matches}
        # A participant reduced in one mini-auction may still have traded
        # in a later one — only participants that never traded anywhere
        # in the block count as reduction casualties.
        outcome.reduced_requests = _dedupe_requests(
            r
            for r in outcome.reduced_requests
            if r.request_id not in matched_requests
        )
        matched_offer_ids = {m.offer.offer_id for m in outcome.matches}
        outcome.reduced_offers = _dedupe_offers(
            o
            for o in outcome.reduced_offers
            if o.offer_id not in matched_offer_ids
        )
        reduced_requests = {r.request_id for r in outcome.reduced_requests}
        outcome.unmatched_requests = [
            request
            for rid, request in request_by_id.items()
            if rid not in matched_requests and rid not in reduced_requests
        ]
        outcome.unmatched_requests.extend(
            o for o in orphans if o.request_id not in matched_requests
        )
        # Orphans were never indexed into clusters but are real requests:
        # dedupe in case an orphan id also appeared via the main loop.
        seen: Set[str] = set()
        deduped: List[Request] = []
        for request in outcome.unmatched_requests:
            if request.request_id not in seen:
                seen.add(request.request_id)
                deduped.append(request)
        outcome.unmatched_requests = deduped

        matched_offers = {m.offer.offer_id for m in outcome.matches}
        reduced_offers = {o.offer_id for o in outcome.reduced_offers}
        outcome.unmatched_offers = [
            offer
            for oid, offer in offer_by_id.items()
            if oid not in matched_offers and oid not in reduced_offers
        ]
        if obs.enabled:
            self._record_round(
                obs, timer, caller_timer,
                len(requests), len(offers),
                len(clusters), len(orphans), len(auctions),
                outcome,
            )
            # Runtime mechanism monitors guard the *truthful* mechanism's
            # §IV invariants; the greedy benchmark switches the reduction
            # off and deliberately breaks them, so it is not checked.
            if self.config.enable_trade_reduction:
                obs.check_outcome(outcome, source="auction")
        return outcome

    def _record_round(
        self,
        obs: ObservabilityLike,
        round_timer: PhaseTimer,
        caller_timer: Optional[PhaseTimer],
        n_requests: int,
        n_offers: int,
        n_clusters: int,
        n_orphans: int,
        n_auctions: int,
        outcome: AuctionOutcome,
    ) -> None:
        """Fold one cleared round into the registry (enabled path only).

        Everything recorded here is *derived from* the outcome — the
        metrics-accuracy suite cross-checks each series against the same
        value recomputed independently from :class:`AuctionOutcome`.
        """
        n_trades = len(outcome.matches)
        n_reduced = len(outcome.reduced_requests)
        welfare = outcome.welfare
        payments = outcome.total_payments
        revenues = sum(outcome.revenues().values())

        reg = obs.registry
        reg.inc("auction_rounds_total")
        reg.inc("auction_bids_total", n_requests, side="request")
        reg.inc("auction_bids_total", n_offers, side="offer")
        reg.inc("auction_clusters_total", n_clusters)
        reg.inc("auction_orphans_total", n_orphans)
        reg.inc("auction_mini_auctions_total", n_auctions)
        reg.inc("auction_trades_total", n_trades)
        reg.inc("auction_reduced_total", n_reduced)
        reg.inc("auction_reduced_offers_total", len(outcome.reduced_offers))
        reg.inc("auction_welfare_total", welfare)

        # Exact per-round values live in gauges (no accumulated float
        # error) — the evaluation's BlockMetrics read these directly.
        reg.set("auction_last_bids", n_requests, side="request")
        reg.set("auction_last_bids", n_offers, side="offer")
        reg.set("auction_last_trades", n_trades)
        reg.set("auction_last_trades_pre_reduction", n_trades + n_reduced)
        reg.set("auction_last_reduced", n_reduced)
        reg.set("auction_last_welfare", welfare)
        reg.set("auction_last_payments", payments)
        reg.set("auction_last_revenues", revenues)
        reg.set("auction_last_surplus", payments - revenues)
        reg.set("auction_last_satisfaction", outcome.satisfaction)
        reg.set(
            "auction_last_unmatched",
            len(outcome.unmatched_requests),
            side="request",
        )
        reg.set(
            "auction_last_unmatched",
            len(outcome.unmatched_offers),
            side="offer",
        )
        for price in outcome.prices:
            reg.observe("auction_trade_price", price)
        for name, seconds in round_timer.totals.items():
            reg.observe("auction_phase_seconds", seconds, phase=name)

        if self.config.candidates is not None:
            stats = getattr(self.config.candidates, "last_stats", {}) or {}
            reg.inc(
                "candidate_pairs_total",
                stats.get("pairs_total", 0),
                outcome="considered",
            )
            reg.inc(
                "candidate_pairs_total",
                stats.get("pairs_admitted", 0),
                outcome="admitted",
            )
            for reason in ("score", "window", "resource"):
                reg.inc(
                    "candidate_pairs_total",
                    stats.get(f"pairs_pruned_{reason}", 0),
                    outcome=f"pruned_{reason}",
                )
            reg.inc(
                "candidate_certificate_checks_total",
                stats.get("certificate_checks", 0),
            )
            reg.set("candidate_last_groups", stats.get("groups", 0))
            reg.set("candidate_last_rounds", stats.get("rounds", 0))

        obs.tracer.event(
            "auction.cleared",
            trades=n_trades,
            reduced=n_reduced,
            clusters=n_clusters,
            mini_auctions=n_auctions,
        )

        resolved_caller = resolve(caller_timer)
        resolved_caller.merge(round_timer)
        if obs.timer is not resolved_caller:
            obs.timer.merge(round_timer)


def _dedupe_requests(requests) -> List[Request]:
    seen: Set[str] = set()
    out: List[Request] = []
    for request in requests:
        if request.request_id not in seen:
            seen.add(request.request_id)
            out.append(request)
    return out


def _dedupe_offers(offers) -> List[Offer]:
    seen: Set[str] = set()
    out: List[Offer] = []
    for offer in offers:
        if offer.offer_id not in seen:
            seen.add(offer.offer_id)
            out.append(offer)
    return out


def _index_requests(requests: Sequence[Request]) -> Dict[str, Request]:
    index: Dict[str, Request] = {}
    for request in requests:
        if request.request_id in index:
            raise AuctionError(f"duplicate request id {request.request_id!r}")
        index[request.request_id] = request
    return index


def _index_offers(offers: Sequence[Offer]) -> Dict[str, Offer]:
    index: Dict[str, Offer] = {}
    for offer in offers:
        if offer.offer_id in index:
            raise AuctionError(f"duplicate offer id {offer.offer_id!r}")
        index[offer.offer_id] = offer
    return index
