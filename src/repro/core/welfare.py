"""Welfare accounting (paper Eq. 3–6, 15).

Welfare of a matched pair is the buyer's value minus the cost of the
*fraction* of the offer actually consumed:

    w_(r,o) = v_r - phi_(r,o) * c_o

with the fraction given by Eq. (6):

    phi_(r,o) = d_r / (t_o^+ - t_o^-) * (1/|K_(r,o)|) *
                sum over k in K_(r,o) of rho_(r,k) / rho_(o,k)
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.common.errors import InfeasibleMatchError
from repro.market.bids import Offer, Request
from repro.market.resources import common_types


def resource_fraction(request: Request, offer: Offer) -> float:
    """Eq. (6): fraction of ``offer`` consumed by ``request``.

    Resource types the offer reports as zero are skipped in the mean (they
    would divide by zero and represent capabilities without capacity,
    e.g., boolean tags).
    """
    shared = common_types(request.resources, offer.resources)
    if not shared:
        raise InfeasibleMatchError(
            f"request {request.request_id} and offer {offer.offer_id} share "
            "no resource types"
        )
    if offer.span <= 0:
        raise InfeasibleMatchError(f"offer {offer.offer_id} has zero span")
    ratios = [
        request.resources[k] / offer.resources[k]
        for k in shared
        if offer.resources[k] > 0
    ]
    if not ratios:
        return 0.0
    time_share = request.duration / offer.span
    return time_share * sum(ratios) / len(ratios)


def pair_welfare(
    request: Request,
    offer: Offer,
    value: float | None = None,
    cost: float | None = None,
) -> float:
    """Welfare of one matched pair, ``v_r - phi * c_o``.

    ``value``/``cost`` default to the reported bids — correct under
    truthful bidding; evaluation code passes true values when simulating
    misreports.
    """
    value = request.bid if value is None else value
    cost = offer.bid if cost is None else cost
    return value - resource_fraction(request, offer) * cost


def total_welfare(matches: Iterable[Tuple[Request, Offer]]) -> float:
    """Eq. (3): block welfare over matched pairs."""
    return sum(pair_welfare(request, offer) for request, offer in matches)


def satisfaction(num_allocated: int, num_requests: int) -> float:
    """Evaluation metric: fraction of requests allocated (0 when empty)."""
    if num_requests <= 0:
        return 0.0
    return num_allocated / num_requests
