"""Auction outcome value objects and their ledger serialization."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

from repro.core.welfare import pair_welfare, resource_fraction, satisfaction
from repro.market.bids import Offer, Request


@dataclass(frozen=True)
class Match:
    """One cleared trade: a request hosted on an offer at a payment."""

    request: Request
    offer: Offer
    payment: float
    unit_price: float

    @property
    def fraction(self) -> float:
        """Eq. (6) resource fraction of the offer this match consumes."""
        return resource_fraction(self.request, self.offer)

    @property
    def welfare(self) -> float:
        return pair_welfare(self.request, self.offer)


@dataclass
class AuctionOutcome:
    """Everything the mechanism decided for one block.

    ``reduced`` holds participants excluded *by trade reduction or
    randomization* — i.e., trades that existed in the welfare-maximizing
    greedy allocation and were sacrificed for truthfulness.  ``unmatched``
    holds requests that simply found no feasible/profitable counterpart.
    """

    matches: List[Match] = field(default_factory=list)
    reduced_requests: List[Request] = field(default_factory=list)
    reduced_offers: List[Offer] = field(default_factory=list)
    unmatched_requests: List[Request] = field(default_factory=list)
    unmatched_offers: List[Offer] = field(default_factory=list)
    prices: List[float] = field(default_factory=list)

    @property
    def welfare(self) -> float:
        return sum(match.welfare for match in self.matches)

    @property
    def num_trades(self) -> int:
        return len(self.matches)

    @property
    def num_reduced(self) -> int:
        return len(self.reduced_requests)

    @property
    def total_payments(self) -> float:
        return sum(match.payment for match in self.matches)

    def revenues(self) -> Dict[str, float]:
        """Provider revenue by offer id (strong BB: equals payments)."""
        out: Dict[str, float] = {}
        for match in self.matches:
            out[match.offer.offer_id] = (
                out.get(match.offer.offer_id, 0.0) + match.payment
            )
        return out

    def client_utilities(self) -> Dict[str, float]:
        """Utility ``u_r = v_r - p_r`` per matched request id."""
        return {
            match.request.request_id: match.request.bid - match.payment
            for match in self.matches
        }

    @property
    def satisfaction(self) -> float:
        total = (
            len(self.matches)
            + len(self.reduced_requests)
            + len(self.unmatched_requests)
        )
        return satisfaction(len(self.matches), total)

    @property
    def reduced_trade_fraction(self) -> float:
        """Share of potential trades sacrificed to truthfulness."""
        potential = len(self.matches) + len(self.reduced_requests)
        if potential == 0:
            return 0.0
        return len(self.reduced_requests) / potential

    def to_payload(self) -> Dict[str, Any]:
        """Deterministic JSON payload recorded in the block body."""
        return {
            "matches": [
                {
                    "request_id": match.request.request_id,
                    "offer_id": match.offer.offer_id,
                    "payment": round(match.payment, 12),
                    "unit_price": round(match.unit_price, 12),
                }
                for match in sorted(
                    self.matches, key=lambda m: m.request.request_id
                )
            ],
            "reduced_requests": sorted(
                r.request_id for r in self.reduced_requests
            ),
            "reduced_offers": sorted(o.offer_id for o in self.reduced_offers),
            "unmatched_requests": sorted(
                r.request_id for r in self.unmatched_requests
            ),
            "prices": [round(p, 12) for p in sorted(self.prices)],
        }

    def match_for(self, request_id: str) -> "Match | None":
        for match in self.matches:
            if match.request.request_id == request_id:
                return match
        return None

    def matched_pairs(self) -> List[Tuple[Request, Offer]]:
        return [(match.request, match.offer) for match in self.matches]


def canonical_outcome(outcome: AuctionOutcome) -> Dict:
    """Exact, order-independent, JSON-ready digest of an outcome.

    Every float is rendered with ``float.hex()`` so equality is bitwise,
    diffable, and serialization-stable.  The differential engine suite,
    the golden fixtures, and the crash-matrix recovery harness all
    compare outcomes through exactly this structure.
    """
    matches = sorted(
        (
            {
                "request_id": m.request.request_id,
                "offer_id": m.offer.offer_id,
                "payment": m.payment.hex(),
                "unit_price": m.unit_price.hex(),
            }
            for m in outcome.matches
        ),
        key=lambda row: (row["request_id"], row["offer_id"]),
    )
    welfare = sum(
        (
            m.welfare
            for m in sorted(
                outcome.matches,
                key=lambda m: (m.request.request_id, m.offer.offer_id),
            )
        ),
        0.0,
    )
    return {
        "matches": matches,
        "prices": [p.hex() for p in sorted(outcome.prices)],
        "reduced_requests": sorted(
            r.request_id for r in outcome.reduced_requests
        ),
        "reduced_offers": sorted(o.offer_id for o in outcome.reduced_offers),
        "unmatched_requests": sorted(
            r.request_id for r in outcome.unmatched_requests
        ),
        "unmatched_offers": sorted(
            o.offer_id for o in outcome.unmatched_offers
        ),
        "welfare": welfare.hex(),
    }


def utility_of_client(
    outcome: AuctionOutcome, request_id: str, true_value: float
) -> float:
    """``u_r`` under possibly-untruthful bidding: true value minus payment."""
    match = outcome.match_for(request_id)
    if match is None:
        return 0.0
    return true_value - match.payment


def utility_of_provider(
    outcome: AuctionOutcome, provider_id: str, true_costs: Mapping[str, float]
) -> float:
    """``u_o`` summed over the provider's offers.

    ``true_costs`` maps offer id -> true cost; the cost of an offer is
    charged in proportion to the fraction actually allocated.
    """
    utility = 0.0
    for match in outcome.matches:
        if match.offer.provider_id != provider_id:
            continue
        cost = true_costs.get(match.offer.offer_id, match.offer.bid)
        utility += match.payment - match.fraction * cost
    return utility
