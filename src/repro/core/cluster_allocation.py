"""Greedy in-cluster allocation and break-even indices (paper §IV-C).

Within a cluster, requests are ranked by normalized valuation ``v_hat``
(descending) and offers by normalized cost ``c_hat`` (ascending); the
greedy fit pairs the highest-value requests with the cheapest capacity,
subject to:

* Const. (7): per offer and resource type, the time-weighted fractions of
  allocated requests sum to at most 1 — tracked by :class:`OfferCapacity`;
* Const. (8): instantaneous amounts fit the device (checked by market
  feasibility);
* Const. (9): the request's value covers the cost of the fraction it uses;
* normalized profitability ``v_hat_r >= c_hat_o`` (a McAfee-style trade
  must not destroy welfare in virtual-maximum units).

The resulting indices ``z`` (last winning request), ``z'`` (last used
offer) and ``z'+1`` (cheapest unused offer) feed pricing and trade
reduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import Cluster
from repro.core.config import AuctionConfig
from repro.core.normalization import ClusterEconomics, compute_economics
from repro.core.welfare import pair_welfare, resource_fraction
from repro.market.bids import Offer, Request
from repro.market.feasibility import is_feasible, required_amount


class OfferCapacity:
    """Tracks remaining time-weighted capacity per offer (Const. 7)."""

    def __init__(self, offers: Sequence[Offer]) -> None:
        self._remaining: Dict[str, Dict[str, float]] = {}
        self._offers: Dict[str, Offer] = {}
        for offer in offers:
            self.add_offer(offer)

    def add_offer(self, offer: Offer) -> None:
        if offer.offer_id not in self._remaining:
            self._remaining[offer.offer_id] = dict(offer.resources)
            self._offers[offer.offer_id] = offer

    def remaining(self, offer_id: str) -> Dict[str, float]:
        return dict(self._remaining[offer_id])

    def _demand(self, request: Request, offer: Offer) -> Dict[str, float]:
        """Time-weighted consumption of each shared resource type."""
        time_share = request.duration / offer.span
        demand: Dict[str, float] = {}
        for key in request.resources:
            if key not in offer.resources:
                continue
            amount = min(
                request.resources[key], offer.resources[key]
            )  # flexible requests consume what exists
            demand[key] = time_share * amount
        return demand

    def can_host(self, request: Request, offer: Offer) -> bool:
        """True when remaining capacity covers the request's demand."""
        remaining = self._remaining.get(offer.offer_id)
        if remaining is None:
            return False
        time_share = request.duration / offer.span
        for key in request.resources:
            if key not in offer.resources:
                continue
            needed = time_share * required_amount(request, key)
            if remaining[key] + 1e-12 < needed:
                return False
        return True

    def consume(self, request: Request, offer: Offer) -> None:
        remaining = self._remaining[offer.offer_id]
        for key, amount in self._demand(request, offer).items():
            remaining[key] = max(0.0, remaining[key] - amount)

    def restore(self, offer: Offer, request: Request) -> None:
        """Undo a prior :meth:`consume` (used by the exact solver)."""
        remaining = self._remaining[offer.offer_id]
        ceiling = offer.resources
        for key, amount in self._demand(request, offer).items():
            remaining[key] = min(ceiling[key], remaining[key] + amount)


@dataclass
class ClusterAllocation:
    """Tentative greedy allocation of one cluster with McAfee indices."""

    cluster: Cluster
    requests: List[Request]
    offers: List[Offer]
    economics: ClusterEconomics
    matches: List[Tuple[Request, Offer]] = field(default_factory=list)
    #: v_hat of the last (lowest-value) winning request — the paper's z.
    v_z: float = math.nan
    #: c_hat of the most expensive used offer — the paper's z'.
    c_z: float = math.nan
    #: c_hat of the cheapest unused offer — the paper's z'+1 (inf if none).
    c_z_plus_1: float = math.inf
    z_request: Optional[Request] = None
    z_plus_1_offer: Optional[Offer] = None

    @property
    def has_trades(self) -> bool:
        return bool(self.matches)

    @property
    def tentative_welfare(self) -> float:
        return sum(pair_welfare(r, o) for r, o in self.matches)

    @property
    def price_range(self) -> Tuple[float, float]:
        """``[c_hat_z', v_hat_z]`` — the cluster's viable price interval."""
        return (self.c_z, self.v_z)


def sorted_requests(
    requests: Sequence[Request], economics: ClusterEconomics
) -> List[Request]:
    """Descending v_hat; ties by earlier submission then id (§IV-D)."""
    return sorted(
        requests,
        key=lambda r: (
            -economics.v_hat(r.request_id),
            r.submit_time,
            r.request_id,
        ),
    )


def sorted_offers(
    offers: Sequence[Offer], economics: ClusterEconomics
) -> List[Offer]:
    """Ascending c_hat; ties by earlier submission then id."""
    return sorted(
        offers,
        key=lambda o: (economics.c_hat(o.offer_id), o.submit_time, o.offer_id),
    )


def greedy_fit(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    economics: ClusterEconomics,
    capacity: OfferCapacity,
    taken_requests: Set[str],
    min_value: Optional[float] = None,
    max_cost: Optional[float] = None,
    epsilon: float = 1e-9,
    uniform_price: bool = False,
) -> List[Tuple[Request, Offer]]:
    """Assign requests (given order) to offers (given order).

    ``taken_requests`` is shared across the clusters of a mini-auction so
    a request matched in one cluster is skipped in the next; capacity is
    likewise shared.  ``min_value``/``max_cost`` restrict admission to
    participants compatible with an already-determined clearing price.

    With ``uniform_price`` the fill maintains the invariant that every
    winner's value covers every used offer's cost (``min v_hat`` of
    winners >= ``max c_hat`` of used offers), so a single clearing price
    in ``[c_hat_z', v_hat_z]`` supports all trades — the assumption of
    the paper's IR proof (§IV-E).
    """
    matches: List[Tuple[Request, Offer]] = []
    max_used_cost = -math.inf
    for request in requests:
        if request.request_id in taken_requests:
            continue
        v_hat = economics.v_hat(request.request_id)
        if min_value is not None and v_hat < min_value - epsilon:
            continue
        if uniform_price and v_hat < max_used_cost - epsilon:
            # Admitting this winner would push the price band below an
            # offer already in use; no common price could support both.
            continue
        for offer in offers:
            c_hat = economics.c_hat(offer.offer_id)
            if not math.isfinite(c_hat):
                continue
            if max_cost is not None and c_hat > max_cost + epsilon:
                continue
            if v_hat < c_hat - epsilon:
                # Offers are cost-ascending: no later offer can be
                # profitable either.
                break
            if not is_feasible(request, offer):
                continue
            if not capacity.can_host(request, offer):
                continue
            # Const. (9): value covers the cost of the consumed fraction.
            if request.bid < resource_fraction(request, offer) * offer.bid - epsilon:
                continue
            capacity.consume(request, offer)
            taken_requests.add(request.request_id)
            matches.append((request, offer))
            if uniform_price:
                max_used_cost = max(max_used_cost, c_hat)
            break
    return matches


def allocate_cluster(
    cluster: Cluster,
    requests: Sequence[Request],
    offers: Sequence[Offer],
    config: AuctionConfig,
    capacity: Optional[OfferCapacity] = None,
    taken_requests: Optional[Set[str]] = None,
    economics: Optional[ClusterEconomics] = None,
) -> ClusterAllocation:
    """Greedy-fit one cluster and derive its z / z' / z'+1 indices.

    ``economics`` may be precomputed — the vectorized engine batches
    §IV-C over many clusters (``compute_economics_batch``) and passes
    each cluster's result in; it is bit-identical to computing here.
    """
    if economics is None:
        economics = compute_economics(list(requests), list(offers), config)
    request_order = sorted_requests(requests, economics)
    offer_order = sorted_offers(offers, economics)
    if capacity is None:
        capacity = OfferCapacity(offers)
    if taken_requests is None:
        taken_requests = set()

    matches = greedy_fit(
        request_order,
        offer_order,
        economics,
        capacity,
        taken_requests,
        epsilon=config.price_epsilon,
        uniform_price=config.enforce_price_consistency,
    )

    allocation = ClusterAllocation(
        cluster=cluster,
        requests=request_order,
        offers=offer_order,
        economics=economics,
        matches=matches,
    )
    if matches:
        allocation.v_z = min(
            economics.v_hat(r.request_id) for r, _ in matches
        )
        z_candidates = [
            r
            for r, _ in matches
            if economics.v_hat(r.request_id) == allocation.v_z
        ]
        allocation.z_request = sorted(
            z_candidates, key=lambda r: (r.submit_time, r.request_id)
        )[-1]
        used_ids = {o.offer_id for _, o in matches}
        allocation.c_z = max(
            economics.c_hat(offer_id) for offer_id in used_ids
        )
        unused = [
            o
            for o in offer_order
            if o.offer_id not in used_ids
            and math.isfinite(economics.c_hat(o.offer_id))
        ]
        if unused:
            allocation.z_plus_1_offer = unused[0]
            allocation.c_z_plus_1 = economics.c_hat(unused[0].offer_id)
    return allocation
