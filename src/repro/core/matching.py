"""Quality-of-match heuristic (paper Eq. 18).

A plain similarity (dot product) breaks down once clients weight their
requirements, so DeCloud augments geometric distance with a gravity-like
field exerted by offers:

    q_(r,o) = sum over k in (K_r intersect K_o) of
        sigma_(r,k) * rho'_(o,k) / (|rho'_(o,k) - rho'_(r,k)|^2 + 1)

where rho' are amounts normalized by the block-wide per-type maximum
(taken over both offers and requests of the current block).  Bigger offers
attract (numerator), mismatched sizes repel quadratically (denominator).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.market.bids import Offer, Request
from repro.market.feasibility import is_feasible
from repro.market.resources import common_types, elementwise_max


def block_maxima(
    requests: Iterable[Request], offers: Iterable[Offer]
) -> Dict[str, float]:
    """Per-resource-type maxima over everything in the block.

    The paper normalizes by "the maximum value of the resource from offers
    or requests of the current block" — zero stays the scale minimum.
    """
    vectors = [r.resources for r in requests]
    vectors.extend(o.resources for o in offers)
    return elementwise_max(vectors)


def quality_of_match(
    request: Request, offer: Offer, maxima: Dict[str, float]
) -> float:
    """Eq. (18) for one (request, offer) pair given block maxima.

    Terms accumulate in sorted resource-type order: float addition is not
    associative, so a hash-ordered set walk would make the low bits of the
    score vary with ``PYTHONHASHSEED``.  The vectorized engine
    (:mod:`repro.core.matching_vectorized`) accumulates in the same order,
    which is what makes the two engines bit-identical.
    """
    score = 0.0
    for key in sorted(common_types(request.resources, offer.resources)):
        top = maxima.get(key, 0.0)
        if top <= 0:
            continue
        rho_o = offer.resources[key] / top
        rho_r = request.resources[key] / top
        gap = rho_o - rho_r
        score += request.sigma(key) * rho_o / (gap * gap + 1.0)
    return score


def rank_offers(
    request: Request,
    offers: Sequence[Offer],
    maxima: Dict[str, float],
) -> List[Tuple[float, Offer]]:
    """Feasible offers for ``request``, best quality-of-match first.

    Ties break by earlier submission time then offer id — the paper's
    tie rule (§IV-D) removes any incentive to delay submission.
    """
    scored = [
        (quality_of_match(request, offer, maxima), offer)
        for offer in offers
        if is_feasible(request, offer)
    ]
    scored.sort(key=lambda item: (-item[0], item[1].submit_time, item[1].offer_id))
    return scored


def best_offer_set(
    request: Request,
    offers: Sequence[Offer],
    maxima: Dict[str, float],
    breadth: int,
) -> frozenset:
    """``best_r`` of Alg. 2: ids of the top-``breadth`` feasible offers."""
    ranked = rank_offers(request, offers, maxima)
    return frozenset(offer.offer_id for _, offer in ranked[:breadth])
