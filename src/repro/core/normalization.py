"""Per-cluster price normalization (paper §IV-C).

Offers and requests inside a cluster still differ in size and timespan, so
McAfee-style ranking needs a common unit.  The cluster's *virtual maximum*
``M_CL`` collects, per common resource type, the largest amount any offer
in the cluster provides.  Every offer and request is then expressed as a
fraction ``nu`` of that virtual machine, and costs/valuations are scaled
to "price of the virtual maximum per unit time":

    nu_o  = ||rho_o||_2 / ||M_CL||_2
    c_hat = c_o / (nu_o * (t_o^+ - t_o^-))

    nu_CR = max over critical k of rho_(r,k) / M_CL[k]
    nu_r  = max(nu_CR, ||rho_r||_2 / ||M_CL||_2)
    v_hat = v_r / (nu_r * d_r)

Critical resources (CPU/RAM/disk plus anything every request in the
cluster declares) drive ``nu_r`` because a request consuming 100% of a
critical resource monopolizes the machine regardless of other types.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Set

from repro.common.errors import AuctionError
from repro.core.config import AuctionConfig
from repro.market.bids import Offer, Request
from repro.market.resources import l2_norm


@dataclass(frozen=True)
class ClusterEconomics:
    """Normalized valuations/costs for one cluster's participants."""

    common_types: frozenset
    virtual_maximum: Mapping[str, float]
    nu_offers: Mapping[str, float]
    nu_requests: Mapping[str, float]
    normalized_costs: Mapping[str, float]
    normalized_values: Mapping[str, float]

    def c_hat(self, offer_id: str) -> float:
        return self.normalized_costs[offer_id]

    def v_hat(self, request_id: str) -> float:
        return self.normalized_values[request_id]

    def nu_r(self, request_id: str) -> float:
        return self.nu_requests[request_id]

    def nu_o(self, offer_id: str) -> float:
        return self.nu_offers[offer_id]


def cluster_common_types(
    requests: Iterable[Request], offers: Iterable[Offer]
) -> Set[str]:
    """``K_CL`` — types present in some request *and* some offer."""
    request_types: Set[str] = set()
    for request in requests:
        request_types |= set(request.resources)
    offer_types: Set[str] = set()
    for offer in offers:
        offer_types |= set(offer.resources)
    return request_types & offer_types


def virtual_maximum(
    offers: Iterable[Offer], common: Set[str]
) -> Dict[str, float]:
    """``M_CL`` — per-type maximum over the cluster's offers."""
    maxima: Dict[str, float] = {}
    for offer in offers:
        for key in common:
            amount = offer.resources.get(key, 0.0)
            if amount > maxima.get(key, 0.0):
                maxima[key] = amount
    return maxima


def critical_types(
    requests: Sequence[Request], common: Set[str], config: AuctionConfig
) -> Set[str]:
    """``K_CR`` = configured criticals + types every request declares."""
    critical = set(config.critical_resources)
    if requests:
        shared = set(requests[0].resources)
        for request in requests[1:]:
            shared &= set(request.resources)
        critical |= shared
    return critical & common


def compute_economics(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    config: AuctionConfig,
) -> ClusterEconomics:
    """All normalized quantities for one cluster."""
    if not requests or not offers:
        raise AuctionError("cluster economics need at least one of each side")
    common = cluster_common_types(requests, offers)
    if not common:
        raise AuctionError("cluster has no common resource types")
    maxima = virtual_maximum(offers, common)
    maxima_norm = l2_norm(maxima, common)
    if maxima_norm <= 0:
        # Legal bids may declare zero amounts, so a cluster can end up
        # with offers that are all zero-sized on its common types.
        # Nothing is priceable there: every offer is infinitely
        # expensive, every request worthless, and the cluster clears no
        # trades — instead of aborting the whole block.
        return ClusterEconomics(
            common_types=frozenset(common),
            virtual_maximum=dict(maxima),
            nu_offers={o.offer_id: 0.0 for o in offers},
            nu_requests={r.request_id: 0.0 for r in requests},
            normalized_costs={o.offer_id: math.inf for o in offers},
            normalized_values={r.request_id: 0.0 for r in requests},
        )

    nu_offers: Dict[str, float] = {}
    normalized_costs: Dict[str, float] = {}
    for offer in offers:
        nu = l2_norm(offer.resources, common) / maxima_norm
        if nu <= 0 or offer.span <= 0:
            # An offer contributing nothing on the cluster's common types
            # cannot be priced; treat it as infinitely expensive so it
            # never trades (it stays in the cluster for index purposes).
            nu_offers[offer.offer_id] = 0.0
            normalized_costs[offer.offer_id] = math.inf
            continue
        nu_offers[offer.offer_id] = nu
        normalized_costs[offer.offer_id] = offer.bid / (nu * offer.span)

    criticals = critical_types(requests, common, config)
    nu_requests: Dict[str, float] = {}
    normalized_values: Dict[str, float] = {}
    for request in requests:
        nu_cr = 0.0
        for key in criticals:
            top = maxima.get(key, 0.0)
            if top > 0:
                nu_cr = max(nu_cr, request.resources.get(key, 0.0) / top)
        nu = max(nu_cr, l2_norm(request.resources, common) / maxima_norm)
        # A request may exceed the virtual maximum on some type when the
        # cluster's offers are undersized relative to the block; cap at 1
        # so it pays at most the full virtual-machine price.
        nu = min(max(nu, 0.0), 1.0)
        if nu <= 0 or request.duration <= 0:
            nu_requests[request.request_id] = 0.0
            normalized_values[request.request_id] = 0.0
            continue
        nu_requests[request.request_id] = nu
        normalized_values[request.request_id] = request.bid / (
            nu * request.duration
        )

    return ClusterEconomics(
        common_types=frozenset(common),
        virtual_maximum=dict(maxima),
        nu_offers=nu_offers,
        nu_requests=nu_requests,
        normalized_costs=normalized_costs,
        normalized_values=normalized_values,
    )


def payment_for(
    economics: ClusterEconomics, request: Request, unit_price: float
) -> float:
    """Eq. (19) in monetary units: ``p_r = nu_r * d_r * p``.

    The clearing price ``p`` is per virtual-maximum per unit time; scaling
    back by the request's fraction ``nu_r`` and duration ``d_r`` yields
    money.  IR: ``p <= v_hat_r = v_r / (nu_r d_r)`` implies ``p_r <= v_r``.
    """
    return economics.nu_r(request.request_id) * request.duration * unit_price
