"""SBBA pooled pricing (paper Alg. 4, Eq. 19-20).

The clearing price of a mini-auction pools Eq. (20) over its clusters:

    p = min over clusters of min(v_hat_z, c_hat_{z'+1})

The participant *determining* the price never trades (the McAfee/SBBA
sacrifice that buys truthfulness): a price set by request ``z`` excludes
that client from the auction, a price set by offer ``z'+1`` excludes that
provider.

Two implementations live here:

* :func:`pooled_price` — the scalar reference (moved verbatim from
  ``repro.core.trade_reduction``, which re-exports it for
  compatibility);
* :func:`pooled_prices_batch` — the vectorized engine's kernel: the
  allocations of *many* mini-auctions are flattened into
  segment-indexed arrays, and every auction's band floor
  (``max c_hat_z'``), minimum winning valuation, and breakeven
  ``c_hat_{z'+1}`` candidate fall out of masked ``reduceat``
  reductions.  Price-determiner identity follows the scalar rule
  exactly: the *first* allocation in input order achieving the minimum
  (``min`` with a key returns the first minimal item).

Both paths compute the same floats with the same operations —
``tests/differential/`` holds them bit-identical through the full
pipeline.

:func:`payment_for` (Eq. 19) stays in :mod:`repro.core.normalization`
and is re-exported here so pricing callers find the whole price/payment
surface in one module.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.cluster_allocation import ClusterAllocation
from repro.core.normalization import payment_for  # noqa: F401  (re-export)
from repro.market.bids import Offer, Request

PriceResult = Tuple[Optional[float], Optional[Request], Optional[Offer]]


def pooled_price(
    allocations: Sequence[ClusterAllocation],
    epsilon: float = 1e-9,
) -> PriceResult:
    """Eq. (20) pooled over the auction's clusters.

    Returns ``(price, z_request, z_plus_1_offer)`` where exactly one of
    the two participants is the price-determiner (the other is ``None``).

    A common price must be *feasible for every cluster*: at least the
    highest used cost (``c_hat_z'``) and at most the lowest winning value
    (``v_hat_z``) across the auction — pairwise price compatibility
    (Alg. 3) guarantees this band is non-empty.  An unused offer
    ``z'+1`` cheaper than another cluster's traded offers therefore
    cannot determine the price (its cost lies outside the band and would
    void that cluster's trades); the qualifying ``c_hat_{z'+1}``
    candidates are those at or above the band floor.  On an exact tie
    the offer side wins — excluding a non-trading offer costs no welfare,
    excluding a winning request does.
    """
    trading = [a for a in allocations if a.has_trades]
    if not trading:
        return None, None, None
    v_candidates = [(a.v_z, a.z_request) for a in trading]
    min_v, z_request = min(v_candidates, key=lambda item: item[0])
    band_floor = max(a.c_z for a in trading)
    c_candidates = [
        (a.c_z_plus_1, a.z_plus_1_offer)
        for a in allocations
        if a.z_plus_1_offer is not None
        and math.isfinite(a.c_z_plus_1)
        and a.c_z_plus_1 >= band_floor - epsilon
    ]
    if c_candidates:
        min_c, z1_offer = min(c_candidates, key=lambda item: item[0])
        if min_c <= min_v:
            return min_c, None, z1_offer
    return min_v, z_request, None


def pooled_prices_batch(
    auction_allocations: Sequence[Sequence[ClusterAllocation]],
    epsilon: float = 1e-9,
) -> List[PriceResult]:
    """:func:`pooled_price` for many mini-auctions in one pass.

    Used by the vectorized engine when a wave of participant-disjoint
    auctions clears together — their live allocations are independent,
    so the prices are too.
    """
    import numpy as np

    results: List[PriceResult] = [
        (None, None, None) for _ in auction_allocations
    ]
    flat: List[ClusterAllocation] = []
    starts: List[int] = []
    segments: List[int] = []  # auction index of each non-empty segment
    for a_idx, allocations in enumerate(auction_allocations):
        if allocations:
            starts.append(len(flat))
            segments.append(a_idx)
            flat.extend(allocations)
    if not flat:
        return results

    n = len(flat)
    start_arr = np.asarray(starts, dtype=np.intp)
    seg_lengths = np.diff(np.append(start_arr, n))
    seg_of = np.repeat(np.arange(len(starts)), seg_lengths)
    trading = np.fromiter(
        (a.has_trades for a in flat), dtype=bool, count=n
    )
    v_z = np.array([a.v_z for a in flat])
    c_z = np.array([a.c_z for a in flat])
    c_z1 = np.array([a.c_z_plus_1 for a in flat])
    has_z1 = np.fromiter(
        (a.z_plus_1_offer is not None for a in flat), dtype=bool, count=n
    )
    indices = np.arange(n)
    sentinel = n  # "no index" marker that loses every minimum

    # min v_hat_z over the auction's trading clusters, with the identity
    # of the first allocation attaining it (the scalar min() rule).
    v_key = np.where(trading, v_z, np.inf)
    min_v = np.minimum.reduceat(v_key, start_arr)
    v_hit = (v_key == min_v[seg_of]) & trading
    first_v = np.minimum.reduceat(
        np.where(v_hit, indices, sentinel), start_arr
    )
    any_trading = np.logical_or.reduceat(trading, start_arr)

    # Band floor: the highest used cost across trading clusters.
    band = np.maximum.reduceat(np.where(trading, c_z, -np.inf), start_arr)

    # Qualifying z'+1 candidates: finite, present, at or above the floor.
    floor_cut = band - epsilon
    qualified = has_z1 & np.isfinite(c_z1) & (c_z1 >= floor_cut[seg_of])
    c_key = np.where(qualified, c_z1, np.inf)
    min_c = np.minimum.reduceat(c_key, start_arr)
    c_hit = (c_key == min_c[seg_of]) & qualified
    first_c = np.minimum.reduceat(
        np.where(c_hit, indices, sentinel), start_arr
    )
    any_candidate = np.logical_or.reduceat(qualified, start_arr)

    offer_side = any_trading & any_candidate & (min_c <= min_v)
    for q, a_idx in enumerate(segments):
        if not any_trading[q]:
            continue
        if offer_side[q]:
            winner = flat[int(first_c[q])]
            results[a_idx] = (float(min_c[q]), None, winner.z_plus_1_offer)
        else:
            winner = flat[int(first_v[q])]
            results[a_idx] = (float(min_v[q]), winner.z_request, None)
    return results


def pooled_price_vectorized(
    allocations: Sequence[ClusterAllocation],
    epsilon: float = 1e-9,
) -> PriceResult:
    """Single-auction entry point of the batched kernel."""
    return pooled_prices_batch([allocations], epsilon)[0]
