"""Sharded market fabric: concurrent zone-local auctions + spillover.

DeCloud's premise is that edge markets are geographically local — the
quality of match (Eq. 18) already penalizes distance — yet a block
normally clears as *one* global auction on one core.  This module
exploits the locality directly:

1. **Partition** the block's requests and offers into *zone shards*
   using the same location rules as the candidate generators
   (:func:`~repro.market.location.zone_prefix` buckets for hierarchical
   network zones, :func:`~repro.market.location.grid_cell` buckets for
   geo locations).  Bids whose location does not resolve land in a
   single *fallback* shard, so nothing is dropped.
2. **Clear every shard through the entire pipeline** (match -> cluster
   -> normalize -> assemble -> clear) independently — concurrently on a
   process pool when ``ShardPlan.shard_workers > 1`` — with a
   per-shard RNG stream derived from the block evidence and the shard's
   zone key alone (the :func:`~repro.core.parallel.derive_auction_rng`
   pattern), so the outcome is bit-identical whether shards run
   sequentially, in one process, or across N workers.
3. **Spillover**: pool every shard's unmatched bids into one final
   cross-zone auction so no cross-zone trade is silently lost.  The
   spillover round runs in the parent process and *reuses* the shard
   pool for its mini-auction waves (see
   :func:`~repro.core.parallel.shared_pool` — one clearing tree, one
   pool).

Determinism contract
--------------------

For a fixed block and plan the sharded outcome is a pure function of
``(requests, offers, evidence, config)``:

* shard membership depends only on bid location tags and the plan;
* shards are cleared in sorted zone-key order (fallback last) and each
  shard's randomization stream is ``evidence + "/shard/" + key``,
  independent of which worker (or how many workers) cleared it;
* the spillover round draws from ``evidence + "/shard/spillover"``.

``tests/differential/test_sharding_equivalence.py`` enforces
bit-identity across ``shard_workers`` in {0, 1, N} and across both
engines.  A plan whose partition yields a *single* shard degenerates to
the global auction exactly — same evidence, same pipeline — so sharding
only ever changes anything when it actually splits the market.

What sharding costs: a cross-zone pair can only trade in the spillover
round, against leftovers instead of the full book, so welfare may drop
versus the global auction.  ``examples/sharding_sweep.py`` quantifies
the welfare cost and the throughput win; docs/PERFORMANCE.md records
the measured trade-off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.common.errors import ValidationError
from repro.common.timing import PhaseTimer, resolve as resolve_timer
from repro.core.config import AuctionConfig, ShardPlan
from repro.core.outcome import AuctionOutcome
from repro.core.parallel import shared_pool
from repro.obs.telemetry import merge_payload
from repro.market.bids import Offer, Request
from repro.market.location import (
    GeoLocation,
    NetworkLocation,
    grid_cell,
    zone_prefix,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.auction import DecloudAuction
    from repro.obs import ObservabilityLike

#: Zone key of the shard holding bids with no resolvable location.
FALLBACK_SHARD = "fallback"
#: Reserved key of the cross-zone spillover round (never a zone key:
#: real shards are prefixed ``zone:`` / ``cell:`` or are ``fallback``).
SPILLOVER_SHARD = "spillover"


@dataclass(frozen=True)
class Shard:
    """One zone-local slice of a block, in original bid order."""

    key: str
    requests: Tuple[Request, ...]
    offers: Tuple[Offer, ...]

    @property
    def n_bids(self) -> int:
        return len(self.requests) + len(self.offers)


def shard_key(tag: Optional[str], plan: ShardPlan) -> str:
    """The zone key a bid with location ``tag`` shards into.

    Mirrors the candidate generators' resolution rules: with
    ``kind="network"`` the tag is looked up in ``plan.locations`` (when
    given) or parsed as a zone path itself, then bucketed by
    :func:`~repro.market.location.zone_prefix`; with ``kind="geo"`` the
    tag must map to a :class:`~repro.market.location.GeoLocation` and
    buckets by :func:`~repro.market.location.grid_cell`.  Anything that
    does not resolve lands in :data:`FALLBACK_SHARD`.
    """
    if not tag:
        return FALLBACK_SHARD
    if plan.kind == "geo":
        location = (plan.locations or {}).get(tag)
        if not isinstance(location, GeoLocation):
            return FALLBACK_SHARD
        row, col = grid_cell(location, plan.cell_deg)
        return f"cell:{row}:{col}"
    if plan.locations is not None:
        location = plan.locations.get(tag)
        if not isinstance(location, NetworkLocation):
            return FALLBACK_SHARD
        zone = location.zone
    else:
        try:
            zone = NetworkLocation(tag).zone
        except ValidationError:
            return FALLBACK_SHARD
    return "zone:" + zone_prefix(zone, plan.depth)


def partition_block(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    plan: ShardPlan,
) -> List[Shard]:
    """Bucket a block into zone shards, sorted by key (fallback last).

    Within a shard, bids keep their original block order, so a shard's
    sub-auction sees exactly the sub-sequence it would have seen of the
    global block.
    """
    request_buckets: Dict[str, List[Request]] = {}
    offer_buckets: Dict[str, List[Offer]] = {}
    for request in requests:
        request_buckets.setdefault(
            shard_key(request.location, plan), []
        ).append(request)
    for offer in offers:
        offer_buckets.setdefault(shard_key(offer.location, plan), []).append(
            offer
        )
    keys = set(request_buckets) | set(offer_buckets)
    ordered = sorted(keys - {FALLBACK_SHARD}) + (
        [FALLBACK_SHARD] if FALLBACK_SHARD in keys else []
    )
    return [
        Shard(
            key=key,
            requests=tuple(request_buckets.get(key, ())),
            offers=tuple(offer_buckets.get(key, ())),
        )
        for key in ordered
    ]


def derive_shard_evidence(evidence: bytes, key: str) -> bytes:
    """Independent verifiable evidence stream for one shard.

    Depends only on the block evidence and the shard's zone key, so
    every miner — and every worker layout — derives the identical
    randomization for the shard's clearing.
    """
    return evidence + b"/shard/" + key.encode("utf-8")


def shard_config(config: AuctionConfig) -> AuctionConfig:
    """The per-shard sub-config shipped to (possibly pooled) shard runs.

    Sharding and candidates are stripped — shards must not re-shard, and
    candidate generators carry transient state that must not cross the
    pickle boundary (their pruning is outcome-invariant by certificate,
    so stripping cannot change results).  ``miniauction_workers`` is
    clamped to <= 1: a shard run may execute inside a pool worker, and
    the non-nesting invariant of :mod:`repro.core.parallel` forbids
    spawning a second executor there.  The clamp preserves outcomes
    (0 stays 0; any N >= 1 is bit-identical to 1 by contract).
    """
    return replace(
        config,
        sharding=None,
        candidates=None,
        miniauction_workers=min(config.miniauction_workers, 1),
    )


def _run_shard(
    task: Tuple[
        str, Tuple[Request, ...], Tuple[Offer, ...], AuctionConfig, bytes, bool
    ],
) -> Tuple[
    str, Optional[AuctionOutcome], Dict[str, float], float,
    Optional[object], Optional[BaseException],
]:
    """Worker body: one shard through the full pipeline.

    Returns ``(key, outcome, phase_totals, elapsed_seconds, payload,
    error)``; the phase totals and wall time are measured inside the
    worker so the parent can record per-shard timings without trusting
    pool overhead.  With ``capture`` set (the parent bundle opted into
    the telemetry plane) the shard runs under a worker-local
    ``Observability`` bundle and ships its full metric/trace delta back
    as a :class:`~repro.obs.telemetry.TelemetryPayload` — even when the
    shard's pipeline raised, in which case ``outcome`` is ``None``, the
    payload is tagged ``aborted``, and ``error`` carries the exception
    for the parent to re-raise *after* merging.
    """
    from repro.core.auction import DecloudAuction
    from repro.obs.telemetry import capture_task

    key, requests, offers, config, evidence, capture = task
    timer = PhaseTimer()
    start = time.perf_counter()
    if capture:
        with capture_task(f"shard:{key}", "shard") as cap:
            cap.set_value(
                DecloudAuction(config).run(
                    list(requests), list(offers), evidence=evidence,
                    timer=timer, obs=cap.obs,
                )
            )
        return (
            key, cap.value, dict(timer.totals),
            time.perf_counter() - start, cap.payload, cap.error,
        )
    outcome = DecloudAuction(config).run(
        list(requests), list(offers), evidence=evidence, timer=timer
    )
    return (
        key, outcome, dict(timer.totals), time.perf_counter() - start,
        None, None,
    )


def run_sharded(
    auction: "DecloudAuction",
    requests: Sequence[Request],
    offers: Sequence[Offer],
    evidence: bytes,
    caller_timer: Optional[PhaseTimer],
    obs: "ObservabilityLike",
) -> AuctionOutcome:
    """Clear one block through the sharded fabric.

    Called by :meth:`~repro.core.auction.DecloudAuction.run` when the
    config carries a :class:`~repro.core.config.ShardPlan`.  Leaves the
    run's shard statistics on ``auction.last_shard_stats`` and mirrors
    the global path's round metrics on the merged outcome.
    """
    config = auction.config
    plan = config.sharding
    assert plan is not None
    if obs.enabled:
        round_timer: "PhaseTimer | object" = PhaseTimer()
    else:
        round_timer = resolve_timer(caller_timer)

    with round_timer.phase("shard_partition"), obs.tracer.span(
        "partition", kind=plan.kind
    ):
        shards = partition_block(requests, offers, plan)

    if len(shards) <= 1:
        # A one-shard (or empty) partition IS the global auction: clear
        # it with the block's own evidence so the degenerate plan is
        # bit-identical to no plan at all.
        from repro.core.auction import DecloudAuction

        _fold_timer(round_timer, caller_timer, obs)
        auction.last_shard_stats = {
            "shards": len(shards),
            "cleared_shards": len(shards),
            "degenerate": True,
            "spillover_requests": 0,
            "spillover_offers": 0,
            "spillover_trades": 0,
            "spillover_ran": False,
        }
        inner = DecloudAuction(replace(config, sharding=None))
        return inner.run(
            list(requests), list(offers), evidence=evidence,
            timer=caller_timer, obs=obs,
        )

    sub_config = shard_config(config)
    # Shards missing one whole side cannot trade locally: skip their
    # pipeline and hand their bids straight to the spillover pool.
    runnable = [s for s in shards if s.requests and s.offers]
    shard_outcomes: Dict[str, AuctionOutcome] = {}
    shard_seconds: Dict[str, float] = {}
    shard_phases: Dict[str, Dict[str, float]] = {}

    with shared_pool(plan.shard_workers) as lease:
        with round_timer.phase("shard_clear"), obs.tracer.span(
            "shards", count=len(runnable), total=len(shards)
        ):
            # The capture decision depends only on the parent bundle —
            # never on shard_workers or whether a pool spawned — so the
            # merged telemetry is byte-identical across worker layouts.
            capture = obs.enabled and getattr(obs, "telemetry", False)
            tasks = [
                (
                    shard.key,
                    shard.requests,
                    shard.offers,
                    sub_config,
                    derive_shard_evidence(evidence, shard.key),
                    capture,
                )
                for shard in runnable
            ]
            pool = (
                lease.get()
                if plan.shard_workers > 1 and len(tasks) > 1
                else None
            )
            if pool is not None:
                try:
                    results = list(pool.map(_run_shard, tasks))
                except (OSError, PermissionError):  # pragma: no cover
                    lease.fail()
                    results = [_run_shard(task) for task in tasks]
            else:
                results = [_run_shard(task) for task in tasks]
            first_error: Optional[BaseException] = None
            for key, outcome, phases, seconds, payload, error in results:
                if payload is not None:
                    # Merge before anything can raise: an aborted shard
                    # still reports its metrics and trace (tagged so).
                    merge_payload(obs, payload, shard=key, worker="shard")
                if error is not None:
                    if first_error is None:
                        first_error = error
                    continue
                assert outcome is not None
                shard_outcomes[key] = outcome
                shard_seconds[key] = seconds
                shard_phases[key] = phases
                obs.tracer.event(
                    "shard.cleared",
                    shard=key,
                    requests=len(outcome.matches)
                    + len(outcome.reduced_requests)
                    + len(outcome.unmatched_requests),
                    trades=len(outcome.matches),
                )
            if first_error is not None:
                raise first_error

        # Pool the survivors in shard order: unmatched bids of cleared
        # shards plus the raw bids of shards that had no counterparty
        # side at all.  Exactly these — and nothing else — enter the
        # spillover round.
        spill_requests: List[Request] = []
        spill_offers: List[Offer] = []
        for shard in shards:
            outcome = shard_outcomes.get(shard.key)
            if outcome is None:
                spill_requests.extend(shard.requests)
                spill_offers.extend(shard.offers)
            else:
                spill_requests.extend(outcome.unmatched_requests)
                spill_offers.extend(outcome.unmatched_offers)

        spill_outcome: Optional[AuctionOutcome] = None
        if plan.spillover and spill_requests and spill_offers:
            from repro.core.auction import DecloudAuction

            # In-parent, so the unclamped worker budget applies and the
            # mini-auction waves reuse this lease's pool (never nest).
            spill_config = replace(config, sharding=None, candidates=None)
            with round_timer.phase("spillover"), obs.tracer.span(
                "spillover",
                requests=len(spill_requests),
                offers=len(spill_offers),
            ):
                spill_outcome = DecloudAuction(spill_config).run(
                    spill_requests,
                    spill_offers,
                    evidence=derive_shard_evidence(evidence, SPILLOVER_SHARD),
                )

    merged = AuctionOutcome()
    for shard in shards:
        outcome = shard_outcomes.get(shard.key)
        if outcome is None:
            continue
        merged.matches.extend(outcome.matches)
        merged.reduced_requests.extend(outcome.reduced_requests)
        merged.reduced_offers.extend(outcome.reduced_offers)
        merged.prices.extend(outcome.prices)
    if spill_outcome is not None:
        merged.matches.extend(spill_outcome.matches)
        merged.reduced_requests.extend(spill_outcome.reduced_requests)
        merged.reduced_offers.extend(spill_outcome.reduced_offers)
        merged.prices.extend(spill_outcome.prices)
        merged.unmatched_requests = list(spill_outcome.unmatched_requests)
        merged.unmatched_offers = list(spill_outcome.unmatched_offers)
    else:
        merged.unmatched_requests = spill_requests
        merged.unmatched_offers = spill_offers

    fallback = next((s for s in shards if s.key == FALLBACK_SHARD), None)
    auction.last_shard_stats = {
        "shards": len(shards),
        "cleared_shards": len(runnable),
        "degenerate": False,
        "shard_keys": [shard.key for shard in shards],
        "shard_bids": {shard.key: shard.n_bids for shard in shards},
        "shard_seconds": shard_seconds,
        "fallback_bids": fallback.n_bids if fallback is not None else 0,
        "spillover_requests": len(spill_requests),
        "spillover_offers": len(spill_offers),
        "spillover_trades": (
            len(spill_outcome.matches) if spill_outcome is not None else 0
        ),
        "spillover_ran": spill_outcome is not None,
    }

    if obs.enabled:
        _record_shard_round(
            auction, obs, round_timer, caller_timer,
            len(requests), len(offers),
            shards, runnable, shard_seconds, shard_phases,
            spill_requests, spill_offers, spill_outcome, merged,
        )
        if config.enable_trade_reduction:
            obs.check_outcome(merged, source="auction")
    return merged


def _fold_timer(
    round_timer: "PhaseTimer | object",
    caller_timer: Optional[PhaseTimer],
    obs: "ObservabilityLike",
) -> None:
    """Merge a round-local timer into the caller's and the bundle's."""
    if not obs.enabled or not isinstance(round_timer, PhaseTimer):
        return
    resolved = resolve_timer(caller_timer)
    resolved.merge(round_timer)
    if obs.timer is not resolved:
        obs.timer.merge(round_timer)


def _record_shard_round(
    auction: "DecloudAuction",
    obs: "ObservabilityLike",
    round_timer: "PhaseTimer | object",
    caller_timer: Optional[PhaseTimer],
    n_requests: int,
    n_offers: int,
    shards: Sequence[Shard],
    runnable: Sequence[Shard],
    shard_seconds: Dict[str, float],
    shard_phases: Dict[str, Dict[str, float]],
    spill_requests: Sequence[Request],
    spill_offers: Sequence[Offer],
    spill_outcome: Optional[AuctionOutcome],
    merged: AuctionOutcome,
) -> None:
    """Fold one sharded round into the registry (enabled path only).

    The ``auction_*`` round series mirror the global path (cluster /
    orphan / mini-auction counts are per-shard internals the parent
    never sees and record as zero); the ``shard_*`` series are the
    fabric's own: shards built, spillover volume, and the per-shard
    clear-latency and phase histograms.
    """
    reg = obs.registry
    reg.inc("shard_blocks_total")
    reg.inc("shard_shards_total", len(runnable))
    reg.set("shard_last_shards", len(shards))
    reg.set("shard_last_cleared_shards", len(runnable))
    fallback = next(
        (s for s in shards if s.key == FALLBACK_SHARD), None
    )
    reg.set(
        "shard_last_fallback_bids",
        fallback.n_bids if fallback is not None else 0,
    )
    reg.set("shard_last_spillover_bids", len(spill_requests), side="request")
    reg.set("shard_last_spillover_bids", len(spill_offers), side="offer")
    reg.set(
        "shard_last_spillover_trades",
        len(spill_outcome.matches) if spill_outcome is not None else 0,
    )
    for key in sorted(shard_seconds):
        reg.observe("shard_clear_seconds", shard_seconds[key])
    for key in sorted(shard_phases):
        for phase, seconds in sorted(shard_phases[key].items()):
            reg.observe("shard_phase_seconds", seconds, phase=phase)
    obs.tracer.event(
        "shard.spillover",
        requests=len(spill_requests),
        offers=len(spill_offers),
        trades=len(spill_outcome.matches) if spill_outcome is not None else 0,
        ran=spill_outcome is not None,
    )
    # Reuse the global path's round recording so BlockMetrics readers
    # see the same auction_last_* series regardless of sharding.
    auction._record_round(
        obs,
        round_timer,  # type: ignore[arg-type]
        caller_timer,
        n_requests,
        n_offers,
        0,
        0,
        0,
        merged,
    )
