"""Declarative fault plans: everything that can go wrong, seeded.

A :class:`FaultPlan` is the single source of truth for one chaos
scenario.  Message-level faults (drop / delay / duplication / reorder
jitter) are sampled from a generator derived via :mod:`repro.common.rng`,
so two networks built from equal plans misbehave identically — failure
scenarios are *reproducible*, which is what makes them testable.

Node-level faults are scheduled in virtual time: :class:`CrashSpec`
takes a node down at an instant (optionally bringing it back), and
:class:`PartitionSpec` splits the overlay into non-communicating groups
for a window, healing automatically when the window closes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import SeedLike, make_generator


@dataclass(frozen=True)
class CrashSpec:
    """Node ``node_id`` crashes at ``at`` and recovers at ``until`` (if set)."""

    node_id: str
    at: float = 0.0
    until: float = math.inf

    def __post_init__(self) -> None:
        if self.until < self.at:
            raise ValidationError("crash must end at or after it starts")

    def down_at(self, now: float) -> bool:
        return self.at <= now < self.until


@dataclass(frozen=True)
class PartitionSpec:
    """Disjoint node groups that cannot reach each other during a window.

    Nodes absent from every group are unaffected.  ``end`` defaults to
    "never heals"; pass a finite end to model partition-then-heal.
    """

    groups: Tuple[FrozenSet[str], ...]
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValidationError("partition must end at or after it starts")
        if len(self.groups) < 2:
            raise ValidationError("a partition needs at least two groups")
        seen: set = set()
        for group in self.groups:
            if seen & group:
                raise ValidationError("partition groups must be disjoint")
            seen |= group

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.end

    def severs(self, sender: str, recipient: str) -> bool:
        """True when ``sender`` and ``recipient`` sit in different groups."""
        side_a = side_b = None
        for index, group in enumerate(self.groups):
            if sender in group:
                side_a = index
            if recipient in group:
                side_b = index
        return side_a is not None and side_b is not None and side_a != side_b


def make_partition(*groups: Tuple[str, ...], start: float = 0.0,
                   end: float = math.inf) -> PartitionSpec:
    """Sugar: ``make_partition(("m0", "m1"), ("m2",))``."""
    return PartitionSpec(
        groups=tuple(frozenset(g) for g in groups), start=start, end=end
    )


@dataclass(frozen=True)
class FaultPlan:
    """One seeded chaos scenario for an :class:`UnreliableNetwork`.

    Rates are per *delivery* (one broadcast fans out to one delivery per
    subscriber), so a 0.2 drop rate loses each copy independently with
    probability 0.2 — exactly the redundancy gossip protocols exploit.
    """

    seed: SeedLike = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    min_delay: float = 0.0
    max_delay: float = 0.0
    #: probability a delivery picks up extra jitter, overtaking later sends
    reorder_rate: float = 0.0
    reorder_jitter: float = 1.0
    crashes: Tuple[CrashSpec, ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValidationError(f"{name} must be in [0, 1)")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValidationError("need 0 <= min_delay <= max_delay")
        if self.reorder_jitter < 0:
            raise ValidationError("reorder_jitter must be non-negative")

    def rng(self) -> np.random.Generator:
        """A fresh generator; equal plans yield identical fault streams."""
        return make_generator(self.seed)


#: A plan with every fault switched off — the lossless control case.
LOSSLESS = FaultPlan()
