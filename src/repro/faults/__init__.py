"""Fault injection: unreliable networks, Byzantine actors, chaos plans.

The decentralized layer is only falsifiable if faults can actually
occur.  This package supplies them, deterministically:

* :class:`FaultPlan` — one seeded chaos scenario (message drop / delay /
  duplication / reorder, scheduled node crashes and partitions).
* :class:`UnreliableNetwork` — a drop-in
  :class:`~repro.ledger.network.BroadcastNetwork` that executes a plan.
* Byzantine actors — :class:`WithholdingParticipant`,
  :class:`TamperingParticipant`, :class:`EquivocatingMiner` — honest
  implementations with exactly one lie each.

The protocol-side degradation these exercise lives in
:mod:`repro.protocol.exposure`; the sweep harness that measures it lives
in :mod:`repro.sim.chaos`.
"""

from repro.faults.actors import (
    EquivocatingMiner,
    TamperingParticipant,
    WithholdingParticipant,
    detect_equivocation,
)
from repro.faults.crash import (
    CRASH_MODES,
    CrashPlan,
    CrashPoint,
    SimulatedCrashError,
)
from repro.faults.network import GLOBAL_NODE, UnreliableNetwork
from repro.faults.plan import (
    LOSSLESS,
    CrashSpec,
    FaultPlan,
    PartitionSpec,
    make_partition,
)

__all__ = [
    "CRASH_MODES",
    "CrashPlan",
    "CrashPoint",
    "CrashSpec",
    "SimulatedCrashError",
    "EquivocatingMiner",
    "FaultPlan",
    "GLOBAL_NODE",
    "LOSSLESS",
    "PartitionSpec",
    "TamperingParticipant",
    "UnreliableNetwork",
    "WithholdingParticipant",
    "detect_equivocation",
    "make_partition",
]
