"""Deterministic crash-point injection at WAL record boundaries.

A :class:`CrashPoint` arms one simulated process death: it watches every
append a :class:`~repro.store.wal.WriteAheadLog` attempts and, at the
chosen boundary, decides what actually reached the disk before the
process died —

* ``"clean"``   — the full frame persisted; the crash hit *after* the
  record boundary (the classic fsync-then-die point);
* ``"torn"``    — only a prefix of the frame persisted (the write died
  mid-sector), leaving a torn tail for recovery to truncate;
* ``"corrupt"`` — the full frame persisted but one byte flipped (media
  corruption), so the CRC catches it on scan.

The death itself is :class:`SimulatedCrashError` — deliberately *not* a
:class:`~repro.common.errors.ReproError` subclass, because the protocol
layer swallows ``ReproError`` at gossip handlers and round boundaries
(that is its graceful-degradation contract).  A process death must
propagate to the supervisor, not be absorbed as a protocol fault.

A :class:`CrashPlan` enumerates every (boundary, mode) pair for a run of
known append count — the crash matrix the differential harness in
``repro.sim.chaos`` sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

from repro.common.errors import ValidationError

#: crash modes a point can simulate at its boundary
CRASH_MODES = ("clean", "torn", "corrupt")


class SimulatedCrashError(Exception):
    """The simulated process died mid-append (injected, not a bug).

    Intentionally a plain :class:`Exception`: a ``ReproError`` would be
    swallowed by the protocol's fault-degradation paths, but nothing
    survives a process death except the bytes already on disk.
    """

    def __init__(
        self,
        node_id: str,
        record_type: str,
        seq: int,
        mode: str,
    ) -> None:
        super().__init__(
            f"simulated crash of {node_id} at WAL append seq={seq} "
            f"({record_type!r}, mode={mode})"
        )
        self.node_id = node_id
        self.record_type = record_type
        self.seq = seq
        self.mode = mode


@dataclass
class CrashPoint:
    """Kill the process at the ``at_append``-th WAL append (0-based).

    Stateful by design: the point counts the appends it observes, fires
    exactly once, and records what it saw — the harness reads
    :attr:`fired` to tell "crashed as planned" from "run finished before
    the boundary was reached".
    """

    at_append: int
    mode: str = "clean"
    #: fraction of the final frame that reaches disk in ``"torn"`` mode
    #: (0.0 = nothing persisted, i.e. the crash hit *before* the boundary)
    torn_fraction: float = 0.5
    node_id: str = "node-0"
    _seen: int = field(default=0, repr=False)
    fired: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.at_append < 0:
            raise ValidationError("at_append must be non-negative")
        if self.mode not in CRASH_MODES:
            raise ValidationError(
                f"unknown crash mode {self.mode!r}; expected one of "
                f"{CRASH_MODES}"
            )
        if not 0.0 <= self.torn_fraction <= 1.0:
            raise ValidationError("torn_fraction must be in [0, 1]")

    def on_append(self, frame: bytes) -> Optional[bytes]:
        """Called by the WAL before each append completes.

        Returns ``None`` to let the append proceed, or the bytes that
        "reached the disk" when the point fires (the WAL persists them
        and then raises :meth:`crash_error`).
        """
        if self.fired:
            return None
        index = self._seen
        self._seen += 1
        if index != self.at_append:
            return None
        self.fired = True
        if self.mode == "clean":
            return frame
        if self.mode == "torn":
            # clamp so a high fraction still leaves the frame incomplete
            cut = min(int(len(frame) * self.torn_fraction), len(frame) - 1)
            return frame[:cut]
        # "corrupt": full length on disk, one byte flipped mid-frame
        pos = len(frame) // 2
        return frame[:pos] + bytes([frame[pos] ^ 0xFF]) + frame[pos + 1:]

    def crash_error(self, record_type: str, seq: int) -> SimulatedCrashError:
        return SimulatedCrashError(
            node_id=self.node_id,
            record_type=record_type,
            seq=seq,
            mode=self.mode,
        )


@dataclass(frozen=True)
class CrashPlan:
    """Every (WAL boundary, crash mode) pair for a run of known size.

    ``append_count`` comes from a prior uninterrupted run of the same
    seeded scenario (``WriteAheadLog.append_count``), so the plan covers
    *every* record boundary the real run will hit — the exhaustiveness
    the crash-matrix differential guarantee rests on.
    """

    append_count: int
    modes: Tuple[str, ...] = CRASH_MODES
    torn_fraction: float = 0.5
    node_id: str = "node-0"

    def __post_init__(self) -> None:
        if self.append_count < 0:
            raise ValidationError("append_count must be non-negative")
        for mode in self.modes:
            if mode not in CRASH_MODES:
                raise ValidationError(f"unknown crash mode {mode!r}")

    def __len__(self) -> int:
        return self.append_count * len(self.modes)

    def points(self) -> Iterator[CrashPoint]:
        """Fresh, un-fired crash points in (boundary, mode) order."""
        for index in range(self.append_count):
            for mode in self.modes:
                yield CrashPoint(
                    at_append=index,
                    mode=mode,
                    torn_fraction=self.torn_fraction,
                    node_id=self.node_id,
                )
