"""Byzantine actor models: drop-in misbehaving participants and miners.

Each actor subclasses the honest implementation and misbehaves in
exactly one way, so simulations and tests can mix them freely with
honest peers and attribute every degradation to a single fault:

* :class:`WithholdingParticipant` — seals bids but never discloses keys
  (the paper's denial path: its bids are excluded, the round clears).
* :class:`TamperingParticipant` — discloses *wrong* keys, hoping to swap
  its bid after seeing the preamble; screening rejects the reveal at
  admission, which degrades to the withholding case.
* :class:`EquivocatingMiner` — wins the round then proposes a body whose
  allocation does not match honest re-execution (and can mint a second
  conflicting body for the same preamble); peers reject it and the
  protocol falls back to the next miner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.common.errors import EquivocationError
from repro.cryptosim import symmetric
from repro.ledger.block import BlockBody, BlockPreamble, KeyReveal
from repro.ledger.miner import Miner
from repro.protocol.exposure import Participant


@dataclass
class WithholdingParticipant(Participant):
    """Never reveals any key: every sealed bid silently stays sealed."""

    def reveals_for(self, preamble: BlockPreamble) -> List[KeyReveal]:
        return []

    def re_reveal(
        self,
        preamble: BlockPreamble,
        txids: Optional[Iterable[str]] = None,
    ) -> List[KeyReveal]:
        return []


@dataclass
class TamperingParticipant(Participant):
    """Reveals forged keys, attempting a post-preamble bid swap.

    The forged key is derived deterministically from the txid so runs
    stay reproducible.  The commitment broadcast alongside the sealed
    bid betrays the forgery at admission screening.
    """

    def _forge(self, reveal: KeyReveal) -> KeyReveal:
        return KeyReveal(
            sender_id=reveal.sender_id,
            txid=reveal.txid,
            temp_key=symmetric.generate_key(
                seed=b"tampered" + reveal.txid.encode("ascii")
            ),
            blind=reveal.blind,
        )

    def reveals_for(self, preamble: BlockPreamble) -> List[KeyReveal]:
        return [self._forge(r) for r in super().reveals_for(preamble)]

    def re_reveal(
        self,
        preamble: BlockPreamble,
        txids: Optional[Iterable[str]] = None,
    ) -> List[KeyReveal]:
        return [self._forge(r) for r in super().re_reveal(preamble, txids)]


def _doctor_allocation(allocation: dict, miner_id: str) -> dict:
    """A self-serving rewrite guaranteed to differ from the honest payload."""
    doctored = dict(allocation)
    matches = [dict(m) for m in doctored.get("matches", [])]
    if matches:
        for match in matches:
            match["payment"] = 0.0
        doctored["matches"] = matches
    # An empty round gives nothing to skim, so the attacker plants a
    # subsidy line instead — either way re-execution cannot match.
    doctored["subsidy"] = miner_id
    return doctored


@dataclass
class EquivocatingMiner(Miner):
    """A leader that signs bodies honest re-execution cannot reproduce."""

    def honest_body(
        self, preamble: BlockPreamble, reveals: Tuple[KeyReveal, ...]
    ) -> BlockBody:
        return super().build_body(preamble, reveals)

    def build_body(
        self, preamble: BlockPreamble, reveals: Tuple[KeyReveal, ...]
    ) -> BlockBody:
        honest = self.honest_body(preamble, reveals)
        doctored = BlockBody(
            reveals=honest.reveals,
            allocation=_doctor_allocation(honest.allocation, self.miner_id),
            miner_id=self.miner_id,
            miner_public=self.keypair.public,
        )
        return doctored.signed_by(self.keypair, preamble.hash())

    def equivocate(
        self, preamble: BlockPreamble, reveals: Tuple[KeyReveal, ...]
    ) -> Tuple[BlockBody, BlockBody]:
        """Two validly-signed, mutually inconsistent bodies for one preamble."""
        return (
            self.honest_body(preamble, reveals).signed_by(
                self.keypair, preamble.hash()
            ),
            self.build_body(preamble, reveals),
        )


def detect_equivocation(
    preamble: BlockPreamble, body_a: BlockBody, body_b: BlockBody
) -> None:
    """Raise :class:`EquivocationError` on proof of a double-signed preamble.

    Two bodies signed by the same miner over the same preamble with
    different payloads are cryptographic evidence of equivocation —
    exactly what a slashing contract would consume.
    """
    phash = preamble.hash()
    if body_a.miner_id != body_b.miner_id:
        return
    if not (
        body_a.verify_signature(phash) and body_b.verify_signature(phash)
    ):
        return
    if body_a.signing_payload(phash) != body_b.signing_payload(phash):
        raise EquivocationError(
            f"miner {body_a.miner_id} signed two conflicting bodies for "
            f"preamble {phash[:12]}..."
        )
