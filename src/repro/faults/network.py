"""A broadcast bus that lies, loses, repeats, and goes quiet.

:class:`UnreliableNetwork` is a drop-in for
:class:`~repro.ledger.network.BroadcastNetwork` — same ``subscribe`` /
``broadcast`` / ``messages`` surface, same traffic log — but every
delivery runs the gauntlet of a :class:`~repro.faults.plan.FaultPlan`:
it may be dropped, delayed, duplicated, jittered out of order, refused
because the recipient crashed, or severed by a partition.

Deliveries are queued in virtual time and drained by :meth:`flush`;
:class:`~repro.protocol.exposure.ExposureProtocol` flushes at phase
boundaries, so messages delayed past a phase deadline are genuinely
*late* — the protocol's retry path has to earn its keep.

Node-scoped subscriptions (:meth:`subscribe_node`) opt a handler into
crash and partition semantics; plain :meth:`subscribe` handlers behave
like BroadcastNetwork subscribers that merely suffer message faults.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.faults.plan import FaultPlan, PartitionSpec
from repro.ledger.network import Message

Handler = Callable[[str, Any], None]

#: pseudo-node owning handlers registered via the node-less ``subscribe``
GLOBAL_NODE = "*"


@dataclass(order=True)
class _Delivery:
    time: float
    sequence: int
    node_id: str = field(compare=False)
    topic: str = field(compare=False)
    payload: Any = field(compare=False)
    sender: str = field(compare=False)


@dataclass
class UnreliableNetwork:
    """Seeded-fault broadcast bus implementing the BroadcastNetwork surface."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    log: List[Message] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = self.plan.rng()
        self._subscribers: Dict[Tuple[str, str], List[Handler]] = {}
        self._nodes: List[str] = []
        self._queue: List[_Delivery] = []
        self._sequence = itertools.count()
        self._crashed: Set[str] = set()
        self._manual_partitions: List[PartitionSpec] = []
        self.now = 0.0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.censored = 0  # undeliverable: crashed node or severed link

    # ------------------------------------------------------------------
    # Subscription (BroadcastNetwork-compatible plus node-scoped form)
    # ------------------------------------------------------------------
    def subscribe(self, topic: str, handler: Handler) -> None:
        """Register a handler unaffected by node-level faults."""
        self.subscribe_node(GLOBAL_NODE, topic, handler)

    def subscribe_node(
        self, node_id: str, topic: str, handler: Handler
    ) -> None:
        """Register ``handler`` as ``node_id``'s inbox for ``topic``."""
        if node_id not in self._nodes:
            self._nodes.append(node_id)
        self._subscribers.setdefault((node_id, topic), []).append(handler)

    # ------------------------------------------------------------------
    # Node faults: scripted on top of whatever the plan schedules
    # ------------------------------------------------------------------
    def crash_node(self, node_id: str) -> None:
        self._crashed.add(node_id)

    def recover_node(self, node_id: str) -> None:
        self._crashed.discard(node_id)

    def partition(self, *groups: Tuple[str, ...]) -> None:
        """Sever links between the given groups until :meth:`heal`."""
        self._manual_partitions.append(
            PartitionSpec(groups=tuple(frozenset(g) for g in groups))
        )

    def heal(self) -> None:
        """Lift every scripted partition (plan-scheduled ones still apply)."""
        self._manual_partitions.clear()

    def is_down(self, node_id: str) -> bool:
        if node_id in self._crashed:
            return True
        return any(
            spec.node_id == node_id and spec.down_at(self.now)
            for spec in self.plan.crashes
        )

    def _severed(self, sender: str, recipient: str) -> bool:
        if not sender:
            return False
        for spec in self._manual_partitions:
            if spec.severs(sender, recipient):
                return True
        return any(
            spec.active_at(self.now) and spec.severs(sender, recipient)
            for spec in self.plan.partitions
        )

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def broadcast(self, topic: str, payload: Any, sender: str = "") -> None:
        """Queue one faulty delivery per subscribing node.

        Fault sampling happens in subscription order at send time, so the
        fault stream depends only on the plan seed and the call sequence —
        never on wall-clock or payload contents.
        """
        self.log.append(Message(topic=topic, payload=payload, sender=sender))
        if self.is_down(sender):
            return
        plan = self.plan
        for node_id in self._nodes:
            if (node_id, topic) not in self._subscribers:
                continue
            copies = 1
            if plan.duplicate_rate and self._rng.random() < plan.duplicate_rate:
                copies = 2
                self.duplicated += 1
            for _ in range(copies):
                if plan.drop_rate and self._rng.random() < plan.drop_rate:
                    self.dropped += 1
                    continue
                delay = self._rng.uniform(plan.min_delay, plan.max_delay)
                if plan.reorder_rate and self._rng.random() < plan.reorder_rate:
                    delay += self._rng.uniform(0.0, plan.reorder_jitter)
                heapq.heappush(
                    self._queue,
                    _Delivery(
                        time=self.now + delay,
                        sequence=next(self._sequence),
                        node_id=node_id,
                        topic=topic,
                        payload=payload,
                        sender=sender,
                    ),
                )

    def flush(self, until: Optional[float] = None) -> int:
        """Deliver queued messages in virtual-time order up to ``until``.

        Crash and partition state is evaluated at each delivery's
        timestamp, so a message in flight when its recipient crashes is
        lost — exactly the window real failures exploit.  Returns the
        number of messages delivered.
        """
        horizon = math.inf if until is None else until
        count = 0
        while self._queue and self._queue[0].time <= horizon:
            delivery = heapq.heappop(self._queue)
            self.now = max(self.now, delivery.time)
            if self.is_down(delivery.node_id) or self._severed(
                delivery.sender, delivery.node_id
            ):
                self.censored += 1
                continue
            handlers = self._subscribers.get(
                (delivery.node_id, delivery.topic), ()
            )
            for handler in list(handlers):
                handler(delivery.sender, delivery.payload)
            self.delivered += 1
            count += 1
        if until is not None:
            self.now = max(self.now, until)
        return count

    # ------------------------------------------------------------------
    # Introspection (BroadcastNetwork parity)
    # ------------------------------------------------------------------
    def messages(self, topic: str) -> List[Message]:
        """All *sent* messages on ``topic`` (delivery not guaranteed)."""
        return [msg for msg in self.log if msg.topic == topic]

    @property
    def pending(self) -> int:
        return len(self._queue)
