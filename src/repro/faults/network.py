"""A broadcast bus that lies, loses, repeats, and goes quiet.

:class:`UnreliableNetwork` is a drop-in for
:class:`~repro.ledger.network.BroadcastNetwork` — same ``subscribe`` /
``broadcast`` / ``messages`` surface, same traffic log — but every
delivery runs the gauntlet of a :class:`~repro.faults.plan.FaultPlan`:
it may be dropped, delayed, duplicated, jittered out of order, refused
because the recipient crashed, or severed by a partition.

Deliveries are queued in virtual time and drained by :meth:`flush`;
:class:`~repro.protocol.exposure.ExposureProtocol` flushes at phase
boundaries, so messages delayed past a phase deadline are genuinely
*late* — the protocol's retry path has to earn its keep.

Reorder jitter perturbs delivery *ordering* only: a jittered copy sorts
later in the queue (and can miss a flush horizon), but the virtual clock
advances by the copy's un-jittered arrival time.  Crash and partition
windows are therefore evaluated against real arrival times, independent
of how the driver batches its flushes — a requirement for drivers that
do not flush at round barriers (the async runtime).

Node-scoped subscriptions (:meth:`subscribe_node`) opt a handler into
crash and partition semantics; plain :meth:`subscribe` handlers behave
like BroadcastNetwork subscribers that merely suffer message faults.

Causal observability: after :meth:`attach_obs`, any payload carrying a
:class:`~repro.obs.trace.TraceContext` (``payload.trace``) gets its fate
recorded — drops, duplications, and reorder jitter as events *on the
sender's span* at send time, censorship (crash/partition) at delivery
time, and exactly one ``deliver`` span per unique (message, node) pair
parented on the sender's span.  A duplicated copy still reaches the
handlers (inboxes are idempotent by design) but is traced as a
``net.duplicate_delivery`` event instead of a second span.  None of
this touches the fault RNG stream: seeded outcomes are identical with
observability on, off, or absent.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.faults.plan import FaultPlan, PartitionSpec
from repro.ledger.network import Message
from repro.obs import NULL_OBS, ObservabilityLike

Handler = Callable[[str, Any], None]

#: pseudo-node owning handlers registered via the node-less ``subscribe``
GLOBAL_NODE = "*"


@dataclass(order=True)
class _Delivery:
    #: ordering key: base arrival plus any reorder jitter.  Drives heap
    #: order and the ``flush(until)`` horizon, but NOT the virtual clock.
    time: float
    sequence: int
    node_id: str = field(compare=False)
    topic: str = field(compare=False)
    payload: Any = field(compare=False)
    sender: str = field(compare=False)
    #: broadcast index (position in the traffic log) — identifies which
    #: send this copy belongs to, so duplicates share a message id
    message_id: int = field(compare=False, default=-1)
    #: clock time: when the copy would have arrived without reorder
    #: jitter.  ``flush`` advances ``now`` to this, so a jittered copy
    #: shifts *ordering* without warping the clock that crash and
    #: partition windows are evaluated against.
    arrival: float = field(compare=False, default=0.0)


@dataclass
class UnreliableNetwork:
    """Seeded-fault broadcast bus implementing the BroadcastNetwork surface."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    log: List[Message] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = self.plan.rng()
        self._subscribers: Dict[Tuple[str, str], List[Handler]] = {}
        self._nodes: List[str] = []
        self._queue: List[_Delivery] = []
        self._sequence = itertools.count()
        self._crashed: Set[str] = set()
        self._manual_partitions: List[PartitionSpec] = []
        self.now = 0.0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.censored = 0  # undeliverable: crashed node or severed link
        self._obs: ObservabilityLike = NULL_OBS
        #: (message_id, node_id) pairs that already produced a delivery
        #: span — later copies are traced as duplicate events instead
        self._delivered_keys: Set[Tuple[int, str]] = set()

    def attach_obs(self, obs: Optional[ObservabilityLike]) -> None:
        """Opt the bus into causal tracing (no effect on fault sampling)."""
        self._obs = NULL_OBS if obs is None else obs

    # ------------------------------------------------------------------
    # Subscription (BroadcastNetwork-compatible plus node-scoped form)
    # ------------------------------------------------------------------
    def subscribe(self, topic: str, handler: Handler) -> None:
        """Register a handler unaffected by node-level faults."""
        self.subscribe_node(GLOBAL_NODE, topic, handler)

    def subscribe_node(
        self, node_id: str, topic: str, handler: Handler
    ) -> None:
        """Register ``handler`` as ``node_id``'s inbox for ``topic``."""
        if node_id not in self._nodes:
            self._nodes.append(node_id)
        self._subscribers.setdefault((node_id, topic), []).append(handler)

    # ------------------------------------------------------------------
    # Node faults: scripted on top of whatever the plan schedules
    # ------------------------------------------------------------------
    def crash_node(self, node_id: str) -> None:
        self._crashed.add(node_id)

    def recover_node(self, node_id: str) -> None:
        self._crashed.discard(node_id)

    def partition(self, *groups: Tuple[str, ...]) -> None:
        """Sever links between the given groups until :meth:`heal`."""
        self._manual_partitions.append(
            PartitionSpec(groups=tuple(frozenset(g) for g in groups))
        )

    def heal(self) -> None:
        """Lift every scripted partition (plan-scheduled ones still apply)."""
        self._manual_partitions.clear()

    def is_down(self, node_id: str) -> bool:
        if node_id in self._crashed:
            return True
        return any(
            spec.node_id == node_id and spec.down_at(self.now)
            for spec in self.plan.crashes
        )

    def _severed(self, sender: str, recipient: str) -> bool:
        if not sender:
            return False
        for spec in self._manual_partitions:
            if spec.severs(sender, recipient):
                return True
        return any(
            spec.active_at(self.now) and spec.severs(sender, recipient)
            for spec in self.plan.partitions
        )

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def broadcast(self, topic: str, payload: Any, sender: str = "") -> None:
        """Queue one faulty delivery per subscribing node.

        Fault sampling happens in subscription order at send time, so the
        fault stream depends only on the plan seed and the call sequence —
        never on wall-clock or payload contents.
        """
        message_id = len(self.log)
        self.log.append(Message(topic=topic, payload=payload, sender=sender))
        if self.is_down(sender):
            return
        plan = self.plan
        obs = self._obs
        trace = getattr(payload, "trace", None) if obs.enabled else None
        for node_id in self._nodes:
            if (node_id, topic) not in self._subscribers:
                continue
            copies = 1
            if plan.duplicate_rate and self._rng.random() < plan.duplicate_rate:
                copies = 2
                self.duplicated += 1
                if trace is not None:
                    obs.tracer.event_at(
                        trace, "net.duplicate",
                        topic=topic, node=node_id, sender=sender,
                    )
                    obs.registry.inc("net_duplicates_total", topic=topic)
            for _ in range(copies):
                if plan.drop_rate and self._rng.random() < plan.drop_rate:
                    self.dropped += 1
                    if trace is not None:
                        obs.tracer.event_at(
                            trace, "net.drop",
                            topic=topic, node=node_id, sender=sender,
                        )
                        obs.registry.inc("net_dropped_total", topic=topic)
                    continue
                delay = self._rng.uniform(plan.min_delay, plan.max_delay)
                jitter = 0.0
                if plan.reorder_rate and self._rng.random() < plan.reorder_rate:
                    jitter = self._rng.uniform(0.0, plan.reorder_jitter)
                    if trace is not None:
                        obs.tracer.event_at(
                            trace, "net.reorder",
                            topic=topic, node=node_id, sender=sender,
                        )
                        obs.registry.inc("net_reorders_total", topic=topic)
                arrival = self.now + delay
                heapq.heappush(
                    self._queue,
                    _Delivery(
                        time=arrival + jitter,
                        sequence=next(self._sequence),
                        node_id=node_id,
                        topic=topic,
                        payload=payload,
                        sender=sender,
                        message_id=message_id,
                        arrival=arrival,
                    ),
                )

    def flush(self, until: Optional[float] = None) -> int:
        """Deliver queued messages in virtual-time order up to ``until``.

        Crash and partition state is evaluated at each delivery's
        timestamp, so a message in flight when its recipient crashes is
        lost — exactly the window real failures exploit.  Returns the
        number of messages delivered.
        """
        horizon = math.inf if until is None else until
        count = 0
        obs = self._obs
        while self._queue and self._queue[0].time <= horizon:
            delivery = heapq.heappop(self._queue)
            # Advance the clock by the *un-jittered* arrival: reorder
            # jitter changed where this copy sorts, not what time it is.
            # Advancing by the jittered key would let one reordered copy
            # warp the clock for every later send — delivery fates would
            # then depend on where the driver's flush barriers happen to
            # fall (a lockstep-only assumption).
            self.now = max(self.now, delivery.arrival)
            trace = (
                getattr(delivery.payload, "trace", None)
                if obs.enabled
                else None
            )
            if self.is_down(delivery.node_id) or self._severed(
                delivery.sender, delivery.node_id
            ):
                self.censored += 1
                if trace is not None:
                    obs.tracer.event_at(
                        trace, "net.censored",
                        topic=delivery.topic,
                        node=delivery.node_id,
                        sender=delivery.sender,
                    )
                    obs.registry.inc(
                        "net_censored_total", topic=delivery.topic
                    )
                continue
            handlers = self._subscribers.get(
                (delivery.node_id, delivery.topic), ()
            )
            if trace is not None:
                key = (delivery.message_id, delivery.node_id)
                if key in self._delivered_keys:
                    # A duplicated copy: the handlers still run (inboxes
                    # are idempotent) but the causal tree keeps exactly
                    # one delivery span per (message, node).
                    obs.tracer.event_at(
                        trace, "net.duplicate_delivery",
                        topic=delivery.topic,
                        node=delivery.node_id,
                        sender=delivery.sender,
                    )
                    for handler in list(handlers):
                        handler(delivery.sender, delivery.payload)
                else:
                    self._delivered_keys.add(key)
                    obs.registry.inc(
                        "net_delivered_total", topic=delivery.topic
                    )
                    with obs.tracer.from_context(
                        trace, "deliver",
                        topic=delivery.topic,
                        node=delivery.node_id,
                        sender=delivery.sender,
                    ):
                        for handler in list(handlers):
                            handler(delivery.sender, delivery.payload)
            else:
                for handler in list(handlers):
                    handler(delivery.sender, delivery.payload)
            self.delivered += 1
            count += 1
        if until is not None:
            self.now = max(self.now, until)
        return count

    # ------------------------------------------------------------------
    # Introspection (BroadcastNetwork parity)
    # ------------------------------------------------------------------
    def messages(self, topic: str) -> List[Message]:
        """All *sent* messages on ``topic`` (delivery not guaranteed)."""
        return [msg for msg in self.log if msg.topic == topic]

    @property
    def pending(self) -> int:
        return len(self._queue)
