"""Deterministic in-process transport for the async runtime.

Same fault gauntlet as :class:`~repro.faults.network.UnreliableNetwork`
(drop / delay / duplicate / reorder / crash / partition, all replayed
from a :class:`~repro.faults.plan.FaultPlan`), but rebuilt for a
message-driven reactor instead of a flush-at-phase-barriers driver:

* **Deliveries are scheduler events.**  A copy delayed by the plan is an
  event at its arrival instant; a reorder-jittered copy arrives late for
  real (the jitter is part of its due time), and crash/partition windows
  are evaluated at the moment the copy actually lands — no driver-side
  flush horizon can warp fates.
* **Logical fault keys.**  Callers may tag each broadcast with a stable
  ``key`` naming the *logical* send (round, attempt, txid…).  Fault
  draws then come from a generator derived from ``(plan.seed, key)``, so
  a message's fate is a pure function of the plan and the message — not
  of how many unrelated sends happened first.  This is what lets a
  crash-recovery continuation replay the surviving suffix of a run and
  see identical faults, even though the global send order differs.
  Untagged sends fall back to a per-transport sequence key.
* **Bounded inboxes + backpressure.**  Each node owns a FIFO inbox of
  ``inbox_capacity`` messages, drained one message per scheduler event
  (so deliveries to different nodes interleave).  A copy arriving at a
  full inbox is deferred and redelivered after ``defer_delay`` — counted,
  observable, and deterministic.

Observability is read-only by contract: counters and trace events are
emitted only when a bundle is attached, and neither the fault draws nor
the scheduler's tie-break stream depends on it.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.common.rng import make_generator
from repro.faults.plan import FaultPlan, PartitionSpec
from repro.ledger.network import Message
from repro.obs import NULL_OBS, ObservabilityLike
from repro.runtime.scheduler import DeterministicScheduler

Handler = Callable[[str, Any], None]


class DeterministicTransport:
    """Fault-replaying broadcast bus driven by a seeded scheduler."""

    def __init__(
        self,
        scheduler: DeterministicScheduler,
        plan: Optional[FaultPlan] = None,
        inbox_capacity: int = 64,
        defer_delay: float = 0.005,
    ) -> None:
        self.scheduler = scheduler
        self.plan = plan or FaultPlan()
        self.inbox_capacity = inbox_capacity
        self.defer_delay = defer_delay
        self.log: List[Message] = []
        self._subscribers: Dict[Tuple[str, str], List[Handler]] = {}
        self._nodes: List[str] = []
        self._inboxes: Dict[str, Deque[Tuple[str, str, Any]]] = {}
        self._draining: Set[str] = set()
        self._crashed: Set[str] = set()
        self._manual_partitions: List[PartitionSpec] = []
        self._auto_key = itertools.count()
        self._obs: ObservabilityLike = NULL_OBS
        # Fast path: a plan with no message faults and no delays needs no
        # RNG at all — every copy lands "now" (ordering still explored by
        # the scheduler's seeded tie-breaks).
        plan_ = self.plan
        self._faultless = (
            not plan_.drop_rate
            and not plan_.duplicate_rate
            and not plan_.reorder_rate
            and plan_.min_delay == 0.0
            and plan_.max_delay == 0.0
        )
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.censored = 0  # undeliverable: crashed node or severed link
        self.deferred = 0  # backpressure redeliveries
        self.inbox_high_watermark = 0
        self._profiler: Optional[object] = None

    def attach_obs(self, obs: Optional[ObservabilityLike]) -> None:
        """Opt into metrics/tracing (no effect on fault or schedule RNG)."""
        self._obs = NULL_OBS if obs is None else obs

    def attach_profiler(self, profiler: Optional[object]) -> None:
        """Opt into stall attribution (repro.obs.profile).

        The profiler only *listens* — deferral delays were already being
        scheduled, so attaching one draws no extra RNG and changes no
        delivery order.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------
    # Subscription (UnreliableNetwork-compatible surface)
    # ------------------------------------------------------------------
    def subscribe_node(self, node_id: str, topic: str, handler: Handler) -> None:
        if node_id not in self._nodes:
            self._nodes.append(node_id)
            self._inboxes[node_id] = deque()
        self._subscribers.setdefault((node_id, topic), []).append(handler)

    # ------------------------------------------------------------------
    # Node faults (scripted on top of the plan's scheduled windows)
    # ------------------------------------------------------------------
    def crash_node(self, node_id: str) -> None:
        self._crashed.add(node_id)

    def recover_node(self, node_id: str) -> None:
        self._crashed.discard(node_id)

    def partition(self, *groups: Tuple[str, ...]) -> None:
        self._manual_partitions.append(
            PartitionSpec(groups=tuple(frozenset(g) for g in groups))
        )

    def heal(self) -> None:
        self._manual_partitions.clear()

    def is_down(self, node_id: str) -> bool:
        if node_id in self._crashed:
            return True
        now = self.scheduler.now
        return any(
            spec.node_id == node_id and spec.down_at(now)
            for spec in self.plan.crashes
        )

    def _severed(self, sender: str, recipient: str) -> bool:
        if not sender:
            return False
        for spec in self._manual_partitions:
            if spec.severs(sender, recipient):
                return True
        now = self.scheduler.now
        return any(
            spec.active_at(now) and spec.severs(sender, recipient)
            for spec in self.plan.partitions
        )

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------
    def broadcast(
        self,
        topic: str,
        payload: Any,
        sender: str = "",
        key: Optional[str] = None,
    ) -> None:
        """Schedule one faulty delivery per subscribing node.

        ``key`` names the logical send; equal keys draw identical fault
        fates regardless of global send order (see module docstring).
        """
        self.log.append(Message(topic=topic, payload=payload, sender=sender))
        self.sent += 1
        obs = self._obs
        if obs.enabled:
            obs.registry.inc("runtime_messages_sent_total", topic=topic)
        if self.is_down(sender):
            return
        plan = self.plan
        now = self.scheduler.now
        trace = getattr(payload, "trace", None) if obs.enabled else None
        if self._faultless:
            for node_id in self._nodes:
                if (node_id, topic) in self._subscribers:
                    self._schedule_delivery(0.0, 0.0, node_id, topic, payload, sender)
            return
        if key is None:
            key = f"auto-{next(self._auto_key)}"
        rng = make_generator(f"net-{plan.seed!r}|{key}")
        for node_id in self._nodes:
            if (node_id, topic) not in self._subscribers:
                continue
            copies = 1
            if plan.duplicate_rate and rng.random() < plan.duplicate_rate:
                copies = 2
                self.duplicated += 1
                if trace is not None:
                    obs.tracer.event_at(
                        trace, "net.duplicate",
                        topic=topic, node=node_id, sender=sender,
                    )
                    obs.registry.inc(
                        "runtime_messages_duplicated_total", topic=topic
                    )
            for _ in range(copies):
                if plan.drop_rate and rng.random() < plan.drop_rate:
                    self.dropped += 1
                    if trace is not None:
                        obs.tracer.event_at(
                            trace, "net.drop",
                            topic=topic, node=node_id, sender=sender,
                        )
                        obs.registry.inc(
                            "runtime_messages_dropped_total", topic=topic
                        )
                    continue
                delay = rng.uniform(plan.min_delay, plan.max_delay)
                if plan.reorder_rate and rng.random() < plan.reorder_rate:
                    # In a reactor a reordered copy simply arrives later:
                    # the jitter is real lateness at this copy's inbox,
                    # not a shared-clock distortion.
                    delay += rng.uniform(0.0, plan.reorder_jitter)
                    if trace is not None:
                        obs.tracer.event_at(
                            trace, "net.reorder",
                            topic=topic, node=node_id, sender=sender,
                        )
                self._schedule_delivery(delay, 0.0, node_id, topic, payload, sender)

    def _schedule_delivery(
        self,
        delay: float,
        bias: float,
        node_id: str,
        topic: str,
        payload: Any,
        sender: str,
    ) -> None:
        self.scheduler.call_later(
            delay,
            lambda: self._deliver(node_id, topic, payload, sender),
            order_bias=bias,
        )

    def _deliver(self, node_id: str, topic: str, payload: Any, sender: str) -> None:
        """One copy lands: censor, defer (backpressure), or enqueue."""
        obs = self._obs
        if self.is_down(node_id) or self._severed(sender, node_id):
            self.censored += 1
            if obs.enabled:
                obs.registry.inc("runtime_messages_censored_total", topic=topic)
                trace = getattr(payload, "trace", None)
                if trace is not None:
                    obs.tracer.event_at(
                        trace, "net.censored",
                        topic=topic, node=node_id, sender=sender,
                    )
            return
        inbox = self._inboxes[node_id]
        if len(inbox) >= self.inbox_capacity:
            # Bounded inbox: the copy is not lost, it waits at the edge.
            self.deferred += 1
            if obs.enabled:
                obs.registry.inc(
                    "runtime_backpressure_deferrals_total", node=node_id
                )
            if self._profiler is not None:
                self._profiler.node_stall(
                    node_id, "backpressure_deferral", self.defer_delay
                )
            self._schedule_delivery(
                self.defer_delay, 0.0, node_id, topic, payload, sender
            )
            return
        inbox.append((sender, topic, payload))
        if len(inbox) > self.inbox_high_watermark:
            self.inbox_high_watermark = len(inbox)
            if obs.enabled:
                obs.registry.set(
                    "runtime_inbox_high_watermark", self.inbox_high_watermark
                )
        if node_id not in self._draining:
            self._draining.add(node_id)
            self.scheduler.call_later(0.0, lambda: self._drain(node_id))

    def _drain(self, node_id: str) -> None:
        """Process exactly one queued message, then yield the turn.

        One message per scheduler event keeps actor turns interleaved —
        the seeded tie-breaks decide who runs next, which is precisely
        the schedule space the differential suite sweeps.
        """
        inbox = self._inboxes[node_id]
        if not inbox:
            self._draining.discard(node_id)
            return
        sender, topic, payload = inbox.popleft()
        if inbox:
            self.scheduler.call_later(0.0, lambda: self._drain(node_id))
        else:
            self._draining.discard(node_id)
        self.delivered += 1
        obs = self._obs
        handlers = self._subscribers.get((node_id, topic), ())
        if obs.enabled:
            obs.registry.inc("runtime_messages_delivered_total", topic=topic)
            trace = getattr(payload, "trace", None)
            if trace is not None:
                with obs.tracer.from_context(
                    trace, "deliver", topic=topic, node=node_id, sender=sender
                ):
                    for handler in list(handlers):
                        handler(sender, payload)
                return
        for handler in list(handlers):
            handler(sender, payload)

    # ------------------------------------------------------------------
    # Introspection (BroadcastNetwork parity)
    # ------------------------------------------------------------------
    def messages(self, topic: str) -> List[Message]:
        """All *sent* messages on ``topic`` (delivery not guaranteed)."""
        return [msg for msg in self.log if msg.topic == topic]
