"""``repro.runtime`` — the asynchronous, pipelined protocol runtime.

Message-driven actors (miners, bidders) exchange the existing
``repro.protocol.messages`` over pluggable transports:

* :class:`~repro.runtime.transport.DeterministicTransport` — in-process,
  driven by a seeded :class:`~repro.runtime.scheduler.DeterministicScheduler`
  (reproducible schedules, seeded schedule *exploration*, FaultPlan
  replay, bounded inboxes with backpressure);
* :mod:`repro.runtime.sockets` — a real asyncio TCP hub for demos.

:class:`~repro.runtime.reactor.Runtime` drives pipelined protocol
rounds on top: round *N+1* seals while round *N* mines, reveals,
verifies, and commits.  Committed outcomes are proven bit-identical to
the lockstep :class:`~repro.protocol.exposure.ExposureProtocol` by the
differential suite (``tests/differential/test_runtime_equivalence.py``).

See ``docs/RUNTIME.md`` for the architecture and determinism contract.
"""

from repro.runtime.reactor import (
    RoundInput,
    Runtime,
    RuntimeCosts,
    RuntimeReport,
    RuntimeRound,
)
from repro.runtime.scheduler import DeterministicScheduler
from repro.runtime.transport import DeterministicTransport

__all__ = [
    "DeterministicScheduler",
    "DeterministicTransport",
    "RoundInput",
    "Runtime",
    "RuntimeCosts",
    "RuntimeReport",
    "RuntimeRound",
]
