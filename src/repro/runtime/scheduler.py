"""Seeded deterministic event scheduler — the runtime's beating heart.

The async runtime never touches wall-clock or an OS event loop in tests:
every future action is an entry in one virtual-time heap, and the order
two co-temporal events run in is decided by a *seeded* tie-break drawn
when the event is scheduled.  Two consequences, both load-bearing:

* **Reproducibility** — the same ``seed`` replays the exact event order,
  byte for byte, which is what the determinism suite pins down.
* **Schedule exploration** — different seeds permute the order of
  concurrent events (message deliveries, timers, actor turns), so the
  differential suite can sweep seeds and assert committed outcomes are
  *schedule-invariant*, not just reproducible.

The clock only moves forward: an event scheduled "in the past" (delay
``<= 0``) runs at the current instant, ordered by its tie-break among
everything else due now.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Set, Tuple

from repro.common.errors import ValidationError
from repro.common.rng import SeedLike, make_generator


class DeterministicScheduler:
    """A virtual-time event loop with seeded co-temporal tie-breaking."""

    def __init__(self, seed: SeedLike = 0) -> None:
        self.seed = seed
        self._rng = make_generator(f"runtime-schedule-{seed!r}")
        self.now = 0.0
        #: (due_time, tie_break, seq, callback)
        self._heap: List[Tuple[float, float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._cancelled: Set[int] = set()
        #: events executed so far (monotone; handy for progress asserts)
        self.executed = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_later(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        order_bias: float = 0.0,
    ) -> int:
        """Run ``callback`` after ``delay`` virtual seconds.

        ``order_bias`` shifts where the event sorts among events due at
        the *same* instant without changing its due time — the transport
        uses it for reorder jitter, which by contract perturbs ordering,
        never the clock.  Returns a handle for :meth:`cancel`.
        """
        if delay != delay:  # NaN guard: a NaN due time corrupts the heap
            raise ValidationError("event delay must not be NaN")
        due = self.now + max(delay, 0.0)
        handle = next(self._seq)
        # The tie-break is drawn at scheduling time, so RNG consumption
        # depends only on the scheduling sequence — never on whether
        # observability or any other read-only instrumentation is on.
        tie = float(self._rng.random()) + order_bias
        heapq.heappush(self._heap, (due, tie, handle, callback))
        return handle

    def call_at(
        self,
        when: float,
        callback: Callable[[], None],
        *,
        order_bias: float = 0.0,
    ) -> int:
        return self.call_later(when - self.now, callback, order_bias=order_bias)

    def cancel(self, handle: int) -> None:
        """Best-effort cancellation; a fired handle is silently ignored."""
        self._cancelled.add(handle)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._heap) - len(
            self._cancelled.intersection(h for _, _, h, _ in self._heap)
        )

    def step(self) -> bool:
        """Run the next due event; returns False when the heap is empty."""
        while self._heap:
            due, _tie, handle, callback = heapq.heappop(self._heap)
            if handle in self._cancelled:
                self._cancelled.discard(handle)
                continue
            self.now = max(self.now, due)
            self.executed += 1
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[Callable[[], bool]] = None,
        max_events: int = 10_000_000,
    ) -> int:
        """Drain the heap (optionally stopping once ``until()`` is true).

        ``max_events`` is a runaway-loop backstop, far above anything a
        real scenario schedules; hitting it raises instead of spinning.
        """
        ran = 0
        while self._heap:
            if until is not None and until():
                break
            if ran >= max_events:
                raise ValidationError(
                    f"scheduler exceeded {max_events} events; "
                    "likely a self-rescheduling loop"
                )
            if self.step():
                ran += 1
        return ran
