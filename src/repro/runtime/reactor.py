"""The pipelined protocol runtime: rounds as interleaved state machines.

:class:`Runtime` drives the two-phase exposure protocol (paper §III)
over a :class:`~repro.runtime.transport.DeterministicTransport`, one
scheduler event at a time.  Each round advances through the same phases
as the lockstep :class:`~repro.protocol.exposure.ExposureProtocol` —
seal → mine → reveal → propose → verify → commit — journaled through
the same WAL ``round.phase`` markers, but **rounds overlap**: the moment
round *N*'s preamble freezes its transaction selection, round *N+1*'s
seal phase opens, so sealing and admission-settling of the next block
run concurrently with mining, reveal collection, verification, and
commit of the current one.  Mining itself stays serialized (a preamble
needs its parent hash), which is exactly the dependency the paper's
chain imposes.

Equivalence with the lockstep engine is by construction, and enforced
by the differential suite:

* the same ``Miner``/``Participant`` objects execute every protocol
  action (sealing, screening, allocation, verification);
* preambles are composed in stamped submission-sequence order — the
  arrival order a synchronous bus gives the lockstep engine for free;
* leader rotation, quorum, reveal-retry budgets, and proposer fallback
  reuse the lockstep rules (``leader_rotation`` is literally shared).

Under a fault-free plan a pipelined run's committed blocks are
bit-identical to lockstep's across *every* scheduler seed; under faults
each committed block equals the fault-free replay on its surviving bid
set (the same contract the chaos harness checks for lockstep).

Virtual phase costs (:class:`RuntimeCosts`) give mining, reveal
deadlines, and verification nonzero width on the virtual clock so that
pipelining has something to overlap; wall-clock work (PoW, allocation)
still runs eagerly inside the owning event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.common.errors import ReproError
from repro.core.outcome import AuctionOutcome
from repro.faults.plan import FaultPlan
from repro.ledger.block import Block, BlockPreamble
from repro.ledger.miner import Miner
from repro.market.bids import Offer, Request
from repro.obs import ObservabilityLike, resolve as resolve_obs
from repro.obs.profile import PipelineProfiler
from repro.obs.telemetry import TelemetryPublisher
from repro.protocol import messages
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import (
    Participant,
    RoundResult,
    leader_rotation,
)
from repro.protocol.identity import IdentityRegistry
from repro.runtime.actors import MinerActor, ParticipantActor
from repro.runtime.scheduler import DeterministicScheduler
from repro.runtime.transport import DeterministicTransport

Bid = Union[Request, Offer]


@dataclass(frozen=True)
class RuntimeCosts:
    """Virtual-time widths of the protocol phases.

    These shape the schedule (and what pipelining can overlap); they
    never affect committed outcomes — the determinism suite runs the
    same market under different costs and checks identical blocks.
    """

    mine: float = 1.0
    reveal_deadline: float = 1.0
    propose: float = 0.25
    verify: float = 0.25
    commit: float = 0.25
    #: polling interval for submission admission (the gossip-settle check)
    submit_check: float = 0.25


@dataclass(frozen=True)
class RoundInput:
    """One round's traffic: who submits what, and when it arrives.

    ``offsets`` are virtual-time arrival offsets from the round's
    seal-open instant (default: everything arrives immediately).  The
    sustained driver spreads them to model continuous arrivals.
    """

    submissions: Tuple[Tuple[Participant, Bid], ...]
    offsets: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.offsets is not None and len(self.offsets) != len(
            self.submissions
        ):
            raise ValueError("offsets must match submissions 1:1")


@dataclass
class RuntimeRound:
    """Terminal record of one round driven by the runtime."""

    index: int
    result: Optional[RoundResult] = None
    #: error type name when the round aborted (mirrors the lockstep
    #: driver's raised ``ReproError`` subclass)
    error: str = ""
    seal_opened_at: float = 0.0
    finished_at: float = 0.0
    #: True when this round's seal opened while its predecessor was
    #: still in flight — the pipelining overlap the bench counts
    overlapped: bool = False

    @property
    def committed(self) -> bool:
        return self.result is not None


@dataclass
class RuntimeReport:
    """Everything one :meth:`Runtime.run` produced."""

    rounds: List[RuntimeRound]
    virtual_time: float
    overlap_rounds: int
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    messages_censored: int
    backpressure_deferrals: int

    @property
    def committed(self) -> List[RoundResult]:
        return [r.result for r in self.rounds if r.result is not None]

    @property
    def aborted(self) -> List[RuntimeRound]:
        return [r for r in self.rounds if r.result is None]

    @property
    def rounds_per_virtual_second(self) -> float:
        if self.virtual_time <= 0.0:
            return float("inf")
        return len(self.committed) / self.virtual_time


class _Entry:
    """One submission's lifecycle inside a round."""

    __slots__ = ("participant", "bid", "tx", "txid", "sequence", "attempts",
                 "settled", "state")

    def __init__(self, participant: Participant, bid: Bid) -> None:
        self.participant = participant
        self.bid = bid
        self.tx = None
        self.txid: Optional[str] = None
        self.sequence: Optional[int] = None
        self.attempts = 0
        self.settled = False
        self.state: Optional["_RoundState"] = None


_TERMINAL = ("done", "aborted")


class _RoundState:
    __slots__ = (
        "index", "input", "status", "entries", "outstanding", "leader",
        "preamble", "phash", "reveals", "excluded", "proposer_queue",
        "failed", "deadline_handle", "record",
    )

    def __init__(self, index: int, round_input: RoundInput) -> None:
        self.index = index
        self.input = round_input
        self.status = "pending"
        self.entries: List[_Entry] = [
            _Entry(p, b) for p, b in round_input.submissions
        ]
        for entry in self.entries:
            entry.state = self
        self.outstanding = len(self.entries)
        self.leader: Optional[Miner] = None
        self.preamble: Optional[BlockPreamble] = None
        self.phash: Optional[str] = None
        self.reveals: Tuple = ()
        self.excluded: Tuple[str, ...] = ()
        self.proposer_queue: List[Miner] = []
        self.failed: List[str] = []
        self.deadline_handle: Optional[int] = None
        self.record = RuntimeRound(index=index)

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL


class Runtime:
    """Asynchronous, pipelined driver for the exposure protocol."""

    def __init__(
        self,
        miners: Sequence[Miner],
        plan: Optional[FaultPlan] = None,
        schedule_seed: object = 0,
        scheduler: Optional[DeterministicScheduler] = None,
        transport: Optional[DeterministicTransport] = None,
        registry: Optional[IdentityRegistry] = None,
        submit_retries: int = 2,
        max_reveal_retries: int = 2,
        reveal_backoff: float = 2.0,
        costs: Optional[RuntimeCosts] = None,
        obs: Optional[ObservabilityLike] = None,
        store: Optional[object] = None,
        start_round: int = 0,
        pipeline: bool = True,
        inbox_capacity: int = 64,
        on_commit: Optional[Callable[[int, RoundResult], None]] = None,
        profiler: Optional[PipelineProfiler] = None,
        telemetry_interval: Optional[float] = None,
    ) -> None:
        if not miners:
            raise ReproError("at least one miner is required")
        self.miners = list(miners)
        self.scheduler = scheduler or DeterministicScheduler(seed=schedule_seed)
        self.transport = transport or DeterministicTransport(
            self.scheduler, plan=plan, inbox_capacity=inbox_capacity
        )
        self.registry = registry
        self.submit_retries = submit_retries
        self.max_reveal_retries = max_reveal_retries
        self.reveal_backoff = reveal_backoff
        self.costs = costs or RuntimeCosts()
        self.obs = resolve_obs(obs)
        self.store = store
        self.start_round = start_round
        self.pipeline = pipeline
        self.on_commit = on_commit
        #: passive stall profiler (repro.obs.profile) — accumulates
        #: virtual-time attribution as phases schedule; never schedules
        #: events itself, so attaching one cannot perturb outcomes
        self.profiler = profiler
        #: virtual-time period for telemetry snapshot-diff frames on the
        #: transport's telemetry topic; None (default) publishes nothing
        #: and keeps the schedule (and its RNG draws) untouched
        self.telemetry_interval = telemetry_interval
        self._publisher: Optional[TelemetryPublisher] = None
        if telemetry_interval is not None and self.obs.enabled:
            self._publisher = TelemetryPublisher(self.obs, node_id="runtime")
        if self.obs.enabled:
            self.transport.attach_obs(self.obs)
        if profiler is not None:
            self.transport.attach_profiler(profiler)
        self._miner_actors: Dict[str, MinerActor] = {
            m.miner_id: MinerActor(self, m) for m in self.miners
        }
        self._participant_actors: Dict[str, ParticipantActor] = {}
        self._sequence = 0
        self._states: List[_RoundState] = []
        self._state_by_phash: Dict[str, _RoundState] = {}
        self._entry_by_txid: Dict[str, _Entry] = {}

    # ------------------------------------------------------------------
    # Shared protocol rules (identical to the lockstep engine)
    # ------------------------------------------------------------------
    @property
    def quorum(self) -> int:
        """Verifying majority over the *whole* miner set, live or not."""
        return len(self.miners) // 2 + 1

    def _live_miners(self) -> List[Miner]:
        return [
            m for m in self.miners if not self.transport.is_down(m.miner_id)
        ]

    def _journal_phase(self, round_index: int, phase: str, **extra) -> None:
        # markers carry the *global* round number so a continuation
        # runtime (start_round > 0) journals into the same sequence the
        # original run did — recovery keys its credit-or-replay decision
        # on these indices
        if self.store is not None:
            self.store.log(
                "round.phase",
                round=self.start_round + round_index,
                phase=phase,
                **extra,
            )
            if self.profiler is not None:
                # WAL appends ride the phase edges (zero virtual width),
                # so the profiler records counts, not seconds.
                self.profiler.count(round_index, "wal_append")

    def _actor_for(self, participant: Participant) -> ParticipantActor:
        actor = self._participant_actors.get(participant.participant_id)
        if actor is None:
            actor = ParticipantActor(self, participant)
            self._participant_actors[participant.participant_id] = actor
        else:
            actor.bind(participant)
        return actor

    # ------------------------------------------------------------------
    # Driver entry point
    # ------------------------------------------------------------------
    def run(self, rounds: Sequence[RoundInput]) -> RuntimeReport:
        """Drive every round to a terminal state and report.

        Aborted rounds are *recorded* (with the error type the lockstep
        driver would have raised) and the runtime moves on — sustained
        traffic does not stop because one block failed.  Non-protocol
        exceptions (notably a simulated crash from the durability
        harness) propagate to the caller's supervisor, exactly as a
        process death would.
        """
        self._states = [
            _RoundState(index, round_input)
            for index, round_input in enumerate(rounds)
        ]
        if self._states:
            self._open_seal(self._states[0])
        if self._publisher is not None and self._states:
            self.scheduler.call_later(
                self.telemetry_interval, self._telemetry_tick
            )
        self.scheduler.run()
        if self._publisher is not None:
            # One closing frame carries everything since the last tick,
            # then a drain pass delivers it before the report freezes.
            self._publisher.publish(self.transport)
            self.scheduler.run()
        for state in self._states:
            if not state.terminal:  # pragma: no cover - progress invariant
                raise ReproError(
                    f"runtime stalled: round {state.index} ended in "
                    f"status {state.status!r} with an idle scheduler"
                )
        transport = self.transport
        if self.obs.enabled:
            self.obs.registry.set(
                "runtime_virtual_seconds", self.scheduler.now
            )
        if self.profiler is not None:
            self.profiler.flush(self.obs.registry, self.scheduler.now)
        return RuntimeReport(
            rounds=[state.record for state in self._states],
            virtual_time=self.scheduler.now,
            overlap_rounds=sum(
                1 for state in self._states if state.record.overlapped
            ),
            messages_sent=transport.sent,
            messages_delivered=transport.delivered,
            messages_dropped=transport.dropped,
            messages_censored=transport.censored,
            backpressure_deferrals=transport.deferred,
        )

    def _telemetry_tick(self) -> None:
        """Publish one snapshot-diff frame and reschedule while rounds run.

        Opting into periodic telemetry *does* occupy schedule slots (and
        their tie-break draws) — that is the documented cost of the
        feature; leaving ``telemetry_interval`` unset keeps the schedule
        byte-identical to a runtime without the plane.
        """
        self._publisher.publish(self.transport)
        if any(not state.terminal for state in self._states):
            self.scheduler.call_later(
                self.telemetry_interval, self._telemetry_tick
            )

    # ------------------------------------------------------------------
    # Phase 1: seal + gossip settle
    # ------------------------------------------------------------------
    def _open_seal(self, state: _RoundState) -> None:
        previous = self._states[state.index - 1] if state.index else None
        state.record.seal_opened_at = self.scheduler.now
        state.record.overlapped = previous is not None and not previous.terminal
        state.status = "sealing"
        if self.obs.enabled:
            self.obs.registry.inc("runtime_rounds_total")
            if state.record.overlapped:
                self.obs.registry.inc("runtime_pipeline_overlaps_total")
            self.obs.tracer.event(
                "runtime.seal_open",
                round=state.index,
                overlapped=state.record.overlapped,
            )
        rotation = leader_rotation(self.miners, self.start_round + state.index)
        self._journal_phase(
            state.index, "seal", leader=rotation[0].miner_id
        )
        # Sealing is local and order-sensitive (temp-key material derives
        # from each participant's seal counter), so every entry seals NOW,
        # in input order — identical to the lockstep engine's sequential
        # submit calls.  Only the *gossip* of the sealed bid rides the
        # schedule, at its arrival offset.
        offsets = state.input.offsets or (0.0,) * len(state.entries)
        for entry in state.entries:
            self._seal_entry(entry)
        for entry, offset in zip(state.entries, offsets):
            self.scheduler.call_later(
                offset, lambda e=entry: self._gossip_bid(state, e)
            )
        if not state.entries:
            state.status = "sealed"
            self._maybe_mine()

    def _seal_entry(self, entry: _Entry) -> None:
        with self.obs.tracer.span(
            "seal", participant=entry.participant.participant_id
        ):
            entry.tx = entry.participant.seal(entry.bid)
            if self.registry is not None:
                self.registry.check_or_register(
                    entry.tx.sender_id, entry.tx.sender_public
                )
        entry.txid = entry.tx.txid()
        entry.sequence = self._sequence
        self._sequence += 1
        self._entry_by_txid[entry.txid] = entry
        self._actor_for(entry.participant)
        if self.obs.enabled:
            self.obs.registry.inc("protocol_seals_total")

    def _gossip_bid(self, state: _RoundState, entry: _Entry) -> None:
        entry.attempts += 1
        # Fault keys are content-addressed (global round + txid), never
        # positional: a crash-recovery continuation re-broadcasts from a
        # different stream position and local sequence base, and must
        # draw the exact fates the original run drew.
        self.transport.broadcast(
            messages.TOPIC_BIDS,
            messages.BidSubmission(
                transaction=entry.tx,
                trace=self.obs.tracer.child_context(
                    actor=entry.participant.participant_id
                ),
                sequence=entry.sequence,
            ),
            sender=entry.participant.participant_id,
            key=(
                f"bid-{self.start_round + state.index}-"
                f"{entry.txid[:16]}-a{entry.attempts}"
            ),
        )
        self.scheduler.call_later(
            self.costs.submit_check,
            lambda: self._check_submission(state, entry),
        )

    def _admitted_everywhere(self, txid: str) -> bool:
        live = self._live_miners()
        return bool(live) and all(txid in m.mempool for m in live)

    def note_admission(self, _miner_id: str, txid: str) -> None:
        """Actor callback: early-settle a submission once fully admitted."""
        entry = self._entry_by_txid.get(txid)
        if entry is None or entry.settled:
            return
        if self._admitted_everywhere(txid):
            self._settle_submission(entry)

    def _check_submission(self, state: _RoundState, entry: _Entry) -> None:
        if entry.settled:
            return
        if self._admitted_everywhere(entry.txid):
            self._settle_submission(entry)
            return
        if entry.attempts <= self.submit_retries:
            if self.obs.enabled:
                self.obs.registry.inc("runtime_submit_retries_total")
            self._gossip_bid(state, entry)
            return
        # Retry budget exhausted: give up; the bid simply never reached
        # some mempool (it can resubmit in a later round).
        self._settle_submission(entry)

    def _settle_submission(self, entry: _Entry) -> None:
        entry.settled = True
        state = entry.state
        state.outstanding -= 1
        if state.outstanding == 0 and state.status == "sealing":
            state.status = "sealed"
            self._maybe_mine()

    # ------------------------------------------------------------------
    # Mining (serialized on the chain's parent-hash dependency)
    # ------------------------------------------------------------------
    def _maybe_mine(self) -> None:
        for state in self._states:
            if state.terminal:
                continue
            if state.status == "sealed":
                self._start_mining(state)
            return

    def _start_mining(self, state: _RoundState) -> None:
        live = self._live_miners()
        if len(live) < self.quorum:
            self._abort(state, "QuorumError")
            return
        rotation = leader_rotation(self.miners, self.start_round + state.index)
        leader = next(
            m for m in rotation if not self.transport.is_down(m.miner_id)
        )
        state.leader = leader
        state.status = "mining"
        if self.profiler is not None:
            # Everything between seal-open and here — submission
            # settling, retries, waiting behind the serialized miner —
            # is the round's seal-wait stall.
            self.profiler.add(
                state.index, "seal_wait",
                self.scheduler.now - state.record.seal_opened_at,
            )
        self._journal_phase(state.index, "mine", leader=leader.miner_id)
        obs = self.obs
        with obs.tracer.span(
            "mine", leader=leader.miner_id, round=state.index
        ):
            # Compose from this round's own sealed txids only.  The
            # leader's mempool can hold neighbours — a recovered store
            # replaying round N while round N+1's pre-crash admissions
            # survive in it — and those belong to *their* preamble.
            preamble = self._miner_actors[leader.miner_id].compose_preamble(
                allowed=frozenset(
                    entry.txid for entry in state.entries
                ),
                sequence_hint={
                    entry.txid: entry.sequence for entry in state.entries
                },
            )
        state.preamble = preamble
        state.phash = preamble.hash()
        self._state_by_phash[state.phash] = state
        if obs.enabled:
            obs.registry.inc("ledger_blocks_mined_total")
            obs.registry.inc(
                "ledger_pow_iterations_total", preamble.pow_nonce + 1
            )
            obs.registry.observe(
                "ledger_block_txs", len(preamble.transactions)
            )
        # The transaction selection is frozen: everything round N+1
        # gossips from here on lands in *its* preamble, not this one —
        # which is what makes opening the next seal now safe.
        if self.pipeline:
            self._open_next_seal(state.index)
        if self.profiler is not None:
            self.profiler.add(state.index, "mine", self.costs.mine)
        self.scheduler.call_later(
            self.costs.mine, lambda: self._announce(state)
        )

    def _open_next_seal(self, index: int) -> None:
        if index + 1 < len(self._states):
            nxt = self._states[index + 1]
            if nxt.status == "pending":
                self._open_seal(nxt)

    def _announce(self, state: _RoundState) -> None:
        leader = state.leader
        preamble = state.preamble
        leader.accept_preamble(preamble)  # local knowledge, no gossip needed
        state.status = "revealing"
        self._journal_phase(state.index, "preamble", hash=state.phash)
        self._journal_phase(state.index, "reveal")
        self.transport.broadcast(
            messages.TOPIC_PREAMBLE,
            messages.PreambleAnnouncement(
                preamble=preamble,
                miner_id=leader.miner_id,
                trace=self.obs.tracer.child_context(actor=leader.miner_id),
            ),
            sender=leader.miner_id,
            key=f"pre-{self.start_round + state.index}",
        )
        state.deadline_handle = self.scheduler.call_later(
            self.costs.reveal_deadline,
            lambda: self._reveal_deadline(state, attempt=0),
        )
        self._check_reveal_complete(state)

    # ------------------------------------------------------------------
    # Phase 2: reveal collection with deadline, retry, and backoff
    # ------------------------------------------------------------------
    def note_reveal(self, miner_id: str, preamble_hash: str) -> None:
        """Actor callback: a reveal (or preamble) landed at ``miner_id``."""
        state = self._state_by_phash.get(preamble_hash)
        if (
            state is not None
            and state.leader is not None
            and state.leader.miner_id == miner_id
        ):
            self._check_reveal_complete(state)

    def note_bad_pow(self, miner_id: str, preamble: BlockPreamble) -> None:
        """Actor callback: a peer rejected an announced preamble's PoW."""
        state = self._state_by_phash.get(preamble.hash())
        if state is not None and not state.terminal:
            if self.obs.enabled:
                self.obs.tracer.event(
                    "runtime.bad_pow", round=state.index, miner=miner_id
                )
            self._abort(state, "ProtocolError")

    def _missing_reveals(self, state: _RoundState) -> Set[str]:
        inbox = state.leader.reveal_inbox.get(state.phash, {})
        included = {tx.txid() for tx in state.preamble.transactions}
        return included - set(inbox)

    def _check_reveal_complete(self, state: _RoundState) -> None:
        if state.status != "revealing":
            return
        if not self._missing_reveals(state):
            self._begin_propose(state)

    def _reveal_deadline(self, state: _RoundState, attempt: int) -> None:
        if state.status != "revealing":
            return
        missing = self._missing_reveals(state)
        if not missing:
            self._begin_propose(state)
            return
        if attempt < self.max_reveal_retries:
            if self.obs.enabled:
                self.obs.tracer.event(
                    "reveal.retry", attempt=attempt + 1, missing=len(missing)
                )
                self.obs.registry.inc("runtime_reveal_retries_total")
            self.transport.broadcast(
                messages.TOPIC_REVEAL_REQUEST,
                messages.RevealRequest(
                    preamble=state.preamble,
                    txids=tuple(sorted(missing)),
                    miner_id=state.leader.miner_id,
                    attempt=attempt + 1,
                    trace=self.obs.tracer.child_context(
                        actor=state.leader.miner_id
                    ),
                ),
                sender=state.leader.miner_id,
                key=f"rvq-{self.start_round + state.index}-a{attempt + 1}",
            )
            state.deadline_handle = self.scheduler.call_later(
                self.costs.reveal_deadline
                * (self.reveal_backoff ** (attempt + 1)),
                lambda: self._reveal_deadline(state, attempt + 1),
            )
            return
        # Budget exhausted: proceed with the survivors (or abort inside
        # _begin_propose when literally nothing was revealed).
        self._begin_propose(state)

    # ------------------------------------------------------------------
    # Propose → verify → commit (quorum-driven, with leader fallback)
    # ------------------------------------------------------------------
    def _begin_propose(self, state: _RoundState) -> None:
        if state.status != "revealing":
            return
        state.status = "proposing"
        if state.deadline_handle is not None:
            self.scheduler.cancel(state.deadline_handle)
            state.deadline_handle = None
        preamble = state.preamble
        reveals = state.leader.collected_reveals(preamble)
        revealed = {r.txid for r in reveals}
        state.reveals = reveals
        state.excluded = tuple(
            tx.txid()
            for tx in preamble.transactions
            if tx.txid() not in revealed
        )
        obs = self.obs
        if obs.enabled:
            sender_of = {
                tx.txid(): tx.sender_id for tx in preamble.transactions
            }
            for txid in state.excluded:
                obs.tracer.event(
                    "reveal.excluded", txid=txid, sender=sender_of[txid]
                )
            obs.registry.inc(
                "runtime_excluded_bids_total", len(state.excluded)
            )
        if preamble.transactions and not reveals:
            if obs.enabled:
                obs.tracer.event(
                    "reveal.timeout",
                    sealed=len(preamble.transactions),
                    retries=self.max_reveal_retries,
                )
            self._abort(state, "RevealTimeoutError")
            return
        state.proposer_queue = [
            m
            for m in leader_rotation(
                self.miners, self.start_round + state.index
            )
            if not self.transport.is_down(m.miner_id)
        ]
        state.failed = []
        self._next_proposer(state)

    def _next_proposer(self, state: _RoundState) -> None:
        if not state.proposer_queue:
            self._abort(state, "ByzantineFaultError")
            return
        proposer = state.proposer_queue.pop(0)
        if state.failed and self.obs.enabled:
            self.obs.tracer.event(
                "round.fallback", proposer=proposer.miner_id
            )
        self._journal_phase(
            state.index, "propose", proposer=proposer.miner_id
        )
        with self.obs.tracer.span(
            "propose", proposer=proposer.miner_id, round=state.index
        ):
            try:
                body = proposer.build_body(state.preamble, state.reveals)
            except ReproError as exc:
                self._abort(state, type(exc).__name__)
                return
            block = Block(preamble=state.preamble, body=body)
            self.transport.broadcast(
                messages.TOPIC_BLOCK,
                messages.BlockProposal(
                    block=block,
                    miner_id=proposer.miner_id,
                    trace=self.obs.tracer.child_context(
                        actor=proposer.miner_id
                    ),
                ),
                sender=proposer.miner_id,
                key=(
                    f"blk-{self.start_round + state.index}-"
                    f"{proposer.miner_id}"
                ),
            )
        if self.profiler is not None:
            self.profiler.add(state.index, "propose", self.costs.propose)
        self.scheduler.call_later(
            self.costs.propose,
            lambda: self._verify(state, proposer, block),
        )

    def _verify(self, state: _RoundState, proposer: Miner, block: Block) -> None:
        self._journal_phase(state.index, "verify")
        approving: List[Miner] = []
        with self.obs.tracer.span("verify", round=state.index):
            for miner in self._live_miners():
                try:
                    miner.verify_block(block)
                except ReproError:
                    continue
                approving.append(miner)
        if len(approving) < self.quorum:
            state.failed.append(proposer.miner_id)
            if self.obs.enabled:
                self.obs.tracer.event(
                    "proposal.rejected",
                    proposer=proposer.miner_id,
                    approvals=len(approving),
                    quorum=self.quorum,
                )
            if self.profiler is not None:
                self.profiler.add(
                    state.index, "verify_quorum", self.costs.verify
                )
            self.scheduler.call_later(
                self.costs.verify, lambda: self._next_proposer(state)
            )
            return
        if self.profiler is not None:
            self.profiler.add(state.index, "verify_quorum", self.costs.verify)
            self.profiler.add(state.index, "commit", self.costs.commit)
        self.scheduler.call_later(
            self.costs.verify + self.costs.commit,
            lambda: self._commit(state, proposer, block, approving),
        )

    def _commit(
        self,
        state: _RoundState,
        proposer: Miner,
        block: Block,
        approving: List[Miner],
    ) -> None:
        self._journal_phase(state.index, "commit")
        with self.obs.tracer.span("commit", round=state.index):
            for miner in approving:
                miner.commit_block(block)
        self._journal_phase(state.index, "committed", hash=block.hash())
        allocator = proposer.allocate
        outcome = (
            allocator.last_outcome
            if isinstance(allocator, DecloudAllocator)
            and allocator.last_outcome is not None
            else AuctionOutcome()
        )
        obs = self.obs
        if obs.enabled:
            obs.registry.inc("runtime_rounds_committed_total")
            obs.tracer.event(
                "round.committed",
                round=state.index,
                height=block.preamble.height,
                approvals=len(approving),
                excluded=len(state.excluded),
            )
        obs.check_outcome(
            outcome, source="runtime", round_index=state.index
        )
        result = RoundResult(
            block=block,
            outcome=outcome,
            accepted_by=[m.miner_id for m in approving],
            excluded_txids=state.excluded,
            failed_proposers=tuple(state.failed),
        )
        state.record.result = result
        state.record.finished_at = self.scheduler.now
        state.status = "done"
        if self.on_commit is not None:
            self.on_commit(state.index, result)
        self._after_terminal(state)

    def _abort(self, state: _RoundState, reason: str) -> None:
        if state.terminal:
            return
        self._journal_phase(state.index, "aborted", error=reason)
        if self.obs.enabled:
            self.obs.tracer.event(
                "round.aborted", round=state.index, error=reason
            )
            self.obs.registry.inc(
                "runtime_rounds_aborted_total", reason=reason
            )
        if state.deadline_handle is not None:
            self.scheduler.cancel(state.deadline_handle)
            state.deadline_handle = None
        state.record.error = reason
        state.record.finished_at = self.scheduler.now
        state.status = "aborted"
        self._after_terminal(state)

    def _after_terminal(self, state: _RoundState) -> None:
        # Pipelined mode opened the next seal at composition time; the
        # non-pipelined baseline (and any round that died before
        # composing) opens it here, strictly after the round finished.
        self._open_next_seal(state.index)
        self._maybe_mine()
