"""Real-socket transport for runtime demos (asyncio TCP, localhost).

The deterministic transport is the contract; this module shows the same
actor surface (``subscribe_node`` / ``broadcast``) riding a genuinely
asynchronous medium: a hub server fans every frame out to all connected
clients over TCP, and each client dispatches frames to its node-scoped
handlers.  Frames are length-prefixed pickles of ``(topic, payload,
sender)`` — fine for trusted in-process demos carrying the repo's own
protocol dataclasses, and explicitly **not** a wire format for
untrusted peers (pickle executes arbitrary code; a real deployment
would swap in a schema'd codec behind the same two methods).

No protocol logic lives here; determinism claims never apply to this
transport (the OS scheduler orders deliveries).  See
``docs/RUNTIME.md`` for where it fits.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

Handler = Callable[[str, Any], None]

_HEADER = struct.Struct("!I")
_MAX_FRAME = 64 * 1024 * 1024


def _encode(topic: str, payload: Any, sender: str) -> bytes:
    body = pickle.dumps((topic, payload, sender))
    return _HEADER.pack(len(body)) + body


async def _read_frame(reader: asyncio.StreamReader) -> Tuple[str, Any, str]:
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise ValueError(f"frame of {length} bytes exceeds the demo cap")
    return pickle.loads(await reader.readexactly(length))


class AsyncioBroadcastHub:
    """Central fan-out server: every frame goes to every connected client."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: List[asyncio.StreamWriter] = []
        self.frames = 0

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.append(writer)
        try:
            while True:
                header = await reader.readexactly(_HEADER.size)
                (length,) = _HEADER.unpack(header)
                if length > _MAX_FRAME:
                    break
                body = await reader.readexactly(length)
                self.frames += 1
                frame = _HEADER.pack(length) + body
                for peer in list(self._writers):
                    peer.write(frame)
                await asyncio.gather(
                    *(peer.drain() for peer in list(self._writers)),
                    return_exceptions=True,
                )
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            if writer in self._writers:
                self._writers.remove(writer)
            writer.close()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()


class AsyncioSocketTransport:
    """Client-side transport: the actor surface over one hub connection.

    Every client receives every frame (the hub is a broadcast medium,
    like the gossip overlay it stands in for); node-scoped subscription
    filters locally, mirroring ``DeterministicTransport``.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._subscribers: Dict[Tuple[str, str], List[Handler]] = {}
        self._nodes: List[str] = []
        self.delivered = 0

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    def subscribe_node(self, node_id: str, topic: str, handler: Handler) -> None:
        if node_id not in self._nodes:
            self._nodes.append(node_id)
        self._subscribers.setdefault((node_id, topic), []).append(handler)

    async def broadcast(self, topic: str, payload: Any, sender: str = "") -> None:
        assert self._writer is not None, "connect() first"
        self._writer.write(_encode(topic, payload, sender))
        await self._writer.drain()

    async def pump(self, frames: int) -> int:
        """Receive and dispatch ``frames`` frames (demo-sized drain loop)."""
        assert self._reader is not None, "connect() first"
        handled = 0
        for _ in range(frames):
            topic, payload, sender = await _read_frame(self._reader)
            for node_id in self._nodes:
                for handler in self._subscribers.get((node_id, topic), ()):
                    handler(sender, payload)
            self.delivered += 1
            handled += 1
        return handled

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
