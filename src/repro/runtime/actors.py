"""Protocol actors: inbox-driven wrappers around miners and participants.

The lockstep :class:`~repro.protocol.exposure.ExposureProtocol` drives
every node from one synchronous loop.  Here each node is an *actor*: it
subscribes its node id to the protocol topics on the transport and
reacts to whatever lands in its inbox, in whatever order the seeded
scheduler delivers it.  The actors deliberately own **no** protocol
state machine — they wrap the very same :class:`~repro.ledger.miner.Miner`
and :class:`~repro.protocol.exposure.Participant` objects the lockstep
engine uses (Byzantine subclasses included), so the two engines can only
differ in *when* things happen, never in *what* a node does.

The one genuinely order-sensitive spot is preamble composition: a
lockstep mempool receives bids in submission order, but gossip permutes
arrivals.  :class:`MinerActor` therefore remembers the submission
``sequence`` stamped on every :class:`~repro.protocol.messages.BidSubmission`
and composes preambles in sequence order — restoring, by construction,
exactly the transaction order the lockstep engine sees.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.common.errors import ReproError
from repro.ledger import pow as pow_mod
from repro.ledger.block import BlockPreamble
from repro.ledger.miner import Miner
from repro.protocol import messages
from repro.protocol.exposure import Participant

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.reactor import Runtime


class MinerActor:
    """A miner node reacting to gossip on its own inbox."""

    def __init__(self, runtime: "Runtime", miner: Miner) -> None:
        self.runtime = runtime
        self.miner = miner
        #: submission sequence per admitted txid (first claim wins);
        #: preambles are composed in this order
        self.sequence_of: Dict[str, int] = {}
        transport = runtime.transport
        node = miner.miner_id
        transport.subscribe_node(node, messages.TOPIC_BIDS, self.on_bid)
        transport.subscribe_node(node, messages.TOPIC_PREAMBLE, self.on_preamble)
        transport.subscribe_node(node, messages.TOPIC_REVEALS, self.on_reveal)
        transport.subscribe_node(node, messages.TOPIC_BLOCK, self.on_block)

    # -- inbox handlers -------------------------------------------------
    def on_bid(self, _sender: str, payload: messages.BidSubmission) -> None:
        tx = payload.transaction
        txid = tx.txid()
        if payload.sequence is not None:
            self.sequence_of.setdefault(txid, payload.sequence)
        try:
            self.miner.accept_transaction(tx)
        except ReproError:
            # A malformed or forged submission is the sender's problem;
            # it must not crash the receiving node.
            return
        self.runtime.note_admission(self.miner.miner_id, txid)

    def on_preamble(
        self, _sender: str, payload: messages.PreambleAnnouncement
    ) -> None:
        preamble = payload.preamble
        if not preamble.check_pow(self.miner.chain.difficulty_bits):
            self.runtime.note_bad_pow(self.miner.miner_id, preamble)
            return
        self.miner.accept_preamble(preamble)
        self.runtime.note_reveal(self.miner.miner_id, preamble.hash())

    def on_reveal(self, _sender: str, payload: messages.RevealMessage) -> None:
        self.miner.accept_reveal(payload.preamble_hash, payload.reveal)
        self.runtime.note_reveal(self.miner.miner_id, payload.preamble_hash)

    def on_block(self, _sender: str, payload: messages.BlockProposal) -> None:
        # Verification and commit are quorum-driven by the runtime (as in
        # the lockstep engine); the gossiped proposal itself needs no
        # reaction here.
        pass

    # -- composition ----------------------------------------------------
    def compose_preamble(
        self,
        allowed: Optional[AbstractSet[str]] = None,
        sequence_hint: Optional[Mapping[str, int]] = None,
    ) -> BlockPreamble:
        """Freeze this miner's next preamble in submission-sequence order.

        Mirrors :meth:`Miner.build_preamble` field for field, but orders
        the mempool snapshot by stamped submission sequence instead of
        local arrival order — gossip permutation must not leak into the
        preamble (its hash is the auction's randomization evidence).
        Transactions lacking a sequence (legacy senders) sort last, by
        txid for determinism.  ``allowed`` restricts the snapshot to one
        round's own sealed txids: a crash-recovered mempool may hold a
        pipelined neighbour round's admissions, which must land in that
        round's preamble, not this one's.  ``sequence_hint`` overrides
        the gossip-learned stamps: a recovered mempool can already hold
        a transaction everywhere, letting the round become minable
        before this miner's copy of the (redundant) gossip arrives — the
        runtime then supplies the authoritative submission order so the
        preamble stays schedule-invariant.
        """
        miner = self.miner
        pending = [
            tx
            for tx in miner.mempool.peek(len(miner.mempool))
            if allowed is None or tx.txid() in allowed
        ]
        stamps: Mapping[str, int] = (
            {**self.sequence_of, **sequence_hint}
            if sequence_hint
            else self.sequence_of
        )
        pending.sort(
            key=lambda tx: (
                stamps.get(tx.txid(), float("inf")),
                tx.txid(),
            )
        )
        txs = tuple(pending[: miner.max_block_txs])
        preamble = BlockPreamble(
            height=miner.chain.next_height,
            parent_hash=miner.chain.tip_hash,
            transactions=txs,
            timestamp=float(miner.chain.next_height),
        )
        nonce = pow_mod.solve(preamble.pow_payload(), miner.difficulty_bits)
        return preamble.with_nonce(nonce)


class ParticipantActor:
    """A bidder (client or provider) reacting to preambles and re-requests.

    One actor exists per participant *id*; durable scenarios rebuild
    participant objects per round under the same id, so the actor keeps
    every bound object and lets each answer for its own (disjoint)
    pending reveals — idempotent by construction.
    """

    def __init__(self, runtime: "Runtime", participant: Participant) -> None:
        self.runtime = runtime
        self.node_id = participant.participant_id
        self.participants: List[Participant] = [participant]
        transport = runtime.transport
        transport.subscribe_node(
            self.node_id, messages.TOPIC_PREAMBLE, self.on_preamble
        )
        transport.subscribe_node(
            self.node_id, messages.TOPIC_REVEAL_REQUEST, self.on_reveal_request
        )

    def bind(self, participant: Participant) -> None:
        if participant not in self.participants:
            self.participants.append(participant)

    def _send_reveals(
        self, preamble: BlockPreamble, reveals, attempt: int
    ) -> None:
        phash = preamble.hash()
        runtime = self.runtime
        for reveal in reveals:
            runtime.transport.broadcast(
                messages.TOPIC_REVEALS,
                messages.RevealMessage(
                    reveal=reveal,
                    preamble_hash=phash,
                    trace=runtime.obs.tracer.child_context(actor=self.node_id),
                ),
                sender=self.node_id,
                key=f"rv{attempt}-{phash[:16]}-{reveal.txid[:16]}",
            )

    def on_preamble(
        self, _sender: str, payload: messages.PreambleAnnouncement
    ) -> None:
        for participant in self.participants:
            reveals = participant.reveals_for(payload.preamble)
            if reveals:
                self._send_reveals(payload.preamble, reveals, attempt=0)

    def on_reveal_request(
        self, _sender: str, payload: messages.RevealRequest
    ) -> None:
        for participant in self.participants:
            reveals = participant.re_reveal(payload.preamble, payload.txids)
            if reveals:
                self._send_reveals(
                    payload.preamble, reveals, attempt=payload.attempt
                )
