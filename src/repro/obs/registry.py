"""Labeled metrics registry: counters, gauges, histograms.

A :class:`MetricsRegistry` is the single sink every instrumented layer
writes into — the auction, the exposure protocol, the ledger paths, the
settlement processor, and the simulators.  Series are identified by a
metric name plus a sorted label set, so the same registry can hold, say,
``auction_last_welfare{mechanism=decloud}`` next to
``auction_last_welfare{mechanism=benchmark}`` and the evaluation reads
both back without recomputing anything from outcomes.

Only the standard library is used, and the whole module is value-only:
nothing here ever feeds back into the mechanism, so instrumentation can
never perturb auction outcomes (the differential suite runs with a live
registry attached to enforce exactly that).

The disabled path is :data:`NULL_REGISTRY`, a shared no-op whose methods
return immediately — instrumented code pays (almost) nothing when nobody
is observing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: Histogram bucket upper bounds (seconds / prices / sizes all fit); the
#: final +Inf bucket is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
    100.0, 500.0, 1000.0,
)

LabelItems = Tuple[Tuple[str, str], ...]
SeriesKey = Tuple[str, LabelItems]


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def series_name(name: str, labels: LabelItems) -> str:
    """Render one series as ``name{k=v,...}`` (stable, diffable)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_series(series: str) -> Tuple[str, LabelItems]:
    """Invert :func:`series_name`: ``name{k=v,...}`` -> ``(name, items)``.

    Label keys and values never contain ``{``, ``}``, ``,`` or ``=`` in
    this codebase (they are identifiers, ids, and enum-ish strings), so
    no escaping is needed.  The telemetry aggregator uses this to re-key
    snapshot-diff frames back into structured series.
    """
    if "{" not in series:
        return series, ()
    name, _, rest = series.partition("{")
    inner = rest[:-1] if rest.endswith("}") else rest
    items = []
    for part in inner.split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        items.append((key, value))
    return name, tuple(sorted(items))


class _HistogramSeries:
    """Count / sum / min / max plus fixed cumulative buckets."""

    __slots__ = ("count", "sum", "min", "max", "bucket_counts", "bounds")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"count": self.count, "sum": self.sum}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out


class MetricsRegistry:
    """Counters, gauges, and histograms under one roof.

    * ``inc(name, value, **labels)`` — monotone counter (floats allowed:
      welfare and payment totals are counters too).
    * ``set(name, value, **labels)`` — gauge holding the last value; the
      per-round "last_*" series the evaluation reads are gauges, so their
      values are exact (no accumulated float error).
    * ``observe(name, value, **labels)`` — histogram sample.
    """

    enabled = True

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[SeriesKey, float] = {}
        self.gauges: Dict[SeriesKey, float] = {}
        self.histograms: Dict[SeriesKey, _HistogramSeries] = {}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        key = (name, _label_items(labels))
        self.counters[key] = self.counters.get(key, 0.0) + value

    def set(self, name: str, value: float, **labels: object) -> None:
        self.gauges[(name, _label_items(labels))] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        key = (name, _label_items(labels))
        series = self.histograms.get(key)
        if series is None:
            series = self.histograms[key] = _HistogramSeries()
        series.observe(value)

    def merge_histogram(
        self,
        name: str,
        labels: Mapping[str, object],
        count: int,
        total: float,
        minimum: float,
        maximum: float,
        bucket_counts: Sequence[int],
        bounds: Sequence[float],
    ) -> None:
        """Fold another registry's histogram series into this one.

        ``snapshot()``/``snapshot_diff`` drop bucket counts, so worker
        telemetry ships the structured internals instead and merges them
        here — the merged histogram is bucket-exact, as if every sample
        had been observed locally.  Bounds must match (every registry in
        the repo uses :data:`DEFAULT_BUCKETS`).
        """
        if not count:
            return
        key = (name, _label_items(labels))
        series = self.histograms.get(key)
        if series is None:
            series = self.histograms[key] = _HistogramSeries(tuple(bounds))
        if series.bounds != tuple(bounds):
            raise ValueError(f"histogram bucket bounds mismatch for {name}")
        series.count += count
        series.sum += total
        if minimum < series.min:
            series.min = minimum
        if maximum > series.max:
            series.max = maximum
        for i, bucket in enumerate(bucket_counts):
            series.bucket_counts[i] += bucket

    def labeled(self, **labels: object) -> "LabeledRegistry":
        """A write view that stamps ``labels`` onto every series."""
        return LabeledRegistry(self, _label_items(labels))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> float:
        return self.counters.get((name, _label_items(labels)), 0.0)

    def gauge_value(
        self, name: str, default: float = 0.0, **labels: object
    ) -> float:
        return self.gauges.get((name, _label_items(labels)), default)

    def histogram_stats(self, name: str, **labels: object) -> Dict[str, object]:
        series = self.histograms.get((name, _label_items(labels)))
        return series.to_dict() if series is not None else {"count": 0, "sum": 0.0}

    def series(self) -> List[str]:
        """Every live series name, sorted (debugging/discovery aid)."""
        keys: Iterable[SeriesKey] = (
            list(self.counters) + list(self.gauges) + list(self.histograms)
        )
        return sorted(series_name(name, labels) for name, labels in keys)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict copy of every series (JSON-ready, diffable)."""
        return {
            "counters": {
                series_name(n, l): v for (n, l), v in sorted(self.counters.items())
            },
            "gauges": {
                series_name(n, l): v for (n, l), v in sorted(self.gauges.items())
            },
            "histograms": {
                series_name(n, l): h.to_dict()
                for (n, l), h in sorted(self.histograms.items())
            },
        }

    def to_prometheus_text(self) -> str:
        from repro.obs.export import to_prometheus_text

        return to_prometheus_text(self)


class LabeledRegistry:
    """Write-through view adding fixed labels to every call.

    The simulator hands the auction ``registry.labeled(mechanism=...)``
    so one shared registry separates the truthful mechanism's series from
    the benchmark's without the auction knowing which role it plays.
    """

    enabled = True

    __slots__ = ("_base", "_labels")

    def __init__(self, base: MetricsRegistry, labels: LabelItems) -> None:
        self._base = base
        self._labels = labels

    def _merge(self, labels: Mapping[str, object]) -> Dict[str, object]:
        merged = dict(self._labels)
        merged.update({k: str(v) for k, v in labels.items()})
        return merged

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        self._base.inc(name, value, **self._merge(labels))

    def set(self, name: str, value: float, **labels: object) -> None:
        self._base.set(name, value, **self._merge(labels))

    def observe(self, name: str, value: float, **labels: object) -> None:
        self._base.observe(name, value, **self._merge(labels))

    def merge_histogram(
        self,
        name: str,
        labels: Mapping[str, object],
        count: int,
        total: float,
        minimum: float,
        maximum: float,
        bucket_counts: Sequence[int],
        bounds: Sequence[float],
    ) -> None:
        self._base.merge_histogram(
            name, self._merge(labels), count, total, minimum, maximum,
            bucket_counts, bounds,
        )

    def labeled(self, **labels: object) -> "LabeledRegistry":
        return LabeledRegistry(self._base, _label_items(self._merge(labels)))

    def counter_value(self, name: str, **labels: object) -> float:
        return self._base.counter_value(name, **self._merge(labels))

    def gauge_value(
        self, name: str, default: float = 0.0, **labels: object
    ) -> float:
        return self._base.gauge_value(name, default, **self._merge(labels))


class NullRegistry:
    """Inert registry: the off-by-default-cheap path."""

    enabled = False

    __slots__ = ()

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        return None

    def set(self, name: str, value: float, **labels: object) -> None:
        return None

    def observe(self, name: str, value: float, **labels: object) -> None:
        return None

    def merge_histogram(self, *args: object, **kwargs: object) -> None:
        return None

    def labeled(self, **labels: object) -> "NullRegistry":
        return self

    def counter_value(self, name: str, **labels: object) -> float:
        return 0.0

    def gauge_value(
        self, name: str, default: float = 0.0, **labels: object
    ) -> float:
        return default

    def histogram_stats(self, name: str, **labels: object) -> Dict[str, object]:
        return {"count": 0, "sum": 0.0}

    def series(self) -> List[str]:
        return []

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_prometheus_text(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()


def snapshot_diff(
    before: Mapping[str, Mapping[str, object]],
    after: Mapping[str, Mapping[str, object]],
) -> Dict[str, Dict[str, object]]:
    """What changed between two :meth:`MetricsRegistry.snapshot` calls.

    Counters diff numerically; gauges report their new value whenever it
    changed (a gauge is a statement of current state, not a delta);
    histograms diff their counts and sums.  Series absent from ``before``
    count from zero, so diffing against an early snapshot is exact for
    fresh series.
    """
    out: Dict[str, Dict[str, object]] = {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }
    for key, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(key, 0.0)
        if delta != 0.0:
            out["counters"][key] = delta
    before_gauges = before.get("gauges", {})
    for key, value in after.get("gauges", {}).items():
        if key not in before_gauges or before_gauges[key] != value:
            out["gauges"][key] = value
    for key, hist in after.get("histograms", {}).items():
        prev: Mapping[str, object] = before.get("histograms", {}).get(
            key, {"count": 0, "sum": 0.0}
        )
        count_delta = hist["count"] - prev.get("count", 0)
        if count_delta:
            out["histograms"][key] = {
                "count": count_delta,
                "sum": hist["sum"] - prev.get("sum", 0.0),
            }
    return out
