"""Exporters: Prometheus text format and JSONL trace files.

The registry and tracer own their in-memory state; this module renders
it for the outside world — a scrape endpoint, a workflow artifact, or
the ``repro.obs.report`` CLI.  Everything is plain text and standard
library only.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Mapping

from repro.obs.registry import MetricsRegistry, snapshot_diff  # noqa: F401

_LABEL_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def _prom_series(key: str) -> str:
    """``name{a=b}`` -> ``name{a="b"}`` (Prometheus quoting)."""
    match = _LABEL_RE.match(key)
    if match is None or not match.group("labels"):
        return key
    pairs = []
    for token in match.group("labels").split(","):
        label, _, value = token.partition("=")
        pairs.append(f'{label}="{value}"')
    return f"{match.group('name')}{{{', '.join(pairs)}}}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus exposition text format.

    Counters and gauges emit one sample per series; histograms emit the
    conventional ``_count`` / ``_sum`` pair (bucket detail stays in the
    JSON snapshot — the simulator's consumers read exact values, not
    quantile estimates).
    """
    snapshot = registry.snapshot()
    lines = []
    for key, value in snapshot["counters"].items():
        lines.append(f"{_prom_series(key)} {value!r}")
    for key, value in snapshot["gauges"].items():
        lines.append(f"{_prom_series(key)} {value!r}")
    for key, stats in snapshot["histograms"].items():
        match = _LABEL_RE.match(key)
        name = match.group("name") if match else key
        labels = f"{{{match.group('labels')}}}" if match and match.group("labels") else ""
        lines.append(f"{_prom_series(name + '_count' + labels)} {stats['count']}")
        lines.append(f"{_prom_series(name + '_sum' + labels)} {stats['sum']!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus_text(registry))


def format_snapshot_diff(diff: Mapping[str, Mapping[str, Any]]) -> str:
    """Human-readable rendering of a :func:`snapshot_diff` result."""
    lines = []
    for kind in ("counters", "gauges", "histograms"):
        for key, value in diff.get(kind, {}).items():
            if kind == "histograms":
                value = f"+{value['count']} obs (sum {value['sum']:+g})"
            elif kind == "counters":
                value = f"{value:+g}"
            else:
                value = f"-> {value:g}"
            lines.append(f"  {key}  {value}")
    return "\n".join(lines) if lines else "  (no changes)"
