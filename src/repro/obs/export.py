"""Exporters: Prometheus text format and JSONL trace files.

The registry and tracer own their in-memory state; this module renders
it for the outside world — a scrape endpoint, a workflow artifact, or
the ``repro.obs.report`` CLI.  Everything is plain text and standard
library only.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.registry import (  # noqa: F401
    LabelItems,
    MetricsRegistry,
    snapshot_diff,
)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash, double quote, and line feed are the three characters the
    format requires escaping inside quoted label values; order matters
    (backslash first, or the other escapes get double-escaped).
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_series(name: str, labels: LabelItems) -> str:
    """One series in exposition syntax: ``name{a="b", c="d"}``."""
    if not labels:
        return name
    pairs = ", ".join(
        f'{label}="{_escape_label_value(value)}"' for label, value in labels
    )
    return f"{name}{{{pairs}}}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus exposition text format.

    Counters and gauges emit one sample per series; histograms emit the
    conventional ``_count`` / ``_sum`` pair (bucket detail stays in the
    JSON snapshot — the simulator's consumers read exact values, not
    quantile estimates).  Label values are escaped per the exposition
    format (``\\`` -> ``\\\\``, ``"`` -> ``\\"``, newline -> ``\\n``), so
    hostile participant ids cannot corrupt the scrape — the registry's
    structured ``(name, labels)`` keys are rendered directly, never
    re-parsed from their flattened snapshot form.
    """
    base = registry
    while hasattr(base, "_base"):
        base = base._base
    lines = []
    # getattr defaults keep NullRegistry (no series storage) rendering
    # as the empty exposition, matching its own to_prometheus_text.
    for (name, labels), value in sorted(getattr(base, "counters", {}).items()):
        lines.append(f"{_prom_series(name, labels)} {value!r}")
    for (name, labels), value in sorted(getattr(base, "gauges", {}).items()):
        lines.append(f"{_prom_series(name, labels)} {value!r}")
    for (name, labels), series in sorted(
        getattr(base, "histograms", {}).items()
    ):
        lines.append(
            f"{_prom_series(name + '_count', labels)} {series.count}"
        )
        lines.append(f"{_prom_series(name + '_sum', labels)} {series.sum!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus_text(registry))


def format_snapshot_diff(diff: Mapping[str, Mapping[str, Any]]) -> str:
    """Human-readable rendering of a :func:`snapshot_diff` result."""
    lines = []
    for kind in ("counters", "gauges", "histograms"):
        for key, value in diff.get(kind, {}).items():
            if kind == "histograms":
                value = f"+{value['count']} obs (sum {value['sum']:+g})"
            elif kind == "counters":
                value = f"{value:+g}"
            else:
                value = f"-> {value:g}"
            lines.append(f"  {key}  {value}")
    return "\n".join(lines) if lines else "  (no changes)"
