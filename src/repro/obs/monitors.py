"""Runtime mechanism monitors: §IV guarantees checked on every block.

Offline property tests prove the mechanism's economic guarantees on
sampled markets; these monitors check the *same* invariants continuously
at runtime, on every outcome the system actually clears — the difference
between "the mechanism is correct" and "this deployment is behaving".
A violation means either a mechanism bug or a tampered settlement layer,
so each one is emitted as a structured alert event plus a counter, and
(in strict mode) escalated to
:class:`~repro.common.errors.MonitorViolationError`.

Monitor catalog (all enabled by default):

``budget_balance``
    Strong budget balance (Thm. 3): what clients pay equals, to exact
    zero, what providers receive.  Checked as exact float equality
    between the reported per-provider revenues and an identical
    regrouping of the match payments (same accumulation order, so clean
    outcomes compare bit-equal and any skim — even one ulp — shows up;
    naively comparing two *differently associated* float sums would
    flag legitimate outcomes on rounding alone).
``individual_rationality``
    Per-trader IR on the client side (Thm. 2): no client ever pays more
    than it bid.  Providers are checked for non-negative revenue; the
    paper's provider-side IR is defined in normalized (virtual-maximum)
    units, so the monetary provider check is deliberately one-sided.
``resource_conservation``
    Const. (7): replaying the block's matches through a fresh
    :class:`~repro.core.cluster_allocation.OfferCapacity` must never
    overdraw a machine's time-weighted capacity.
``trade_reduction``
    Structural sanity of the McAfee reduction: the matched, reduced, and
    unmatched id sets partition the bid population (no participant in
    two buckets), and reduced participants never trade.
``price_bounds``
    Every match trades at a non-negative, finite unit price drawn from
    the block's cleared price list, and every payment lies within
    ``[0, bid]``.

The suite is **read-only**: it never mutates the outcome, and its
checks consume no randomness, so canonical outcomes are identical with
monitors on or off (the property suite enforces this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import MonitorViolationError

__all__ = [
    "Violation",
    "MechanismMonitor",
    "BudgetBalanceMonitor",
    "IndividualRationalityMonitor",
    "ResourceConservationMonitor",
    "TradeReductionMonitor",
    "PriceBoundsMonitor",
    "MonitorSuite",
    "default_monitors",
    "violation_total",
]

#: slack for float comparisons that are *not* exact by construction
EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One violated invariant, ready to serialize into an alert event."""

    monitor: str
    message: str
    details: Mapping[str, Any] = field(default_factory=dict)


class MechanismMonitor:
    """Base class: one pluggable invariant check over a cleared outcome."""

    name = "base"

    def check(self, outcome: Any) -> List[Violation]:  # pragma: no cover
        raise NotImplementedError

    def _violation(self, message: str, **details: Any) -> Violation:
        return Violation(monitor=self.name, message=message, details=details)


class BudgetBalanceMonitor(MechanismMonitor):
    """Payments in == revenues out, to exact zero (strong BB, Thm. 3)."""

    name = "budget_balance"

    def check(self, outcome: Any) -> List[Violation]:
        # Regroup the match payments per provider exactly the way the
        # outcome does (same iteration order, same accumulation), so a
        # clean settlement compares bit-equal — no epsilon — while any
        # skim, even one ulp, produces a mismatch.
        expected: Dict[str, float] = {}
        for match in outcome.matches:
            offer_id = match.offer.offer_id
            expected[offer_id] = expected.get(offer_id, 0.0) + match.payment
        reported = dict(outcome.revenues())
        if reported == expected:
            return []
        tampered = sorted(
            offer_id
            for offer_id in set(expected) | set(reported)
            if expected.get(offer_id) != reported.get(offer_id)
        )
        surplus = math.fsum(expected.values()) - math.fsum(reported.values())
        return [
            self._violation(
                "auctioneer surplus is not exactly zero",
                offers=tampered,
                surplus=surplus,
            )
        ]


class IndividualRationalityMonitor(MechanismMonitor):
    """No client pays above its bid; no provider revenue is negative."""

    name = "individual_rationality"

    def check(self, outcome: Any) -> List[Violation]:
        out: List[Violation] = []
        for match in outcome.matches:
            bid = match.request.bid
            if match.payment > bid + EPS:
                out.append(
                    self._violation(
                        "client charged above its bid",
                        request=match.request.request_id,
                        payment=match.payment,
                        bid=bid,
                    )
                )
        for offer_id, revenue in outcome.revenues().items():
            if revenue < -EPS:
                out.append(
                    self._violation(
                        "provider revenue is negative",
                        offer=offer_id,
                        revenue=revenue,
                    )
                )
        return out


class ResourceConservationMonitor(MechanismMonitor):
    """Replay matches against fresh capacity: no machine overdrawn."""

    name = "resource_conservation"

    def check(self, outcome: Any) -> List[Violation]:
        # Imported lazily: repro.core pulls in repro.obs at import time,
        # so a module-level import here would be circular.
        from repro.core.cluster_allocation import OfferCapacity

        capacity = OfferCapacity([m.offer for m in outcome.matches])
        out: List[Violation] = []
        # outcome.matches preserves per-offer clearing order, so this
        # replays exactly the consumption sequence the mechanism ran.
        for match in outcome.matches:
            if not capacity.can_host(match.request, match.offer):
                out.append(
                    self._violation(
                        "offer capacity overdrawn (Const. 7)",
                        offer=match.offer.offer_id,
                        request=match.request.request_id,
                    )
                )
                continue
            capacity.consume(match.request, match.offer)
        return out


class TradeReductionMonitor(MechanismMonitor):
    """Matched / reduced / unmatched buckets must partition the bids."""

    name = "trade_reduction"

    def check(self, outcome: Any) -> List[Violation]:
        out: List[Violation] = []
        matched_r = {m.request.request_id for m in outcome.matches}
        reduced_r = {r.request_id for r in outcome.reduced_requests}
        unmatched_r = {r.request_id for r in outcome.unmatched_requests}
        for label, overlap in (
            ("matched∩reduced", matched_r & reduced_r),
            ("matched∩unmatched", matched_r & unmatched_r),
            ("reduced∩unmatched", reduced_r & unmatched_r),
        ):
            if overlap:
                out.append(
                    self._violation(
                        f"request buckets overlap ({label})",
                        ids=sorted(overlap),
                    )
                )
        matched_o = {m.offer.offer_id for m in outcome.matches}
        reduced_o = {o.offer_id for o in outcome.reduced_offers}
        unmatched_o = {o.offer_id for o in outcome.unmatched_offers}
        for label, overlap in (
            ("matched∩reduced", matched_o & reduced_o),
            ("matched∩unmatched", matched_o & unmatched_o),
            ("reduced∩unmatched", reduced_o & unmatched_o),
        ):
            if overlap:
                out.append(
                    self._violation(
                        f"offer buckets overlap ({label})",
                        ids=sorted(overlap),
                    )
                )
        return out


class PriceBoundsMonitor(MechanismMonitor):
    """Payments within [0, bid]; unit prices non-negative, finite, cleared."""

    name = "price_bounds"

    def check(self, outcome: Any) -> List[Violation]:
        out: List[Violation] = []
        cleared = set(outcome.prices)
        for match in outcome.matches:
            if not math.isfinite(match.payment) or match.payment < -EPS:
                out.append(
                    self._violation(
                        "payment outside [0, bid]",
                        request=match.request.request_id,
                        payment=match.payment,
                    )
                )
            if not math.isfinite(match.unit_price) or match.unit_price < 0.0:
                out.append(
                    self._violation(
                        "unit price negative or non-finite",
                        request=match.request.request_id,
                        unit_price=match.unit_price,
                    )
                )
            elif cleared and match.unit_price not in cleared:
                out.append(
                    self._violation(
                        "match trades at a price the block never cleared",
                        request=match.request.request_id,
                        unit_price=match.unit_price,
                    )
                )
        return out


def default_monitors() -> Tuple[MechanismMonitor, ...]:
    """The full catalog, in evaluation order."""
    return (
        BudgetBalanceMonitor(),
        IndividualRationalityMonitor(),
        ResourceConservationMonitor(),
        TradeReductionMonitor(),
        PriceBoundsMonitor(),
    )


class MonitorSuite:
    """Evaluates a set of monitors against every cleared outcome.

    ``strict=True`` escalates any violation to
    :class:`~repro.common.errors.MonitorViolationError` *after* the
    alert events and counters are emitted, so the evidence always lands
    before the process unwinds.
    """

    def __init__(
        self,
        monitors: Optional[Sequence[MechanismMonitor]] = None,
        strict: bool = False,
    ) -> None:
        self.monitors: Tuple[MechanismMonitor, ...] = (
            tuple(monitors) if monitors is not None else default_monitors()
        )
        self.strict = strict
        self.checks_run = 0
        self.violations_found = 0

    def check_outcome(self, outcome: Any) -> List[Violation]:
        """Run every monitor; returns (never raises on) the violations."""
        out: List[Violation] = []
        for monitor in self.monitors:
            self.checks_run += 1
            out.extend(monitor.check(outcome))
        self.violations_found += len(out)
        return out

    def escalate(self, violations: Sequence[Violation]) -> None:
        """Raise in strict mode once the violations have been emitted."""
        if self.strict and violations:
            summary = "; ".join(
                f"{v.monitor}: {v.message}" for v in violations
            )
            raise MonitorViolationError(
                f"{len(violations)} mechanism invariant violation(s): "
                f"{summary}",
                violations=violations,
            )


def violation_total(registry: Any) -> int:
    """Sum of ``monitor_violations_total`` across all label sets."""
    counters: Optional[Dict[Any, float]] = getattr(
        registry, "counters", None
    )
    if not counters:
        return 0
    return int(
        sum(
            value
            for (name, _labels), value in counters.items()
            if name == "monitor_violations_total"
        )
    )
