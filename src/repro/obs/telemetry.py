"""The distributed telemetry plane: worker capture, shipping, merging.

Everything the repo executes off the parent process — shard fan-out
(:mod:`repro.core.sharding`), pooled mini-auction waves
(:mod:`repro.core.parallel`) — used to run observably dark: worker code
had no ``Observability`` bundle, so its metrics were reconstructed
parent-side or simply lost.  This module closes that gap with three
pieces:

**Worker-side capture.**  :class:`capture_task` wraps one pool task in a
fresh worker-local :class:`~repro.obs.Observability` bundle.  On exit it
freezes the bundle into a picklable :class:`TelemetryPayload` — the
registry's structured series (histograms bucket-exact, which
``snapshot()`` cannot express), the trace records, the phase-timer
totals, and an ``ok``/``aborted`` status.  Exceptions are captured, not
raised: the payload ships home *even when the task failed*, tagged
``aborted``, and the parent re-raises after merging — no pooled code
path can go dark again.

**Deterministic parent merge.**  :func:`merge_payload` folds a payload
into the parent bundle under caller-supplied labels (``shard=zone:ab``,
``worker=mini``): counters add, gauges set, histograms merge
bucket-exact, the worker's trace is grafted under a ``worker`` span with
remapped span ids and seqs (:meth:`~repro.obs.trace.Tracer.merge_records`).
Payloads are produced by pure worker-local control flow and merged in
task-submission order (``pool.map`` preserves it; shard results arrive
in sorted-key order), so the merged trace is **byte-identical across
``shard_workers`` 0/1/N** once wall clocks are stripped — enforced by
``tests/property/test_obs_invariance.py``.

**Actor shipping.**  :class:`TelemetryPublisher` turns a live registry
into periodic :func:`~repro.obs.registry.snapshot_diff` frames;
:class:`TelemetryAggregator` is an actor that subscribes to the
``telemetry`` topic and merges frames from any number of nodes into one
fleet registry under ``node=...`` labels.  Both ride the plain
``subscribe_node``/``broadcast`` actor surface, so they work unchanged
over the :class:`~repro.runtime.transport.DeterministicTransport` *and*
the asyncio TCP hub (:mod:`repro.runtime.sockets`) — the metrics path
for the multi-process deployment of ROADMAP item 1.

Capture is opt-in via ``Observability(telemetry=True)``: bundles that
never opt in keep their historical traces byte-for-byte, and the
disabled path stays free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.common.timing import PhaseTimer
from repro.obs.registry import (
    LabeledRegistry,
    LabelItems,
    MetricsRegistry,
    parse_series,
    snapshot_diff,
)

#: ``(count, sum, min, max, bucket_counts, bounds)`` — the structured
#: internals of one :class:`~repro.obs.registry._HistogramSeries`.
HistogramParts = Tuple[int, float, float, float, Tuple[int, ...], Tuple[float, ...]]


@dataclass(frozen=True)
class TelemetryPayload:
    """One worker task's frozen observability delta (picklable).

    Series are sorted tuples keyed by ``(name, label_items)`` so the
    payload — and therefore the parent-side merge — is independent of
    registry insertion order.
    """

    source: str
    kind: str
    status: str  # "ok" | "aborted"
    counters: Tuple[Tuple[str, LabelItems, float], ...]
    gauges: Tuple[Tuple[str, LabelItems, float], ...]
    histograms: Tuple[Tuple[str, LabelItems, HistogramParts], ...]
    trace_records: Tuple[Dict[str, Any], ...]
    timer_totals: Tuple[Tuple[str, float], ...]
    timer_counts: Tuple[Tuple[str, int], ...]
    timer_aborted: Tuple[Tuple[str, int], ...]
    error: Optional[str] = None


def capture_payload(
    obs: Any,
    source: str,
    kind: str = "task",
    status: str = "ok",
    error: Optional[BaseException] = None,
) -> TelemetryPayload:
    """Freeze a worker bundle's registry/trace/timer into a payload."""
    registry = obs.registry
    while isinstance(registry, LabeledRegistry):
        registry = registry._base
    counters = tuple(
        sorted((name, items, value) for (name, items), value in registry.counters.items())
    )
    gauges = tuple(
        sorted((name, items, value) for (name, items), value in registry.gauges.items())
    )
    histograms = tuple(
        sorted(
            (
                name,
                items,
                (
                    series.count,
                    series.sum,
                    series.min,
                    series.max,
                    tuple(series.bucket_counts),
                    tuple(series.bounds),
                ),
            )
            for (name, items), series in registry.histograms.items()
        )
    )
    timer = obs.timer
    return TelemetryPayload(
        source=source,
        kind=kind,
        status=status,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        trace_records=tuple(dict(r) for r in obs.tracer.records),
        timer_totals=tuple(sorted(timer.totals.items())),
        timer_counts=tuple(sorted(timer.counts.items())),
        timer_aborted=tuple(sorted(timer.aborted.items())),
        error=repr(error) if error is not None else None,
    )


class capture_task:
    """Context manager running one worker task under a local bundle.

    Usage (inside the pool worker)::

        with capture_task("shard:zone:ab", "shard") as cap:
            cap.set_value(run_the_task(obs=cap.obs))
        return cap.value, cap.payload, cap.error

    The block's exception (if any) is *captured* — ``cap.error`` carries
    it, the payload is tagged ``aborted``, and the parent decides when
    to re-raise (after merging, so failed tasks still report).  Every
    exit records ``worker_tasks_total{kind=...,status=...}`` and a
    ``worker_task_seconds{kind=...}`` sample before freezing the payload.
    """

    __slots__ = ("source", "kind", "obs", "value", "error", "payload",
                 "_span", "_start")

    def __init__(self, source: str, kind: str) -> None:
        self.source = source
        self.kind = kind
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.payload: Optional[TelemetryPayload] = None

    def set_value(self, value: Any) -> None:
        self.value = value

    def __enter__(self) -> "capture_task":
        from repro.obs import Observability

        # Capture is one level deep: the worker bundle itself is live,
        # so nothing inside the task can go dark (in-worker mini waves
        # run in-process under it, and the non-nesting pool invariant
        # means no *pooled* path exists below a worker).  Leaving
        # telemetry off here keeps nested clears on their batched fast
        # paths, which is what holds the capture overhead within the
        # benchmarked <=10% bound.
        self.obs = Observability(run_id=f"worker-{self.source}")
        self._start = time.perf_counter()
        self._span = self.obs.tracer.span(
            "worker_task", source=self.source, kind=self.kind
        )
        self._span.__enter__()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self._span.__exit__(exc_type, exc, tb)
        if exc is not None:
            self.error = exc  # type: ignore[assignment]
        status = "ok" if exc is None else "aborted"
        registry = self.obs.registry
        registry.inc("worker_tasks_total", kind=self.kind, status=status)
        registry.observe(
            "worker_task_seconds",
            time.perf_counter() - self._start,
            kind=self.kind,
        )
        self.payload = capture_payload(
            self.obs, source=self.source, kind=self.kind,
            status=status, error=self.error,
        )
        return True  # the error ships home in the payload; parent re-raises


def merge_payload(obs: Any, payload: Optional[TelemetryPayload], **labels: object) -> None:
    """Fold one worker payload into the parent bundle, deterministically.

    ``labels`` (e.g. ``shard="zone:ab"``, ``worker="mini"``) are stamped
    on every merged metric series so fleet totals stay attributable per
    worker; they also land as attrs on the ``worker`` anchor span the
    worker's trace is grafted under.  Merging twice double-counts —
    callers merge each payload exactly once, in task-submission order.
    """
    if payload is None or not obs.enabled:
        return
    registry = obs.registry
    extra = {key: str(value) for key, value in labels.items()}
    for name, items, value in payload.counters:
        merged = dict(items)
        merged.update(extra)
        registry.inc(name, value, **merged)
    for name, items, value in payload.gauges:
        merged = dict(items)
        merged.update(extra)
        registry.set(name, value, **merged)
    for name, items, parts in payload.histograms:
        merged = dict(items)
        merged.update(extra)
        registry.merge_histogram(name, merged, *parts)
    if payload.timer_totals or payload.timer_aborted:
        worker_timer = PhaseTimer()
        worker_timer.totals = dict(payload.timer_totals)
        worker_timer.counts = dict(payload.timer_counts)
        worker_timer.aborted = dict(payload.timer_aborted)
        obs.timer.merge(worker_timer)
    with obs.tracer.span(
        "worker", source=payload.source, status=payload.status, **labels
    ):
        obs.tracer.merge_records(payload.trace_records)
        if payload.error:
            obs.tracer.event(
                "worker.aborted", source=payload.source, error=payload.error
            )


# ----------------------------------------------------------------------
# Actor shipping: snapshot-diff frames over a transport topic
# ----------------------------------------------------------------------
class TelemetryPublisher:
    """Periodic snapshot-diff frames from one node's registry.

    Each :meth:`make_frame` call diffs the registry against the last
    published snapshot, so frames carry only what changed — the natural
    unit for merging at an aggregator.  ``seq`` numbers frames per node
    for duplicate suppression on at-least-once transports.
    """

    __slots__ = ("obs", "node_id", "seq", "_last")

    def __init__(self, obs: Any, node_id: str) -> None:
        self.obs = obs
        self.node_id = node_id
        self.seq = 0
        self._last: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def _registry(self) -> MetricsRegistry:
        registry = self.obs.registry
        while isinstance(registry, LabeledRegistry):
            registry = registry._base
        return registry

    def make_frame(self) -> Any:
        """The next diff frame (works for sync and async transports)."""
        from repro.protocol.messages import TelemetryFrame

        snapshot = self._registry().snapshot()
        diff = snapshot_diff(self._last, snapshot)
        self._last = snapshot
        frame = TelemetryFrame(
            node_id=self.node_id, seq=self.seq, frame=diff
        )
        self.seq += 1
        return frame

    def publish(self, transport: Any, key: Optional[str] = None) -> Any:
        """Broadcast one frame on a synchronous transport; returns it."""
        from repro.protocol.messages import TOPIC_TELEMETRY

        frame = self.make_frame()
        transport.broadcast(
            TOPIC_TELEMETRY,
            frame,
            sender=self.node_id,
            key=key if key is not None else f"tele-{self.node_id}-{frame.seq}",
        )
        return frame


class TelemetryAggregator:
    """Actor merging per-node telemetry frames into one fleet registry.

    Subscribe it to any transport exposing ``subscribe_node`` — the
    deterministic in-process bus or the asyncio TCP hub — and every
    frame's series land in :attr:`registry` under an extra
    ``node=<sender>`` label.  Counter and histogram deltas add in any
    arrival order (they are commutative); gauges are last-writer-wins by
    frame ``seq`` so a late out-of-order frame cannot roll state back;
    exact duplicate frames (at-least-once delivery) are dropped and
    counted.  Histogram diffs carry only count/sum (snapshots have no
    buckets), so they merge as paired ``<name>_count``/``<name>_sum``
    counters.
    """

    __slots__ = ("node_id", "registry", "frames", "_seen", "_gauge_seq")

    def __init__(self, node_id: str = "telemetry-aggregator") -> None:
        self.node_id = node_id
        self.registry = MetricsRegistry()
        self.frames = 0
        self._seen: Dict[str, Set[int]] = {}
        self._gauge_seq: Dict[str, int] = {}

    def subscribe(self, transport: Any) -> None:
        """Attach to a transport's telemetry topic (both transports)."""
        from repro.protocol.messages import TOPIC_TELEMETRY

        transport.subscribe_node(self.node_id, TOPIC_TELEMETRY, self.on_frame)

    def on_frame(self, sender: str, frame: Any) -> None:
        """Handler: merge one ``TelemetryFrame`` (duck-typed)."""
        node = frame.node_id
        seen = self._seen.setdefault(node, set())
        if frame.seq in seen:
            self.registry.inc("telemetry_frames_duplicate_total", node=node)
            return
        seen.add(frame.seq)
        self.frames += 1
        registry = self.registry
        registry.inc("telemetry_frames_total", node=node)
        diff: Mapping[str, Mapping[str, Any]] = frame.frame
        for series, delta in diff.get("counters", {}).items():
            name, items = parse_series(series)
            merged = dict(items)
            merged["node"] = node
            registry.inc(name, delta, **merged)
        if frame.seq >= self._gauge_seq.get(node, -1):
            self._gauge_seq[node] = frame.seq
            for series, value in diff.get("gauges", {}).items():
                name, items = parse_series(series)
                merged = dict(items)
                merged["node"] = node
                registry.set(name, value, **merged)
        for series, hist in diff.get("histograms", {}).items():
            name, items = parse_series(series)
            merged = dict(items)
            merged["node"] = node
            registry.inc(name + "_count", hist.get("count", 0), **merged)
            registry.inc(name + "_sum", hist.get("sum", 0.0), **merged)

    def counter_total(self, name: str, **labels: object) -> float:
        """Sum a counter across every node (labels filter, node ignored)."""
        wanted = {key: str(value) for key, value in labels.items()}
        total = 0.0
        for (series, items), value in self.registry.counters.items():
            if series != name:
                continue
            present = dict(items)
            present.pop("node", None)
            if all(present.get(k) == v for k, v in wanted.items()):
                total += value
        return total

    def nodes(self) -> List[str]:
        """Every node that has reported at least one frame, sorted."""
        return sorted(self._seen)
