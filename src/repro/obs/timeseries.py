"""Cross-run time-series store with windowed drift detection.

A :class:`TimeSeriesStore` appends one compact JSONL row per round (or
sweep point): the registry snapshot plus caller-supplied metadata.  The
analysis half turns a history back into per-round value series and runs
windowed regression / anomaly checks over them — the two canned
detectors the sweeps use are **latency p95 drift** (per-round phase
seconds creeping up) and **revenue-per-block drift** (the market quietly
paying providers less).

Usage::

    store = TimeSeriesStore("history.jsonl")
    store.append(obs.registry.snapshot(), round=3, drop_rate=0.2)

    rows = TimeSeriesStore.load("history.jsonl")
    report = detect_drift(gauge_series(rows, "auction_last_welfare"))
    report = latency_p95_drift(rows, phase="clear")

CLI::

    python -m repro.obs.timeseries history.jsonl --list
    python -m repro.obs.timeseries history.jsonl \\
        --gauge auction_last_revenues --window 5 --threshold 0.2
    python -m repro.obs.timeseries history.jsonl --latency clear

Rows hold *cumulative* registry state; counter and histogram extractors
therefore diff consecutive rows to recover per-round values, while
gauges (per-round statements already) are read directly.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence


class TimeSeriesStore:
    """Append-only JSONL history of registry snapshots."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.appended = 0

    def append(
        self, snapshot: Mapping[str, Any], **meta: Any
    ) -> Dict[str, Any]:
        """Append one row ``{"meta": ..., <snapshot sections>}``."""
        row: Dict[str, Any] = {"meta": dict(meta)}
        for section in ("counters", "gauges", "histograms"):
            row[section] = dict(snapshot.get(section, {}))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(row, sort_keys=True, separators=(",", ":"))
            )
            handle.write("\n")
        self.appended += 1
        return row

    @staticmethod
    def load(path: str) -> List[Dict[str, Any]]:
        with open(path, "r", encoding="utf-8") as handle:
            return [
                json.loads(line)
                for line in handle
                if line.strip()
            ]


# ----------------------------------------------------------------------
# Series extraction
# ----------------------------------------------------------------------
def gauge_series(
    rows: Sequence[Mapping[str, Any]], name: str
) -> List[float]:
    """Per-row values of a gauge (rows without the series are skipped)."""
    out: List[float] = []
    for row in rows:
        value = row.get("gauges", {}).get(name)
        if value is not None:
            out.append(float(value))
    return out


def counter_series(
    rows: Sequence[Mapping[str, Any]], name: str, delta: bool = True
) -> List[float]:
    """Per-row counter values; ``delta=True`` diffs consecutive rows."""
    raw = [
        float(row.get("counters", {}).get(name, 0.0)) for row in rows
    ]
    if not delta:
        return raw
    out: List[float] = []
    prev = 0.0
    for value in raw:
        out.append(value - prev)
        prev = value
    return out


def latency_series(
    rows: Sequence[Mapping[str, Any]], series: str
) -> List[float]:
    """Per-round mean seconds from a cumulative histogram series.

    Registry histograms expose count/sum (no buckets), so the per-round
    latency is the delta-sum over delta-count between consecutive rows —
    exact means, not quantile estimates.
    """
    out: List[float] = []
    prev_count = 0.0
    prev_sum = 0.0
    for row in rows:
        hist = row.get("histograms", {}).get(series)
        if hist is None:
            continue
        d_count = float(hist["count"]) - prev_count
        d_sum = float(hist["sum"]) - prev_sum
        prev_count = float(hist["count"])
        prev_sum = float(hist["sum"])
        if d_count > 0:
            out.append(d_sum / d_count)
    return out


# ----------------------------------------------------------------------
# Windowed regression and drift
# ----------------------------------------------------------------------
def least_squares_slope(values: Sequence[float]) -> float:
    """Ordinary least-squares slope of ``values`` against 0..n-1."""
    n = len(values)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = math.fsum(values) / n
    num = math.fsum(
        (i - mean_x) * (v - mean_y) for i, v in enumerate(values)
    )
    den = math.fsum((i - mean_x) ** 2 for i in range(n))
    return num / den if den else 0.0


def p95(values: Sequence[float]) -> float:
    """Nearest-rank 95th percentile (0.0 on empty input)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, math.ceil(0.95 * len(ordered)) - 1)
    return ordered[rank]


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one windowed drift check."""

    series: str
    n: int
    window: int
    baseline: float
    recent: float
    relative_change: float
    slope: float
    drifting: bool

    def describe(self) -> str:
        verdict = "DRIFT" if self.drifting else "stable"
        return (
            f"{self.series}: {verdict} "
            f"(baseline {self.baseline:g} -> recent {self.recent:g}, "
            f"change {self.relative_change:+.1%}, "
            f"slope {self.slope:+.3g}/round, n={self.n})"
        )


def detect_drift(
    values: Sequence[float],
    window: int = 5,
    threshold: float = 0.2,
    series: str = "series",
    statistic: str = "mean",
) -> DriftReport:
    """Compare the trailing window against the window before it.

    ``drifting`` is true when the recent window's statistic (``mean`` or
    ``p95``) moved more than ``threshold`` (relative) away from the
    baseline window's, *and* the trailing regression over both windows
    backs the move: its slope points the same way and its projected
    change across the span covers at least half the observed shift — a
    spike confined to one round moves the mean but projects almost no
    sustained change, so it does not trip the detector.  Short histories
    (< 2 windows) never drift.
    """
    n = len(values)
    if statistic not in ("mean", "p95"):
        raise ValueError(f"unknown statistic {statistic!r}")
    if window < 1:
        raise ValueError("window must be >= 1")
    if n < 2 * window:
        return DriftReport(
            series=series, n=n, window=window,
            baseline=0.0, recent=0.0,
            relative_change=0.0, slope=0.0, drifting=False,
        )
    recent_values = list(values[-window:])
    baseline_values = list(values[-2 * window:-window])

    def stat(chunk: List[float]) -> float:
        if statistic == "p95":
            return p95(chunk)
        return math.fsum(chunk) / len(chunk)

    baseline = stat(baseline_values)
    recent = stat(recent_values)
    scale = max(abs(baseline), 1e-12)
    relative_change = (recent - baseline) / scale
    slope = least_squares_slope(list(values[-2 * window:]))
    shift = recent - baseline
    projected = slope * (2 * window - 1)
    drifting = (
        abs(relative_change) > threshold
        and (slope > 0.0 if shift > 0.0 else slope < 0.0)
        and abs(projected) >= abs(shift) / 2.0
    )
    return DriftReport(
        series=series, n=n, window=window,
        baseline=baseline, recent=recent,
        relative_change=relative_change, slope=slope, drifting=drifting,
    )


def latency_p95_drift(
    rows: Sequence[Mapping[str, Any]],
    phase: str = "clear",
    series: Optional[str] = None,
    window: int = 5,
    threshold: float = 0.5,
) -> DriftReport:
    """Is the p95 of per-round phase latency creeping up across rounds?"""
    name = series or f"auction_phase_seconds{{phase={phase}}}"
    values = latency_series(rows, name)
    return detect_drift(
        values, window=window, threshold=threshold,
        series=name, statistic="p95",
    )


def revenue_drift(
    rows: Sequence[Mapping[str, Any]],
    series: str = "auction_last_revenues",
    window: int = 5,
    threshold: float = 0.2,
) -> DriftReport:
    """Is revenue per block drifting away from its recent baseline?"""
    return detect_drift(
        gauge_series(rows, series), window=window, threshold=threshold,
        series=series,
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.timeseries",
        description="Inspect a registry-snapshot history for drift.",
    )
    parser.add_argument("history", help="JSONL history (TimeSeriesStore)")
    parser.add_argument(
        "--list", action="store_true",
        help="list available series names and row count",
    )
    parser.add_argument("--gauge", help="drift-check this gauge series")
    parser.add_argument(
        "--counter", help="drift-check per-row deltas of this counter"
    )
    parser.add_argument(
        "--latency", metavar="PHASE",
        help="p95 drift of auction_phase_seconds{phase=PHASE}",
    )
    parser.add_argument("--window", type=int, default=5)
    parser.add_argument("--threshold", type=float, default=0.2)
    args = parser.parse_args(argv)

    rows = TimeSeriesStore.load(args.history)
    if args.list or not (args.gauge or args.counter or args.latency):
        names: Dict[str, set] = {
            "counters": set(), "gauges": set(), "histograms": set()
        }
        for row in rows:
            for section in names:
                names[section].update(row.get(section, {}))
        print(f"{len(rows)} rows in {args.history}")
        for section in ("counters", "gauges", "histograms"):
            for name in sorted(names[section]):
                print(f"  {section[:-1]}  {name}")
        return 0

    reports: List[DriftReport] = []
    if args.gauge:
        reports.append(
            detect_drift(
                gauge_series(rows, args.gauge),
                window=args.window, threshold=args.threshold,
                series=args.gauge,
            )
        )
    if args.counter:
        reports.append(
            detect_drift(
                counter_series(rows, args.counter),
                window=args.window, threshold=args.threshold,
                series=args.counter,
            )
        )
    if args.latency:
        reports.append(
            latency_p95_drift(
                rows, phase=args.latency,
                window=args.window, threshold=args.threshold,
            )
        )
    drifting = False
    for report in reports:
        print(report.describe())
        drifting = drifting or report.drifting
    return 1 if drifting else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
