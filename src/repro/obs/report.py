"""Round/run summary CLI for exported traces.

Usage::

    python -m repro.obs.report trace.jsonl            # summary table
    python -m repro.obs.report trace.jsonl --tree     # plus span tree
    python -m repro.obs.report trace.jsonl --metrics metrics.prom

Reads a JSONL trace written by :meth:`repro.obs.Tracer.write_jsonl`
(wall-clock fields optional — a stripped deterministic trace still
summarizes, just without durations) and renders:

* a per-span-name table: count, error count, total wall seconds;
* a per-event-name table: count;
* with ``--tree``, the indented span tree with per-span events.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.trace import load_jsonl


def build_tree(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Reassemble span nodes (with children/events) from flat records.

    Returns the list of root spans; each node is a dict with ``name``,
    ``attrs``, ``status``, ``seconds`` (None without wall fields),
    ``children``, and ``events``.
    """
    nodes: Dict[int, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("type")
        if kind == "span_start":
            node = {
                "span": record["span"],
                "name": record["name"],
                "attrs": record.get("attrs", {}),
                "status": "open",
                "seconds": None,
                "_wall_start": record.get("wall"),
                "children": [],
                "events": [],
            }
            nodes[record["span"]] = node
            parent = nodes.get(record.get("parent"))
            (parent["children"] if parent else roots).append(node)
        elif kind == "span_end":
            node = nodes.get(record["span"])
            if node is None:
                continue
            node["status"] = record.get("status", "ok")
            start = node.pop("_wall_start", None)
            wall = record.get("wall")
            if start is not None and wall is not None:
                node["seconds"] = wall - start
        elif kind == "event":
            parent = nodes.get(record.get("span"))
            event = {"name": record["name"], "attrs": record.get("attrs", {})}
            if parent is not None:
                parent["events"].append(event)
            else:
                roots.append({"name": record["name"], "attrs": event["attrs"],
                              "status": "event", "seconds": None,
                              "children": [], "events": [], "span": None})
    for node in nodes.values():
        node.pop("_wall_start", None)
    return roots


def _walk(nodes: List[Dict[str, Any]]):
    for node in nodes:
        yield node
        yield from _walk(node["children"])


def summarize(records: List[Dict[str, Any]]) -> str:
    """The summary table the CLI prints (also used by tests)."""
    spans: Dict[str, Dict[str, float]] = {}
    events: Dict[str, int] = {}
    tree = build_tree(records)
    for node in _walk(tree):
        if node.get("status") == "event":
            events[node["name"]] = events.get(node["name"], 0) + 1
            continue
        stat = spans.setdefault(
            node["name"], {"count": 0, "errors": 0, "seconds": 0.0, "timed": 0}
        )
        stat["count"] += 1
        if node["status"] == "error":
            stat["errors"] += 1
        if node["seconds"] is not None:
            stat["seconds"] += node["seconds"]
            stat["timed"] += 1
        for event in node["events"]:
            events[event["name"]] = events.get(event["name"], 0) + 1

    lines = [
        f"trace summary: {len(records)} records, "
        f"{sum(s['count'] for s in spans.values())} spans, "
        f"{sum(events.values())} events"
    ]
    if spans:
        width = max(len(n) for n in spans)
        lines.append("")
        lines.append(f"  {'span':<{width}}  {'count':>5}  {'errors':>6}  seconds")
        for name in sorted(spans):
            stat = spans[name]
            seconds = (
                f"{stat['seconds']:9.4f}" if stat["timed"] else "        -"
            )
            lines.append(
                f"  {name:<{width}}  {int(stat['count']):>5}  "
                f"{int(stat['errors']):>6}  {seconds}"
            )
    if events:
        width = max(len(n) for n in events)
        lines.append("")
        lines.append(f"  {'event':<{width}}  count")
        for name in sorted(events):
            lines.append(f"  {name:<{width}}  {events[name]:>5}")
    return "\n".join(lines)


def render_tree(records: List[Dict[str, Any]]) -> str:
    """Indented span tree with inline events."""
    lines: List[str] = []

    def emit(node: Dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        if node.get("status") == "event":
            lines.append(f"{indent}* {node['name']} {node['attrs'] or ''}".rstrip())
            return
        seconds = (
            f" ({node['seconds']:.4f}s)" if node["seconds"] is not None else ""
        )
        flag = " [error]" if node["status"] == "error" else ""
        attrs = f" {node['attrs']}" if node["attrs"] else ""
        lines.append(f"{indent}- {node['name']}{attrs}{seconds}{flag}")
        for event in node["events"]:
            lines.append(
                f"{indent}  * {event['name']} {event['attrs'] or ''}".rstrip()
            )
        for child in node["children"]:
            emit(child, depth + 1)

    for root in build_tree(records):
        emit(root, 0)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize an exported DeCloud round trace.",
    )
    parser.add_argument("trace", help="JSONL trace file (Tracer.write_jsonl)")
    parser.add_argument(
        "--tree", action="store_true", help="also print the span tree"
    )
    parser.add_argument(
        "--metrics", help="optional Prometheus text file to append verbatim"
    )
    args = parser.parse_args(argv)

    with open(args.trace, "r", encoding="utf-8") as handle:
        records = load_jsonl(handle.read())
    print(summarize(records))
    if args.tree:
        print()
        print(render_tree(records))
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as handle:
            print()
            print("metrics:")
            for line in handle.read().splitlines():
                print(f"  {line}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout piped into head/less that exited early; not an error
        sys.exit(0)
