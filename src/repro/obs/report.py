"""Round/run summary CLI for exported traces.

Usage::

    python -m repro.obs.report trace.jsonl            # summary table
    python -m repro.obs.report trace.jsonl --tree     # plus span tree
    python -m repro.obs.report trace.jsonl --metrics metrics.prom
    python -m repro.obs.report --flight flight_3.jsonl
    python -m repro.obs.report --snapshot-diff before.json after.json

Reads a JSONL trace written by :meth:`repro.obs.Tracer.write_jsonl`
(wall-clock fields optional — a stripped deterministic trace still
summarizes, just without durations) and renders:

* a per-span-name table: count, error count, total wall seconds;
* a per-event-name table: count;
* with ``--tree``, the indented span tree with per-span events.

``--flight`` renders a flight-recorder bundle instead: the bundle's
frame summary plus the causal tree across every actor, with the failing
path (error spans, fault and exclusion events, and their ancestors)
highlighted by a leading ``!``.  ``--snapshot-diff`` pretty-prints the
:func:`~repro.obs.registry.snapshot_diff` between two exported registry
snapshot JSON files.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.trace import load_jsonl  # noqa: F401  (re-exported for callers)


class ReportError(Exception):
    """A diagnosable input problem (bad path, empty or truncated file)."""


def load_trace_records(path: str) -> List[Dict[str, Any]]:
    """Load trace JSONL with line-precise diagnostics.

    Unlike :func:`~repro.obs.trace.load_jsonl` (which assumes a
    well-formed export), this loader names the file and line of the
    first corrupt record — the symptom of a truncated write — and
    rejects files with no records at all: an empty "trace" is a
    collection failure, not a trivially-summarizable run.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ReportError(f"cannot read {path}: {exc}") from exc
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReportError(
                f"{path}:{lineno}: truncated or corrupt JSONL "
                f"({exc.msg} at column {exc.colno}); "
                f"re-export the trace or trim the partial line"
            ) from exc
        if not isinstance(record, dict) or "type" not in record:
            raise ReportError(
                f"{path}:{lineno}: not a trace record "
                f"(expected an object with a 'type' field)"
            )
        records.append(record)
    if not records:
        raise ReportError(
            f"{path}: empty trace — no JSONL records; "
            f"was the export interrupted before any span was written?"
        )
    return records


#: events that mark a node as part of the failing path
_FAILING_EVENTS = {
    "net.drop",
    "net.censored",
    "reveal.excluded",
    "reveal.timeout",
    "proposal.rejected",
    "round.aborted",
    "round.fallback",
    "monitor.violation",
}
_FAILING_PREFIXES = ("byzantine.",)


def build_tree(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Reassemble span nodes (with children/events) from flat records.

    Returns the list of root spans; each node is a dict with ``name``,
    ``attrs``, ``status``, ``seconds`` (None without wall fields),
    ``children``, and ``events``.
    """
    nodes: Dict[int, Dict[str, Any]] = {}
    roots: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("type")
        if kind == "span_start":
            node = {
                "span": record["span"],
                "name": record["name"],
                "attrs": record.get("attrs", {}),
                "status": "open",
                "seconds": None,
                "_wall_start": record.get("wall"),
                "children": [],
                "events": [],
            }
            nodes[record["span"]] = node
            parent = nodes.get(record.get("parent"))
            (parent["children"] if parent else roots).append(node)
        elif kind == "span_end":
            node = nodes.get(record["span"])
            if node is None:
                continue
            node["status"] = record.get("status", "ok")
            start = node.pop("_wall_start", None)
            wall = record.get("wall")
            if start is not None and wall is not None:
                node["seconds"] = wall - start
        elif kind == "event":
            parent = nodes.get(record.get("span"))
            event = {"name": record["name"], "attrs": record.get("attrs", {})}
            if parent is not None:
                parent["events"].append(event)
            else:
                roots.append({"name": record["name"], "attrs": event["attrs"],
                              "status": "event", "seconds": None,
                              "children": [], "events": [], "span": None})
    for node in nodes.values():
        node.pop("_wall_start", None)
    return roots


def _walk(nodes: List[Dict[str, Any]]):
    for node in nodes:
        yield node
        yield from _walk(node["children"])


def summarize(records: List[Dict[str, Any]]) -> str:
    """The summary table the CLI prints (also used by tests)."""
    spans: Dict[str, Dict[str, float]] = {}
    events: Dict[str, int] = {}
    tree = build_tree(records)
    for node in _walk(tree):
        if node.get("status") == "event":
            events[node["name"]] = events.get(node["name"], 0) + 1
            continue
        stat = spans.setdefault(
            node["name"], {"count": 0, "errors": 0, "seconds": 0.0, "timed": 0}
        )
        stat["count"] += 1
        if node["status"] == "error":
            stat["errors"] += 1
        if node["seconds"] is not None:
            stat["seconds"] += node["seconds"]
            stat["timed"] += 1
        for event in node["events"]:
            events[event["name"]] = events.get(event["name"], 0) + 1

    lines = [
        f"trace summary: {len(records)} records, "
        f"{sum(s['count'] for s in spans.values())} spans, "
        f"{sum(events.values())} events"
    ]
    if spans:
        width = max(len(n) for n in spans)
        lines.append("")
        lines.append(f"  {'span':<{width}}  {'count':>5}  {'errors':>6}  seconds")
        for name in sorted(spans):
            stat = spans[name]
            seconds = (
                f"{stat['seconds']:9.4f}" if stat["timed"] else "        -"
            )
            lines.append(
                f"  {name:<{width}}  {int(stat['count']):>5}  "
                f"{int(stat['errors']):>6}  {seconds}"
            )
    if events:
        width = max(len(n) for n in events)
        lines.append("")
        lines.append(f"  {'event':<{width}}  count")
        for name in sorted(events):
            lines.append(f"  {name:<{width}}  {events[name]:>5}")
    return "\n".join(lines)


def render_tree(records: List[Dict[str, Any]]) -> str:
    """Indented span tree with inline events."""
    lines: List[str] = []

    def emit(node: Dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        if node.get("status") == "event":
            lines.append(f"{indent}* {node['name']} {node['attrs'] or ''}".rstrip())
            return
        seconds = (
            f" ({node['seconds']:.4f}s)" if node["seconds"] is not None else ""
        )
        flag = " [error]" if node["status"] == "error" else ""
        attrs = f" {node['attrs']}" if node["attrs"] else ""
        lines.append(f"{indent}- {node['name']}{attrs}{seconds}{flag}")
        for event in node["events"]:
            lines.append(
                f"{indent}  * {event['name']} {event['attrs'] or ''}".rstrip()
            )
        for child in node["children"]:
            emit(child, depth + 1)

    for root in build_tree(records):
        emit(root, 0)
    return "\n".join(lines)


def _event_is_failing(name: str) -> bool:
    return name in _FAILING_EVENTS or name.startswith(_FAILING_PREFIXES)


def _mark_failing(node: Dict[str, Any]) -> bool:
    """Flag ``node`` (and return True) if its subtree holds a failure.

    A node fails directly when its span errored or it carries a failing
    event; ancestors of a failing node are flagged too so the rendered
    tree shows the whole causal path from root to fault.
    """
    direct = node.get("status") == "error" or (
        node.get("status") == "event" and _event_is_failing(node["name"])
    ) or any(
        _event_is_failing(event["name"]) for event in node["events"]
    )
    in_subtree = False
    for child in node["children"]:
        in_subtree = _mark_failing(child) or in_subtree
    node["_failing"] = direct or in_subtree
    return node["_failing"]


def render_failing_tree(records: List[Dict[str, Any]]) -> str:
    """The causal tree with every failing path prefixed by ``!``."""
    lines: List[str] = []

    def emit(node: Dict[str, Any], depth: int) -> None:
        mark = "!" if node.get("_failing") else " "
        indent = "  " * depth
        if node.get("status") == "event":
            flag = "!" if _event_is_failing(node["name"]) else " "
            lines.append(
                f"{flag}{indent}* {node['name']} {node['attrs'] or ''}".rstrip()
            )
            return
        status = f" [{node['status']}]" if node["status"] != "ok" else ""
        attrs = f" {node['attrs']}" if node["attrs"] else ""
        lines.append(f"{mark}{indent}- {node['name']}{attrs}{status}")
        for event in node["events"]:
            flag = "!" if _event_is_failing(event["name"]) else " "
            lines.append(
                f"{flag}{indent}  * {event['name']} "
                f"{event['attrs'] or ''}".rstrip()
            )
        for child in node["children"]:
            emit(child, depth + 1)

    roots = build_tree(records)
    for root in roots:
        _mark_failing(root)
    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def render_flight(
    meta: Dict[str, Any],
    records: List[Dict[str, Any]],
    headers: List[Dict[str, Any]],
) -> str:
    """Full flight-bundle report: header, frame table, causal tree."""
    lines = [
        f"flight recorder bundle: round {meta.get('round')} "
        f"triggered by {meta.get('trigger')} "
        f"(run {meta.get('run_id')}, {meta.get('frames')} frames)"
    ]
    if meta.get("error"):
        lines.append(f"  error: {meta['error']}")
    frame_rows = [h for h in headers if h.get("type") == "round_frame"]
    if frame_rows:
        lines.append("")
        lines.append("  round  status             records")
        for row in frame_rows:
            lines.append(
                f"  {row['round']:>5}  {row['status']:<17}  "
                f"{row['records']:>7}"
            )
    lines.append("")
    lines.append("causal tree (failing path marked with '!'):")
    lines.append(render_failing_tree(records))
    return "\n".join(lines)


def render_flame(path: str) -> str:
    """Summarize a folded-stack flame export (repro.obs.profile).

    Prints per-cause totals (the last stack frame) and the top stacks by
    weight — enough to read a pipeline's stall profile without an
    external flame-graph renderer.
    """
    from repro.obs.profile import COUNT_CAUSES, load_folded

    try:
        with open(path, "r", encoding="utf-8") as handle:
            stacks = load_folded(handle.read())
    except OSError as exc:
        raise ReportError(f"cannot read {path}: {exc}") from exc
    except ValueError as exc:
        raise ReportError(
            f"{path}: not a folded-stack file "
            f"(expected 'frame;frame <integer>' lines): {exc}"
        ) from exc
    if not stacks:
        raise ReportError(f"{path}: empty flame export — no stacks")
    causes: Dict[str, int] = {}
    for stack, weight in stacks:
        cause = stack.rsplit(";", 1)[-1]
        causes[cause] = causes.get(cause, 0) + weight
    lines = [f"flame summary: {len(stacks)} stacks from {path}"]
    lines.append("")
    width = max(len(c) for c in causes)
    lines.append(f"  {'cause':<{width}}  weight")
    for cause in sorted(causes, key=lambda c: (-causes[c], c)):
        unit = "events" if cause in COUNT_CAUSES else "virtual-us"
        lines.append(f"  {cause:<{width}}  {causes[cause]:>12} {unit}")
    lines.append("")
    lines.append("  top stacks:")
    for stack, weight in sorted(stacks, key=lambda s: (-s[1], s[0]))[:10]:
        lines.append(f"    {stack} {weight}")
    return "\n".join(lines)


def run_slo(objectives_path: str, history_path: str) -> int:
    """Evaluate an SLO file against a TimeSeriesStore history.

    Returns 0 when every objective is met, 1 when any is violated —
    the CI-gate exit-code contract.
    """
    from repro.obs.slo import evaluate, load_objectives, render
    from repro.obs.timeseries import TimeSeriesStore

    try:
        objectives = load_objectives(objectives_path)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        raise ReportError(f"bad objectives file {objectives_path}: {exc}")
    try:
        rows = TimeSeriesStore.load(history_path)
    except OSError as exc:
        raise ReportError(f"cannot read {history_path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReportError(
            f"{history_path}:{exc.lineno}: truncated or corrupt history "
            f"({exc.msg})"
        ) from exc
    if not rows:
        raise ReportError(
            f"{history_path}: empty history — no snapshot rows to "
            f"evaluate objectives against"
        )
    results = evaluate(rows, objectives)
    print(render(results))
    return 0 if all(result.ok for result in results) else 1


def _print_snapshot_diff(before_path: str, after_path: str) -> None:
    from repro.obs.export import format_snapshot_diff
    from repro.obs.registry import snapshot_diff

    with open(before_path, "r", encoding="utf-8") as handle:
        before = json.load(handle)
    with open(after_path, "r", encoding="utf-8") as handle:
        after = json.load(handle)
    print(f"snapshot diff: {before_path} -> {after_path}")
    print(format_snapshot_diff(snapshot_diff(before, after)))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize an exported DeCloud round trace.",
    )
    parser.add_argument(
        "trace", nargs="?",
        help="JSONL trace file (Tracer.write_jsonl)",
    )
    parser.add_argument(
        "--tree", action="store_true", help="also print the span tree"
    )
    parser.add_argument(
        "--metrics", help="optional Prometheus text file to append verbatim"
    )
    parser.add_argument(
        "--flight", metavar="BUNDLE",
        help="render a flight-recorder bundle (flight_<round>.jsonl)",
    )
    parser.add_argument(
        "--snapshot-diff", nargs=2, metavar=("BEFORE", "AFTER"),
        help="pretty-print the diff between two registry snapshot JSONs",
    )
    parser.add_argument(
        "--flame", metavar="FOLDED",
        help="summarize a folded-stack flame export (PipelineProfiler)",
    )
    parser.add_argument(
        "--slo", nargs=2, metavar=("OBJECTIVES", "HISTORY"),
        help="evaluate an SLO objectives JSON against a TimeSeriesStore "
        "history; exits 1 when any objective is violated",
    )
    args = parser.parse_args(argv)

    try:
        if args.slo:
            return run_slo(*args.slo)
        if args.flame:
            print(render_flame(args.flame))
            return 0
        if args.snapshot_diff:
            _print_snapshot_diff(*args.snapshot_diff)
            return 0
        if args.flight:
            from repro.obs.flight import load_flight

            try:
                with open(args.flight, "r", encoding="utf-8") as handle:
                    meta, records, headers = load_flight(handle.read())
            except OSError as exc:
                raise ReportError(f"cannot read {args.flight}: {exc}")
            print(render_flight(meta, records, headers))
            return 0
        if not args.trace:
            parser.error(
                "a trace file, --flight, --flame, --slo, or "
                "--snapshot-diff is required"
            )

        records = load_trace_records(args.trace)
        print(summarize(records))
        if args.tree:
            print()
            print(render_tree(records))
        if args.metrics:
            with open(args.metrics, "r", encoding="utf-8") as handle:
                print()
                print("metrics:")
                for line in handle.read().splitlines():
                    print(f"  {line}")
        return 0
    except ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout piped into head/less that exited early; not an error
        sys.exit(0)
