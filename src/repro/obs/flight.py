"""Round flight recorder: bounded history, dumped on failure.

A :class:`FlightRecorder` rides inside an
:class:`~repro.obs.Observability` bundle and frames the tracer/registry
stream into protocol rounds: :meth:`begin_round` marks where a round's
records start, :meth:`end_round` archives the completed frame (records
plus the registry delta) into a bounded ring buffer.  When a round dies
— ``RevealTimeoutError`` / ``QuorumError`` / ``ByzantineFaultError``
from the exposure protocol, or any monitor violation — :meth:`dump`
writes a self-contained JSONL bundle ``flight_<round>.jsonl``: the
recent archived frames for context plus everything recorded in the
failing round, ready for
``python -m repro.obs.report --flight <file>``.

Bundle format (one JSON object per line, keys sorted):

``{"type": "flight_meta", ...}``
    First line: run id, failing round, trigger, error text, frame count.
``{"type": "round_frame", "round": i, "status": ..., "records": n}``
    Frame header, followed by its ``n`` trace records verbatim
    (``span_start`` / ``span_end`` / ``event`` — the report CLI feeds
    these straight into the tree builder).
``{"type": "metrics_delta", "round": i, "delta": {...}}``
    The registry delta the frame's round produced
    (:func:`~repro.obs.registry.snapshot_diff` shape).
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.registry import snapshot_diff

_EMPTY_SNAPSHOT: Dict[str, Dict[str, Any]] = {
    "counters": {},
    "gauges": {},
    "histograms": {},
}


class _Frame:
    __slots__ = ("round_index", "status", "records", "delta")

    def __init__(
        self,
        round_index: int,
        status: str,
        records: List[Dict[str, Any]],
        delta: Dict[str, Any],
    ) -> None:
        self.round_index = round_index
        self.status = status
        self.records = records
        self.delta = delta


class FlightRecorder:
    """Ring buffer of recent round frames with JSONL crash dumps."""

    def __init__(self, capacity: int = 4, out_dir: str = ".") -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self.out_dir = out_dir
        #: paths of every bundle written, newest last
        self.dumps: List[str] = []
        self._obs: Any = None
        self._frames: "deque[_Frame]" = deque(maxlen=capacity)
        self._mark = 0
        self._snapshot: Dict[str, Any] = _EMPTY_SNAPSHOT
        self._round: Optional[int] = None

    # ------------------------------------------------------------------
    # Wiring (called by Observability)
    # ------------------------------------------------------------------
    def bind(self, obs: Any) -> None:
        self._obs = obs

    @property
    def frames(self) -> Tuple[_Frame, ...]:
        return tuple(self._frames)

    def _registry_snapshot(self) -> Dict[str, Any]:
        if self._obs is None:
            return _EMPTY_SNAPSHOT
        registry = self._obs.registry
        base = registry
        while hasattr(base, "_base"):
            base = base._base
        snapshot = getattr(base, "snapshot", None)
        return snapshot() if snapshot is not None else _EMPTY_SNAPSHOT

    def _records_since_mark(self) -> List[Dict[str, Any]]:
        if self._obs is None:
            return []
        return list(self._obs.tracer.records[self._mark:])

    # ------------------------------------------------------------------
    # Round framing
    # ------------------------------------------------------------------
    def begin_round(self, round_index: int) -> None:
        """Name the round the next frame belongs to.

        The frame's records start where the previous frame ended, not
        here — bid submissions (seal spans, their network fates) happen
        *before* the round driver starts and belong causally to the
        round they feed.
        """
        self._round = round_index

    def end_round(self, round_index: Optional[int] = None) -> None:
        """Archive the completed round's frame into the ring buffer."""
        if self._obs is None:
            return
        index = self._round if round_index is None else round_index
        self._frames.append(
            _Frame(
                round_index=index if index is not None else 0,
                status="ok",
                records=self._records_since_mark(),
                delta=snapshot_diff(
                    self._snapshot, self._registry_snapshot()
                ),
            )
        )
        self._mark = len(self._obs.tracer.records)
        self._snapshot = self._registry_snapshot()
        self._round = None

    # ------------------------------------------------------------------
    # The crash dump
    # ------------------------------------------------------------------
    def dump(
        self,
        trigger: str,
        error: Optional[str] = None,
        round_index: Optional[int] = None,
    ) -> str:
        """Write ``flight_<round>.jsonl`` and return its path.

        The failing round's frame (everything since the last mark) is
        written last, preceded by the archived frames still in the ring.
        Dumping does not consume the ring — a later failure still sees
        the same context.
        """
        index = round_index if round_index is not None else self._round
        if index is None:
            index = 0
        failing = _Frame(
            round_index=index,
            status=trigger,
            records=self._records_since_mark(),
            delta=snapshot_diff(self._snapshot, self._registry_snapshot()),
        )
        frames = list(self._frames) + [failing]
        run_id = getattr(self._obs, "run_id", None)
        lines = [
            {
                "type": "flight_meta",
                "run_id": run_id,
                "round": index,
                "trigger": trigger,
                "error": error,
                "capacity": self.capacity,
                "frames": len(frames),
            }
        ]
        for frame in frames:
            lines.append(
                {
                    "type": "round_frame",
                    "round": frame.round_index,
                    "status": frame.status,
                    "records": len(frame.records),
                }
            )
            lines.extend(frame.records)
            lines.append(
                {
                    "type": "metrics_delta",
                    "round": frame.round_index,
                    "delta": frame.delta,
                }
            )
        os.makedirs(self.out_dir, exist_ok=True)
        path = os.path.join(self.out_dir, f"flight_{index}.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(
                    json.dumps(line, sort_keys=True, separators=(",", ":"))
                )
                handle.write("\n")
        self.dumps.append(path)
        if self._obs is not None and getattr(self._obs, "enabled", False):
            self._obs.registry.inc("flight_dumps_total", trigger=trigger)
        return path


def load_flight(
    text: str,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Parse a flight bundle into ``(meta, trace_records, frame_headers)``.

    ``trace_records`` concatenates every frame's span/event records in
    order (the report CLI's tree builder takes them as-is);
    ``frame_headers`` holds the ``round_frame`` and ``metrics_delta``
    lines for the per-round summary.
    """
    meta: Dict[str, Any] = {}
    records: List[Dict[str, Any]] = []
    headers: List[Dict[str, Any]] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        kind = obj.get("type")
        if kind == "flight_meta":
            meta = obj
        elif kind in ("round_frame", "metrics_delta"):
            headers.append(obj)
        else:
            records.append(obj)
    return meta, records, headers
