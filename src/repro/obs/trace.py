"""Structured round tracing: spans and events over a deterministic clock.

A :class:`Tracer` records what a protocol round *did* — the span tree
``seal -> round(mine, reveal, propose, verify, commit)`` plus point
events (reveal retries, exclusions, Byzantine rejections, commits) — as
an append-only list of flat records exportable to JSONL.

Determinism contract: record ordering, span ids, and the logical ``seq``
clock are pure functions of the control flow, so two seeded runs of the
same market emit **byte-identical** JSONL once wall-clock fields are
stripped (``to_jsonl(strip_wall=True)``).  The property suite enforces
this.  Wall-clock timestamps ride along under the single key ``wall`` so
humans can still see real durations in a live trace.

Record schema (one JSON object per line, keys sorted):

``span_start``
    ``{"type", "seq", "span", "parent", "name", "attrs", "wall"}``
``span_end``
    ``{"type", "seq", "span", "name", "status", "wall"}``
``event``
    ``{"type", "seq", "span", "name", "attrs", "wall"}``

``seq`` is the monotonic sim clock (one tick per record), ``span`` the
id of the span being opened/closed (for events: the innermost open span,
or ``null`` at top level), ``parent`` the enclosing span id, ``status``
``"ok"`` or ``"error"``.

Causal propagation: :meth:`Tracer.child_context` captures the current
position as a :class:`TraceContext` — a value small enough to ride on a
network message — and :meth:`Tracer.from_context` /
:meth:`Tracer.event_at` re-anchor work (possibly on another actor, after
the originating span already closed) under that context.  The ``seq``
clock is a Lamport clock: consuming a context advances the local clock
past the sender's, so causally-ordered records always carry increasing
``seq`` even across actors.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

#: sentinel: "parent this span on the innermost open span"
_FROM_STACK = object()


@dataclass(frozen=True)
class TraceContext:
    """A portable causal position: attach to messages, restore elsewhere.

    ``trace_id`` names the originating tracer, ``span`` the sender's
    innermost open span at capture time (the causal parent for whatever
    handles the message), ``clock`` the sender's logical clock (merged
    Lamport-style on receipt), ``actor`` the sending actor's id so the
    causal tree renders per-actor lanes.
    """

    trace_id: str
    span: Optional[int]
    clock: int
    actor: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span": self.span,
            "clock": self.clock,
            "actor": self.actor,
        }


class _TraceSpan:
    """Context manager recording one span's start/end records."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id", "_parent")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
        parent: Any = _FROM_STACK,
    ):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span_id = 0
        self._parent = parent

    def __enter__(self) -> "_TraceSpan":
        self._span_id = self._tracer._open_span(
            self._name, self._attrs, parent=self._parent
        )
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self._tracer._close_span(
            self._span_id, self._name, "ok" if exc_type is None else "error"
        )


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Deterministic span/event recorder with JSONL export."""

    enabled = True

    __slots__ = ("trace_id", "records", "_seq", "_next_span", "_stack")

    def __init__(self, trace_id: str = "trace") -> None:
        self.trace_id = trace_id
        self.records: List[Dict[str, Any]] = []
        self._seq = 0
        self._next_span = 1
        self._stack: List[int] = []

    def _tick(self) -> int:
        self._seq += 1
        return self._seq

    def _merge_clock(self, ctx: "TraceContext") -> None:
        # Lamport merge: the next local tick lands after everything the
        # context's sender had already recorded.
        if ctx.clock > self._seq:
            self._seq = ctx.clock

    @property
    def current_span(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs: Any) -> _TraceSpan:
        """Open a span; nest freely, exceptions mark it ``error``."""
        return _TraceSpan(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event under the innermost open span."""
        self.records.append(
            {
                "type": "event",
                "seq": self._tick(),
                "span": self.current_span,
                "name": name,
                "attrs": attrs,
                "wall": time.time(),
            }
        )

    # ------------------------------------------------------------------
    # Causal propagation
    # ------------------------------------------------------------------
    def child_context(self, actor: Optional[str] = None) -> TraceContext:
        """Capture the current causal position for a message in flight."""
        return TraceContext(
            trace_id=self.trace_id,
            span=self.current_span,
            clock=self._seq,
            actor=actor,
        )

    def from_context(
        self, ctx: Optional[TraceContext], name: str, **attrs: Any
    ) -> _TraceSpan:
        """Open a span whose *causal* parent is ``ctx``'s span.

        The parent may belong to another actor and may already be closed
        (a delivery handled after the sender's phase ended) — the tree
        builder still attaches the child where causality says it belongs.
        With ``ctx=None`` this degrades to a plain :meth:`span`.
        """
        if ctx is None:
            return _TraceSpan(self, name, attrs)
        self._merge_clock(ctx)
        parent = ctx.span if ctx.trace_id == self.trace_id else None
        if ctx.trace_id != self.trace_id:
            attrs.setdefault("remote_trace", ctx.trace_id)
        return _TraceSpan(self, name, attrs, parent=parent)

    def event_at(
        self, ctx: Optional[TraceContext], name: str, **attrs: Any
    ) -> None:
        """Record an event on ``ctx``'s (possibly closed) span.

        Used for fault evidence that belongs to the *sender's* span — a
        drop or duplication happens to the sender's message, wherever the
        network thread happens to be when it notices.
        """
        if ctx is None or ctx.trace_id != self.trace_id:
            self.event(name, **attrs)
            return
        self._merge_clock(ctx)
        self.records.append(
            {
                "type": "event",
                "seq": self._tick(),
                "span": ctx.span,
                "name": name,
                "attrs": attrs,
                "wall": time.time(),
            }
        )

    # ------------------------------------------------------------------
    # Span plumbing (called by _TraceSpan)
    # ------------------------------------------------------------------
    def _open_span(
        self, name: str, attrs: Dict[str, Any], parent: Any = _FROM_STACK
    ) -> int:
        span_id = self._next_span
        self._next_span += 1
        self.records.append(
            {
                "type": "span_start",
                "seq": self._tick(),
                "span": span_id,
                "parent": (
                    self.current_span if parent is _FROM_STACK else parent
                ),
                "name": name,
                "attrs": attrs,
                "wall": time.time(),
            }
        )
        self._stack.append(span_id)
        return span_id

    def _close_span(self, span_id: int, name: str, status: str) -> None:
        # Pop back to (and including) this span even if an exception
        # skipped inner __exit__ calls — the trace must never wedge.
        while self._stack and self._stack[-1] != span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self.records.append(
            {
                "type": "span_end",
                "seq": self._tick(),
                "span": span_id,
                "name": name,
                "status": status,
                "wall": time.time(),
            }
        )

    # ------------------------------------------------------------------
    # Worker-trace merge (telemetry plane)
    # ------------------------------------------------------------------
    def merge_records(self, records: Sequence[Mapping[str, Any]]) -> None:
        """Graft another tracer's records into this trace, deterministically.

        Worker bundles (process-pool tasks, shard runs) trace with their
        own fresh clocks; the parent merges the shipped records here.
        Span ids are shifted past this tracer's, each record gets the
        next local ``seq`` tick (record order — already causal within
        the worker — is preserved), and worker *root* spans and
        top-level events are re-parented on the innermost open span, so
        the merged trace reads as one tree.  The result depends only on
        this tracer's state and the records, never on which process (or
        how many) produced them — the cross-worker byte-identity the
        property suite enforces.
        """
        if not records:
            return
        anchor = self.current_span
        base = self._next_span - 1
        max_span = 0
        for record in records:
            merged = dict(record)
            merged["seq"] = self._tick()
            span = merged.get("span")
            if span is not None:
                merged["span"] = span + base
                if span > max_span:
                    max_span = span
            elif merged.get("type") == "event":
                merged["span"] = anchor
            if merged.get("type") == "span_start":
                parent = merged.get("parent")
                merged["parent"] = anchor if parent is None else parent + base
            self.records.append(merged)
        self._next_span = base + max_span + 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self, strip_wall: bool = False) -> str:
        """One sorted-key JSON object per line; trailing newline.

        ``strip_wall=True`` removes every wall-clock field, leaving the
        deterministic projection two seeded runs agree on byte for byte.
        """
        lines = []
        for record in self.records:
            if strip_wall:
                record = {k: v for k, v in record.items() if k != "wall"}
            lines.append(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str, strip_wall: bool = False) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl(strip_wall=strip_wall))


class NullTracer:
    """Inert tracer for the disabled path."""

    enabled = False

    __slots__ = ()

    records: List[Dict[str, Any]] = []
    trace_id = "null"

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def child_context(self, actor: Optional[str] = None) -> None:
        # Messages carry no context on the disabled path — obs-off runs
        # stay byte-identical to the pre-tracing protocol.
        return None

    def from_context(
        self, ctx: Optional[TraceContext], name: str, **attrs: Any
    ) -> _NullSpan:
        return _NULL_SPAN

    def event_at(
        self, ctx: Optional[TraceContext], name: str, **attrs: Any
    ) -> None:
        return None

    def merge_records(self, records: Sequence[Mapping[str, Any]]) -> None:
        return None

    def to_jsonl(self, strip_wall: bool = False) -> str:
        return ""

    def write_jsonl(self, path: str, strip_wall: bool = False) -> None:
        return None


NULL_TRACER = NullTracer()


def load_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse trace JSONL text back into records (blank lines skipped)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def strip_wall(text: str) -> str:
    """Drop wall-clock fields from exported JSONL (for byte comparison)."""
    lines = []
    for record in load_jsonl(text):
        record.pop("wall", None)
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")
