"""Structured round tracing: spans and events over a deterministic clock.

A :class:`Tracer` records what a protocol round *did* — the span tree
``seal -> round(mine, reveal, propose, verify, commit)`` plus point
events (reveal retries, exclusions, Byzantine rejections, commits) — as
an append-only list of flat records exportable to JSONL.

Determinism contract: record ordering, span ids, and the logical ``seq``
clock are pure functions of the control flow, so two seeded runs of the
same market emit **byte-identical** JSONL once wall-clock fields are
stripped (``to_jsonl(strip_wall=True)``).  The property suite enforces
this.  Wall-clock timestamps ride along under the single key ``wall`` so
humans can still see real durations in a live trace.

Record schema (one JSON object per line, keys sorted):

``span_start``
    ``{"type", "seq", "span", "parent", "name", "attrs", "wall"}``
``span_end``
    ``{"type", "seq", "span", "name", "status", "wall"}``
``event``
    ``{"type", "seq", "span", "name", "attrs", "wall"}``

``seq`` is the monotonic sim clock (one tick per record), ``span`` the
id of the span being opened/closed (for events: the innermost open span,
or ``null`` at top level), ``parent`` the enclosing span id, ``status``
``"ok"`` or ``"error"``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional


class _TraceSpan:
    """Context manager recording one span's start/end records."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span_id")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span_id = 0

    def __enter__(self) -> "_TraceSpan":
        self._span_id = self._tracer._open_span(self._name, self._attrs)
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self._tracer._close_span(
            self._span_id, self._name, "ok" if exc_type is None else "error"
        )


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Deterministic span/event recorder with JSONL export."""

    enabled = True

    __slots__ = ("records", "_seq", "_next_span", "_stack")

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self._seq = 0
        self._next_span = 1
        self._stack: List[int] = []

    def _tick(self) -> int:
        self._seq += 1
        return self._seq

    @property
    def current_span(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs: Any) -> _TraceSpan:
        """Open a span; nest freely, exceptions mark it ``error``."""
        return _TraceSpan(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event under the innermost open span."""
        self.records.append(
            {
                "type": "event",
                "seq": self._tick(),
                "span": self.current_span,
                "name": name,
                "attrs": attrs,
                "wall": time.time(),
            }
        )

    # ------------------------------------------------------------------
    # Span plumbing (called by _TraceSpan)
    # ------------------------------------------------------------------
    def _open_span(self, name: str, attrs: Dict[str, Any]) -> int:
        span_id = self._next_span
        self._next_span += 1
        self.records.append(
            {
                "type": "span_start",
                "seq": self._tick(),
                "span": span_id,
                "parent": self.current_span,
                "name": name,
                "attrs": attrs,
                "wall": time.time(),
            }
        )
        self._stack.append(span_id)
        return span_id

    def _close_span(self, span_id: int, name: str, status: str) -> None:
        # Pop back to (and including) this span even if an exception
        # skipped inner __exit__ calls — the trace must never wedge.
        while self._stack and self._stack[-1] != span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        self.records.append(
            {
                "type": "span_end",
                "seq": self._tick(),
                "span": span_id,
                "name": name,
                "status": status,
                "wall": time.time(),
            }
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self, strip_wall: bool = False) -> str:
        """One sorted-key JSON object per line; trailing newline.

        ``strip_wall=True`` removes every wall-clock field, leaving the
        deterministic projection two seeded runs agree on byte for byte.
        """
        lines = []
        for record in self.records:
            if strip_wall:
                record = {k: v for k, v in record.items() if k != "wall"}
            lines.append(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str, strip_wall: bool = False) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl(strip_wall=strip_wall))


class NullTracer:
    """Inert tracer for the disabled path."""

    enabled = False

    __slots__ = ()

    records: List[Dict[str, Any]] = []

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def to_jsonl(self, strip_wall: bool = False) -> str:
        return ""

    def write_jsonl(self, path: str, strip_wall: bool = False) -> None:
        return None


NULL_TRACER = NullTracer()


def load_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse trace JSONL text back into records (blank lines skipped)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def strip_wall(text: str) -> str:
    """Drop wall-clock fields from exported JSONL (for byte comparison)."""
    lines = []
    for record in load_jsonl(text):
        record.pop("wall", None)
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")
