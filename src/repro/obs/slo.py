"""Declarative SLOs with error budgets over registry histories.

An SLO file declares per-round objectives against the snapshot rows a
:class:`~repro.obs.timeseries.TimeSeriesStore` already records — no new
collection path, the history *is* the evidence:

.. code-block:: json

    {"objectives": [
      {"name": "clear-latency",
       "kind": "latency",
       "series": "auction_phase_seconds{phase=clear}",
       "op": "<=", "target": 0.25, "budget": 0.05},
      {"name": "welfare-floor",
       "kind": "gauge",
       "series": "auction_last_welfare",
       "op": ">=", "target": 10.0,
       "drift": {"window": 5, "threshold": 0.2}}
    ]}

``kind`` selects the per-round extractor (``latency`` — delta-mean of a
cumulative histogram; ``gauge`` — direct values; ``counter`` —
consecutive-row deltas).  ``budget`` is the tolerated *fraction* of
violating rounds (SRE-style error budget, default 0 — any violation
burns it).  An optional ``drift`` block additionally runs
:func:`~repro.obs.timeseries.detect_drift` over the same values: an
objective whose rounds individually pass can still fail because the
series is sliding toward the target.

``python -m repro.obs.report --slo objectives.json history.jsonl``
renders every objective and exits nonzero when any failed — the CI
gate shape.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.timeseries import (
    DriftReport,
    counter_series,
    detect_drift,
    gauge_series,
    latency_series,
)

_EXTRACTORS = {
    "latency": latency_series,
    "gauge": gauge_series,
    "counter": counter_series,
}

_OPS = {
    "<=": lambda value, target: value <= target,
    ">=": lambda value, target: value >= target,
    "<": lambda value, target: value < target,
    ">": lambda value, target: value > target,
}


@dataclass(frozen=True)
class Objective:
    """One declarative per-round objective."""

    name: str
    series: str
    kind: str = "gauge"  # latency | gauge | counter
    op: str = "<="
    target: float = 0.0
    #: tolerated fraction of violating rounds (error budget); 0 = none
    budget: float = 0.0
    #: optional drift attachment: {"window", "threshold", "statistic"}
    drift: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        if self.kind not in _EXTRACTORS:
            raise ValueError(
                f"objective {self.name!r}: unknown kind {self.kind!r}"
            )
        if self.op not in _OPS:
            raise ValueError(
                f"objective {self.name!r}: unknown op {self.op!r}"
            )
        if not 0.0 <= self.budget <= 1.0:
            raise ValueError(
                f"objective {self.name!r}: budget must be in [0, 1]"
            )


@dataclass(frozen=True)
class ObjectiveResult:
    """One objective evaluated against one history."""

    objective: Objective
    rounds: int
    violations: int
    #: violating fraction over the budget; > 1.0 means the budget is blown
    #: (with budget 0, any violation reports ``inf``)
    budget_used: float
    drift_report: Optional[DriftReport] = None
    #: per-round values the verdict was computed from
    values: Tuple[float, ...] = field(default=())

    @property
    def violating_fraction(self) -> float:
        return self.violations / self.rounds if self.rounds else 0.0

    @property
    def drifting(self) -> bool:
        return self.drift_report is not None and self.drift_report.drifting

    @property
    def ok(self) -> bool:
        if self.rounds == 0:
            return False  # no evidence is not compliance
        if self.drifting:
            return False
        if self.objective.budget == 0.0:
            return self.violations == 0
        return self.violating_fraction <= self.objective.budget

    def describe(self) -> str:
        obj = self.objective
        verdict = "OK" if self.ok else "VIOLATED"
        line = (
            f"[{verdict}] {obj.name}: {obj.series} {obj.op} {obj.target:g} "
            f"— {self.violations}/{self.rounds} rounds violating"
        )
        if obj.budget > 0.0:
            line += (
                f" (budget {obj.budget:.1%}, "
                f"used {min(self.budget_used, 99.99):.0%})"
            )
        if self.rounds == 0:
            line += " (no data for series)"
        if self.drift_report is not None:
            line += f"; drift: {self.drift_report.describe()}"
        return line


def evaluate_objective(
    rows: Sequence[Mapping[str, Any]], objective: Objective
) -> ObjectiveResult:
    """Evaluate one objective against loaded history rows."""
    values = _EXTRACTORS[objective.kind](rows, objective.series)
    op = _OPS[objective.op]
    violations = sum(1 for value in values if not op(value, objective.target))
    rounds = len(values)
    fraction = violations / rounds if rounds else 0.0
    if objective.budget > 0.0:
        budget_used = fraction / objective.budget
    else:
        budget_used = float("inf") if violations else 0.0
    drift_report = None
    if objective.drift is not None:
        spec = dict(objective.drift)
        drift_report = detect_drift(
            values,
            window=int(spec.get("window", 5)),
            threshold=float(spec.get("threshold", 0.2)),
            series=objective.series,
            statistic=str(spec.get("statistic", "mean")),
        )
    return ObjectiveResult(
        objective=objective,
        rounds=rounds,
        violations=violations,
        budget_used=budget_used,
        drift_report=drift_report,
        values=tuple(values),
    )


def evaluate(
    rows: Sequence[Mapping[str, Any]], objectives: Sequence[Objective]
) -> List[ObjectiveResult]:
    """Evaluate every objective; results keep declaration order."""
    return [evaluate_objective(rows, objective) for objective in objectives]


def load_objectives(path: str) -> List[Objective]:
    """Load an objectives JSON file (``{"objectives": [...]}`` or a list)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, Mapping):
        specs = data.get("objectives", [])
    else:
        specs = data
    if not isinstance(specs, list) or not specs:
        raise ValueError(f"{path}: no objectives declared")
    objectives = []
    for spec in specs:
        drift = spec.get("drift")
        objectives.append(
            Objective(
                name=str(spec["name"]),
                series=str(spec["series"]),
                kind=str(spec.get("kind", "gauge")),
                op=str(spec.get("op", "<=")),
                target=float(spec.get("target", 0.0)),
                budget=float(spec.get("budget", 0.0)),
                drift=dict(drift) if drift is not None else None,
            )
        )
    return objectives


def render(results: Sequence[ObjectiveResult]) -> str:
    """Human-readable report, one line per objective plus a verdict."""
    lines = [result.describe() for result in results]
    failed = sum(1 for result in results if not result.ok)
    if failed:
        lines.append(f"{failed}/{len(results)} objective(s) violated")
    else:
        lines.append(f"all {len(results)} objective(s) met")
    return "\n".join(lines)


def summary_dict(results: Sequence[ObjectiveResult]) -> Dict[str, Any]:
    """JSON-ready summary (for artifacts / machine consumption)."""
    return {
        "objectives": [
            {
                "name": result.objective.name,
                "series": result.objective.series,
                "ok": result.ok,
                "rounds": result.rounds,
                "violations": result.violations,
                "budget": result.objective.budget,
                "budget_used": (
                    result.budget_used
                    if result.budget_used != float("inf")
                    else None
                ),
                "drifting": result.drifting,
            }
            for result in results
        ],
        "ok": all(result.ok for result in results),
    }
