"""Pipeline stall profiler for the runtime reactor (virtual time).

The reactor (:mod:`repro.runtime.reactor`) drives rounds through seal →
mine → propose → verify-quorum → commit on a deterministic virtual
clock.  Throughput numbers alone say the pipeline is slow, not *why*:
was a round waiting for its seal window, re-queued behind a full inbox,
grinding proof-of-work, or blocked on the verifier quorum?  A
:class:`PipelineProfiler` answers that by accumulating **virtual-time
intervals** per ``(round, cause)`` as the reactor reports them.

Causes (the folded-stack vocabulary):

``seal_wait``
    virtual time between a round's scheduled seal open and mining start
    (includes submission settling and empty-round sealing).
``mine``
    the proof-of-work width for the winning miner.
``propose``
    announce → verification start (per proposer attempt).
``verify_quorum``
    the verifier quorum width (per attempt, including rejected ones).
``commit``
    the commit width for the accepted proposal.
``wal_append``
    durability appends, counted per round (virtual width is zero — the
    WAL rides the commit edge — so the profiler records *counts* here).
``backpressure_deferral``
    transport-side: deliveries re-queued because an actor's inbox was
    full, attributed per node under ``runtime;transport;<node>;...``.

The profiler is **passive**: it never schedules events, draws no
scheduler RNG, and touches no message — attaching one cannot perturb
outcomes (the invariance suite runs with and without it).  All input is
virtual time from the deterministic scheduler, so the exports are
byte-identical across seeded replays.

Exports:

* :meth:`PipelineProfiler.to_folded` — classic folded-stack flame-graph
  lines (``frame;frame;frame <integer-weight>``), one per
  ``(round, cause)`` in sorted order, weights in virtual microseconds
  (counts for ``wal_append``).  Feed to any flamegraph.pl-compatible
  renderer, or read directly — it is plain text.
* :meth:`PipelineProfiler.flush` — fold totals into a registry as
  ``pipeline_stall_seconds{cause=...}`` counters, per-cause round
  counts, and a ``pipeline_occupancy`` gauge (busy fraction of the
  virtual span).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

#: causes whose folded-stack weight is a count, not virtual seconds
COUNT_CAUSES = frozenset({"wal_append"})


class PipelineProfiler:
    """Per-round stall attribution on virtual time, deterministic export."""

    __slots__ = ("intervals", "node_stalls", "_flushed")

    def __init__(self) -> None:
        #: ``(round_index, cause) -> accumulated virtual seconds`` (or
        #: count, for :data:`COUNT_CAUSES`)
        self.intervals: Dict[Tuple[int, str], float] = {}
        #: ``(node_id, cause) -> accumulated virtual seconds``
        self.node_stalls: Dict[Tuple[str, str], float] = {}
        self._flushed = False

    # ------------------------------------------------------------------
    # Accumulation (called by the reactor / transport)
    # ------------------------------------------------------------------
    def add(self, round_index: int, cause: str, seconds: float) -> None:
        """Attribute ``seconds`` of virtual time to one round's cause."""
        if seconds <= 0 and cause not in COUNT_CAUSES:
            return
        key = (round_index, cause)
        self.intervals[key] = self.intervals.get(key, 0.0) + seconds

    def count(self, round_index: int, cause: str, n: int = 1) -> None:
        """Bump a count-valued cause (e.g. ``wal_append``)."""
        key = (round_index, cause)
        self.intervals[key] = self.intervals.get(key, 0.0) + n

    def node_stall(self, node_id: str, cause: str, seconds: float) -> None:
        """Attribute transport-side stall time to one node."""
        key = (str(node_id), cause)
        self.node_stalls[key] = self.node_stalls.get(key, 0.0) + seconds

    # ------------------------------------------------------------------
    # Reading / export
    # ------------------------------------------------------------------
    def round_total(self, round_index: int) -> float:
        """Total attributed virtual seconds for one round (time causes)."""
        return sum(
            seconds
            for (idx, cause), seconds in self.intervals.items()
            if idx == round_index and cause not in COUNT_CAUSES
        )

    def cause_totals(self) -> Dict[str, float]:
        """Per-cause totals across all rounds (time causes in seconds)."""
        totals: Dict[str, float] = {}
        for (_, cause), seconds in self.intervals.items():
            totals[cause] = totals.get(cause, 0.0) + seconds
        for (_, cause), seconds in self.node_stalls.items():
            totals[cause] = totals.get(cause, 0.0) + seconds
        return totals

    def to_folded(self) -> str:
        """Folded-stack flame-graph lines, sorted, trailing newline.

        ``runtime;round_0007;mine 1000000`` — weight is integer virtual
        microseconds (count for :data:`COUNT_CAUSES`).  Transport stalls
        render as ``runtime;transport;<node>;<cause>``.  Sorted output +
        virtual-time weights make the export byte-identical across
        seeded replays.
        """
        lines: List[str] = []
        for (round_index, cause), value in self.intervals.items():
            weight = (
                int(value) if cause in COUNT_CAUSES
                else int(round(value * 1_000_000))
            )
            if weight <= 0:
                continue
            lines.append(f"runtime;round_{round_index:04d};{cause} {weight}")
        for (node_id, cause), seconds in self.node_stalls.items():
            weight = int(round(seconds * 1_000_000))
            if weight <= 0:
                continue
            lines.append(f"runtime;transport;{node_id};{cause} {weight}")
        lines.sort()
        return "\n".join(lines) + ("\n" if lines else "")

    def write_folded(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_folded())

    def flush(self, registry: Any, virtual_time: float) -> None:
        """Fold totals into ``registry`` (idempotent: flushes once).

        Emits ``pipeline_stall_seconds{cause=...}`` counters (count
        causes go to ``pipeline_stall_events_total{cause=...}``),
        per-node ``pipeline_node_stall_seconds{node=,cause=}``, and a
        ``pipeline_occupancy`` gauge: attributed-busy virtual time over
        the run's virtual span (> 1 means rounds overlapped — the whole
        point of pipelining).
        """
        if self._flushed:
            return
        self._flushed = True
        busy = 0.0
        cause_seconds: Dict[str, float] = {}
        cause_counts: Dict[str, float] = {}
        for (_, cause), value in sorted(self.intervals.items()):
            if cause in COUNT_CAUSES:
                cause_counts[cause] = cause_counts.get(cause, 0.0) + value
            else:
                cause_seconds[cause] = cause_seconds.get(cause, 0.0) + value
                busy += value
        for cause, seconds in sorted(cause_seconds.items()):
            registry.inc("pipeline_stall_seconds", seconds, cause=cause)
        for cause, count in sorted(cause_counts.items()):
            registry.inc("pipeline_stall_events_total", count, cause=cause)
        for (node_id, cause), seconds in sorted(self.node_stalls.items()):
            registry.inc(
                "pipeline_node_stall_seconds", seconds,
                node=node_id, cause=cause,
            )
            busy += seconds
        if virtual_time > 0:
            registry.set("pipeline_occupancy", busy / virtual_time)


def load_folded(text: str) -> List[Tuple[str, int]]:
    """Parse folded-stack lines back into ``(stack, weight)`` pairs."""
    out: List[Tuple[str, int]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, weight = line.rpartition(" ")
        out.append((stack, int(weight)))
    return out
