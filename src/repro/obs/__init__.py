"""``repro.obs`` — zero-dependency market observability.

One :class:`Observability` object bundles the three instruments every
layer shares:

* :class:`~repro.obs.registry.MetricsRegistry` — labeled counters,
  gauges, and histograms (``obs.registry``);
* :class:`~repro.obs.trace.Tracer` — the structured per-round span/event
  trace with deterministic JSONL export (``obs.tracer``);
* :class:`~repro.common.timing.PhaseTimer` — wall-clock phase totals
  (``obs.timer``), folded into the registry as
  ``auction_phase_seconds{phase=...}`` histograms per round.

The default everywhere is :data:`NULL_OBS`: every write is a no-op, so
instrumented code costs (nearly) nothing until a caller opts in by
passing a live ``Observability()``.  Instrumentation is read-only by
contract — it must never change an auction outcome; the differential
suite runs with observability enabled on both engines to enforce it.

See docs/OBSERVABILITY.md for the metric catalog and trace schema, and
``python -m repro.obs.report`` for the trace summary CLI.
"""

from __future__ import annotations

from typing import Any, List, Optional, Union

from repro.common.timing import NULL_TIMER, NullTimer, PhaseTimer
from repro.obs.monitors import MonitorSuite, Violation
from repro.obs.registry import (
    LabeledRegistry,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    snapshot_diff,
)
from repro.obs.trace import NULL_TRACER, NullTracer, TraceContext, Tracer

__all__ = [
    "Observability",
    "NullObservability",
    "NULL_OBS",
    "resolve",
    "MetricsRegistry",
    "LabeledRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceContext",
    "MonitorSuite",
    "Violation",
    "snapshot_diff",
    # telemetry plane (repro.obs.telemetry, imported at the bottom)
    "TelemetryPayload",
    "TelemetryPublisher",
    "TelemetryAggregator",
    "capture_task",
    "capture_payload",
    "merge_payload",
]


class Observability:
    """Live instrument bundle handed down through the layers."""

    enabled = True

    __slots__ = (
        "run_id", "registry", "tracer", "timer", "monitors", "flight",
        "telemetry",
    )

    def __init__(
        self,
        run_id: str = "run",
        monitors: Optional[MonitorSuite] = None,
        flight: Optional[Any] = None,
        telemetry: bool = False,
    ) -> None:
        self.run_id = run_id
        self.registry: MetricsRegistry = MetricsRegistry()
        self.tracer: Tracer = Tracer()
        self.timer: PhaseTimer = PhaseTimer()
        #: optional runtime invariant checks (repro.obs.monitors),
        #: evaluated via :meth:`check_outcome` after every cleared block
        self.monitors = monitors
        #: optional repro.obs.flight.FlightRecorder — bound to this
        #: bundle so protocol drivers can frame rounds and dump on abort
        self.flight = flight
        #: opt into the distributed telemetry plane: process-pool tasks
        #: (shard fan-out, mini-auction waves) run under worker-local
        #: bundles whose deltas are merged back here under worker/shard
        #: labels (repro.obs.telemetry).  Off by default so existing
        #: traces stay byte-identical for bundles that never opted in.
        self.telemetry = telemetry
        if flight is not None:
            flight.bind(self)

    def scoped(self, **labels: object) -> "Observability":
        """A view sharing this tracer/timer but stamping ``labels`` on
        every metric series (e.g. ``mechanism="decloud"``)."""
        view = Observability.__new__(Observability)
        view.run_id = self.run_id
        view.registry = self.registry.labeled(**labels)  # type: ignore[assignment]
        view.tracer = self.tracer
        view.timer = self.timer
        view.monitors = self.monitors
        view.flight = self.flight
        view.telemetry = self.telemetry
        return view

    def check_outcome(
        self,
        outcome: Any,
        source: str = "auction",
        round_index: Optional[int] = None,
    ) -> List[Violation]:
        """Run the attached monitor suite against one cleared outcome.

        Emits one ``monitor.violation`` event plus a
        ``monitor_violations_total{monitor=...}`` increment per finding,
        bumps ``monitor_checks_total`` per monitor evaluated, triggers a
        flight-recorder dump when anything fired, and finally escalates
        in strict mode.  No-op without a suite attached.
        """
        suite = self.monitors
        if suite is None:
            return []
        violations = suite.check_outcome(outcome)
        for monitor in suite.monitors:
            self.registry.inc("monitor_checks_total", monitor=monitor.name)
        for violation in violations:
            self.tracer.event(
                "monitor.violation",
                monitor=violation.monitor,
                source=source,
                message=violation.message,
                **dict(violation.details),
            )
            self.registry.inc(
                "monitor_violations_total", monitor=violation.monitor
            )
        if violations:
            if self.flight is not None:
                self.flight.dump(
                    trigger="monitor",
                    error=violations[0].message,
                    round_index=round_index,
                )
            suite.escalate(violations)
        return violations

    def trace_jsonl(self, strip_wall: bool = False) -> str:
        return self.tracer.to_jsonl(strip_wall=strip_wall)

    def prometheus_text(self) -> str:
        base = self.registry
        while isinstance(base, LabeledRegistry):
            base = base._base
        return base.to_prometheus_text()


class NullObservability:
    """Shared inert bundle: the off-by-default path."""

    enabled = False

    __slots__ = ()

    run_id = "null"
    registry: NullRegistry = NULL_REGISTRY
    tracer: NullTracer = NULL_TRACER
    timer: NullTimer = NULL_TIMER
    monitors = None
    flight = None
    telemetry = False

    def scoped(self, **labels: object) -> "NullObservability":
        return self

    def check_outcome(
        self,
        outcome: Any,
        source: str = "auction",
        round_index: Optional[int] = None,
    ) -> List[Violation]:
        return []

    def trace_jsonl(self, strip_wall: bool = False) -> str:
        return ""

    def prometheus_text(self) -> str:
        return ""


NULL_OBS = NullObservability()

ObservabilityLike = Union[Observability, NullObservability]


def resolve(obs: Optional[ObservabilityLike]) -> ObservabilityLike:
    """Map ``None`` to the shared no-op bundle."""
    return NULL_OBS if obs is None else obs


# Imported last: repro.obs.telemetry reaches back into this module at
# call time (worker bundles), so the import must follow the definitions.
from repro.obs.telemetry import (  # noqa: E402
    TelemetryAggregator,
    TelemetryPayload,
    TelemetryPublisher,
    capture_payload,
    capture_task,
    merge_payload,
)
