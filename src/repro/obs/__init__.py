"""``repro.obs`` — zero-dependency market observability.

One :class:`Observability` object bundles the three instruments every
layer shares:

* :class:`~repro.obs.registry.MetricsRegistry` — labeled counters,
  gauges, and histograms (``obs.registry``);
* :class:`~repro.obs.trace.Tracer` — the structured per-round span/event
  trace with deterministic JSONL export (``obs.tracer``);
* :class:`~repro.common.timing.PhaseTimer` — wall-clock phase totals
  (``obs.timer``), folded into the registry as
  ``auction_phase_seconds{phase=...}`` histograms per round.

The default everywhere is :data:`NULL_OBS`: every write is a no-op, so
instrumented code costs (nearly) nothing until a caller opts in by
passing a live ``Observability()``.  Instrumentation is read-only by
contract — it must never change an auction outcome; the differential
suite runs with observability enabled on both engines to enforce it.

See docs/OBSERVABILITY.md for the metric catalog and trace schema, and
``python -m repro.obs.report`` for the trace summary CLI.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.common.timing import NULL_TIMER, NullTimer, PhaseTimer
from repro.obs.registry import (
    LabeledRegistry,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    snapshot_diff,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Observability",
    "NullObservability",
    "NULL_OBS",
    "resolve",
    "MetricsRegistry",
    "LabeledRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "snapshot_diff",
]


class Observability:
    """Live instrument bundle handed down through the layers."""

    enabled = True

    __slots__ = ("run_id", "registry", "tracer", "timer")

    def __init__(self, run_id: str = "run") -> None:
        self.run_id = run_id
        self.registry: MetricsRegistry = MetricsRegistry()
        self.tracer: Tracer = Tracer()
        self.timer: PhaseTimer = PhaseTimer()

    def scoped(self, **labels: object) -> "Observability":
        """A view sharing this tracer/timer but stamping ``labels`` on
        every metric series (e.g. ``mechanism="decloud"``)."""
        view = Observability.__new__(Observability)
        view.run_id = self.run_id
        view.registry = self.registry.labeled(**labels)  # type: ignore[assignment]
        view.tracer = self.tracer
        view.timer = self.timer
        return view

    def trace_jsonl(self, strip_wall: bool = False) -> str:
        return self.tracer.to_jsonl(strip_wall=strip_wall)

    def prometheus_text(self) -> str:
        base = self.registry
        while isinstance(base, LabeledRegistry):
            base = base._base
        return base.to_prometheus_text()


class NullObservability:
    """Shared inert bundle: the off-by-default path."""

    enabled = False

    __slots__ = ()

    run_id = "null"
    registry: NullRegistry = NULL_REGISTRY
    tracer: NullTracer = NULL_TRACER
    timer: NullTimer = NULL_TIMER

    def scoped(self, **labels: object) -> "NullObservability":
        return self

    def trace_jsonl(self, strip_wall: bool = False) -> str:
        return ""

    def prometheus_text(self) -> str:
        return ""


NULL_OBS = NullObservability()

ObservabilityLike = Union[Observability, NullObservability]


def resolve(obs: Optional[ObservabilityLike]) -> ObservabilityLike:
    """Map ``None`` to the shared no-op bundle."""
    return NULL_OBS if obs is None else obs
