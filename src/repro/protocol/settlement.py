"""Token settlement: balances, escrow, and payout.

The agreement contract (§III-B) promises the provider its revenue once
the container ran; on a real chain this is enforced by escrowing the
client's payment when it calls ``accept`` and releasing it on completion.
This module implements that flow over an in-memory token ledger:

    accept -> escrow(payment)        funds leave the client
    completion report -> release     funds reach the provider
    provider default -> refund       funds return to the client

Balances can never go negative and the total token supply is conserved
through every operation — tested invariants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ContractError
from repro.obs import ObservabilityLike, resolve as resolve_obs


class EscrowState(enum.Enum):
    HELD = "held"
    RELEASED = "released"
    REFUNDED = "refunded"


@dataclass
class Escrow:
    """Funds locked for one agreement."""

    escrow_id: str
    client_id: str
    provider_id: str
    amount: float
    state: EscrowState = EscrowState.HELD


@dataclass
class TokenLedger:
    """Minimal account-model token ledger with escrow support.

    With a ``journal`` attached (``repro.store.NodeStore`` duck type)
    every state transition is written ahead: the public operations log a
    typed record first, then delegate to the private ``_apply_*``
    primitives.  Recovery replays records through the same primitives,
    so the replayed ledger is bit-identical to the pre-crash one.
    """

    balances: Dict[str, float] = field(default_factory=dict)
    escrows: Dict[str, Escrow] = field(default_factory=dict)
    _escrow_counter: int = 0
    #: optional write-ahead journal; set via ``NodeStore.attach``
    journal: Optional[object] = None

    # ------------------------------------------------------------------
    # Unjournaled apply primitives (the write path *after* the journal,
    # and the replay path during recovery)
    # ------------------------------------------------------------------
    def _apply_mint(self, account: str, amount: float) -> None:
        self.balances[account] = self.balances.get(account, 0.0) + amount

    def _apply_transfer(
        self, sender: str, recipient: str, amount: float
    ) -> None:
        self.balances[sender] = self.balance(sender) - amount
        self.balances[recipient] = self.balance(recipient) + amount

    def _apply_open(
        self,
        escrow_id: str,
        client_id: str,
        provider_id: str,
        amount: float,
    ) -> None:
        if self.balance(client_id) < amount - 1e-12:
            raise ContractError(
                f"client {client_id} cannot cover escrow of {amount:.6f}"
            )
        if escrow_id in self.escrows:
            raise ContractError(f"escrow {escrow_id} already exists")
        self.balances[client_id] = self.balance(client_id) - amount
        self.escrows[escrow_id] = Escrow(
            escrow_id=escrow_id,
            client_id=client_id,
            provider_id=provider_id,
            amount=amount,
        )
        # keep the id counter ahead of every id ever materialized, so
        # replayed and freshly-reserved ids can never collide
        prefix, _, suffix = escrow_id.rpartition("-")
        if prefix == "esc" and suffix.isdigit():
            self._escrow_counter = max(self._escrow_counter, int(suffix) + 1)

    def _apply_transition(self, escrow_id: str, to: str) -> None:
        escrow = self._held(escrow_id)
        if to == EscrowState.RELEASED.value:
            escrow.state = EscrowState.RELEASED
            self.balances[escrow.provider_id] = (
                self.balance(escrow.provider_id) + escrow.amount
            )
        elif to == EscrowState.REFUNDED.value:
            escrow.state = EscrowState.REFUNDED
            self.balances[escrow.client_id] = (
                self.balance(escrow.client_id) + escrow.amount
            )
        else:
            raise ContractError(f"unknown escrow transition {to!r}")

    def _restore_escrow(
        self,
        escrow_id: str,
        client_id: str,
        provider_id: str,
        amount: float,
        state: EscrowState,
    ) -> None:
        """Snapshot-load path: re-materialize an escrow in any state
        without touching balances (the snapshot's balances already
        reflect it)."""
        self.escrows[escrow_id] = Escrow(
            escrow_id=escrow_id,
            client_id=client_id,
            provider_id=provider_id,
            amount=amount,
            state=state,
        )
        prefix, _, suffix = escrow_id.rpartition("-")
        if prefix == "esc" and suffix.isdigit():
            self._escrow_counter = max(self._escrow_counter, int(suffix) + 1)

    def reserve_escrow_ids(self, count: int) -> List[str]:
        """The ids the next ``count`` escrow opens will be assigned.

        Pure read — the counter advances only when the opens apply — so
        a settlement intent can journal its ids before any state
        changes.
        """
        return [
            f"esc-{self._escrow_counter + i:06d}" for i in range(count)
        ]

    # ------------------------------------------------------------------
    # Basic accounting
    # ------------------------------------------------------------------
    def mint(self, account: str, amount: float) -> None:
        """Credit new tokens (the miners' emission reward in DeCloud)."""
        if amount < 0:
            raise ContractError("cannot mint a negative amount")
        if self.journal is not None:
            self.journal.log("token.mint", account=account, amount=amount)
        self._apply_mint(account, amount)

    def balance(self, account: str) -> float:
        return self.balances.get(account, 0.0)

    def total_supply(self) -> float:
        """All tokens: free balances plus funds held in escrow."""
        held = sum(
            e.amount for e in self.escrows.values() if e.state is EscrowState.HELD
        )
        return sum(self.balances.values()) + held

    def transfer(self, sender: str, recipient: str, amount: float) -> None:
        if amount < 0:
            raise ContractError("cannot transfer a negative amount")
        if self.balance(sender) < amount - 1e-12:
            raise ContractError(
                f"{sender} has {self.balance(sender):.6f}, needs {amount:.6f}"
            )
        if self.journal is not None:
            self.journal.log(
                "token.transfer",
                sender=sender,
                recipient=recipient,
                amount=amount,
            )
        self._apply_transfer(sender, recipient, amount)

    # ------------------------------------------------------------------
    # Escrow lifecycle
    # ------------------------------------------------------------------
    def open_escrow(
        self, client_id: str, provider_id: str, amount: float
    ) -> str:
        """Lock the client's payment pending service completion."""
        if amount < 0:
            raise ContractError("cannot escrow a negative amount")
        if self.balance(client_id) < amount - 1e-12:
            raise ContractError(
                f"client {client_id} cannot cover escrow of {amount:.6f}"
            )
        escrow_id = f"esc-{self._escrow_counter:06d}"
        if self.journal is not None:
            self.journal.log(
                "escrow.open",
                escrow_id=escrow_id,
                client_id=client_id,
                provider_id=provider_id,
                amount=amount,
            )
        self._apply_open(escrow_id, client_id, provider_id, amount)
        return escrow_id

    def _held(self, escrow_id: str) -> Escrow:
        escrow = self.escrows.get(escrow_id)
        if escrow is None:
            raise ContractError(f"unknown escrow {escrow_id}")
        if escrow.state is not EscrowState.HELD:
            raise ContractError(
                f"escrow {escrow_id} already {escrow.state.value}"
            )
        return escrow

    def release(self, escrow_id: str) -> None:
        """Service completed: pay the provider."""
        self._held(escrow_id)
        if self.journal is not None:
            self.journal.log(
                "escrow.transition",
                escrow_id=escrow_id,
                to=EscrowState.RELEASED.value,
            )
        self._apply_transition(escrow_id, EscrowState.RELEASED.value)

    def refund(self, escrow_id: str) -> None:
        """Provider defaulted: return funds to the client."""
        self._held(escrow_id)
        if self.journal is not None:
            self.journal.log(
                "escrow.transition",
                escrow_id=escrow_id,
                to=EscrowState.REFUNDED.value,
            )
        self._apply_transition(escrow_id, EscrowState.REFUNDED.value)

    def held_for(self, provider_id: str) -> List[Escrow]:
        return [
            e
            for e in self.escrows.values()
            if e.provider_id == provider_id and e.state is EscrowState.HELD
        ]


def apply_settlement_intent(
    ledger: TokenLedger,
    entries: List[Dict],
    auto_fund: bool,
) -> Dict[str, str]:
    """Apply one block's settlement intent through the ledger primitives.

    Shared by the live write path (after the intent record is journaled)
    and recovery replay, so both produce bit-identical ledger state.
    Returns request id -> escrow id.
    """
    escrow_ids: Dict[str, str] = {}
    for entry in entries:
        client = entry["client_id"]
        amount = entry["amount"]
        if auto_fund and ledger.balance(client) < amount:
            ledger._apply_mint(client, amount - ledger.balance(client))
        ledger._apply_open(
            entry["escrow_id"], client, entry["provider_id"], amount
        )
        escrow_ids[entry["request_id"]] = entry["escrow_id"]
    return escrow_ids


@dataclass
class SettlementProcessor:
    """Drives settlement for a block's matches through the token ledger.

    With an :class:`~repro.obs.Observability` attached, settlement
    outcomes land in the registry as
    ``settlement_escrows_total{outcome=opened|released|refunded}`` plus
    per-block counters, so a running market can answer "how much value
    settled, how much was refunded" without replaying the ledger.
    """

    ledger: TokenLedger
    obs: Optional[ObservabilityLike] = None
    #: settlements already processed, by block hash — duplicate-delivery safe
    _settled_blocks: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.obs = resolve_obs(self.obs)

    def settle_block(
        self,
        matches,
        auto_fund: bool = False,
        block_hash: str = "",
    ) -> Dict[str, str]:
        """Open one escrow per match; returns request id -> escrow id.

        With ``auto_fund`` clients are minted exactly the payment they
        owe (useful in simulations that do not model wealth).  Passing
        the ``block_hash`` makes settlement idempotent per block: gossip
        that redelivers an already-settled block returns the original
        escrow ids instead of locking the client's funds twice.
        """
        obs = self.obs
        if block_hash and block_hash in self._settled_blocks:
            if obs.enabled:
                obs.registry.inc("settlement_duplicate_blocks_total")
            return dict(self._settled_blocks[block_hash])
        matches = list(matches)
        reserved = self.ledger.reserve_escrow_ids(len(matches))
        entries = [
            {
                "escrow_id": escrow_id,
                "request_id": match.request.request_id,
                "client_id": match.request.client_id,
                "provider_id": match.offer.provider_id,
                "amount": match.payment,
            }
            for escrow_id, match in zip(reserved, matches)
        ]
        # One intent record covers the whole block: the mints and escrow
        # opens below are deliberately *not* journaled individually, so a
        # crash mid-settlement replays the block atomically (all entries
        # or none) instead of resurrecting a partial settlement.
        if self.ledger.journal is not None:
            self.ledger.journal.log(
                "settlement.block",
                block_hash=block_hash,
                auto_fund=auto_fund,
                entries=entries,
            )
        escrow_ids = apply_settlement_intent(self.ledger, entries, auto_fund)
        escrowed = sum(entry["amount"] for entry in entries)
        if block_hash:
            self._settled_blocks[block_hash] = dict(escrow_ids)
        if obs.enabled:
            obs.registry.inc("settlement_blocks_total")
            obs.registry.inc(
                "settlement_escrows_total", len(escrow_ids), outcome="opened"
            )
            obs.registry.inc("settlement_value_total", escrowed,
                             outcome="opened")
        return escrow_ids

    def complete(self, escrow_id: str) -> None:
        amount = self.ledger.escrows[escrow_id].amount \
            if escrow_id in self.ledger.escrows else 0.0
        self.ledger.release(escrow_id)
        if self.obs.enabled:
            self.obs.registry.inc(
                "settlement_escrows_total", outcome="released"
            )
            self.obs.registry.inc(
                "settlement_value_total", amount, outcome="released"
            )

    def default(self, escrow_id: str) -> None:
        amount = self.ledger.escrows[escrow_id].amount \
            if escrow_id in self.ledger.escrows else 0.0
        self.ledger.refund(escrow_id)
        if self.obs.enabled:
            self.obs.registry.inc(
                "settlement_escrows_total", outcome="refunded"
            )
            self.obs.registry.inc(
                "settlement_value_total", amount, outcome="refunded"
            )
