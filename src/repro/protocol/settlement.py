"""Token settlement: balances, escrow, and payout.

The agreement contract (§III-B) promises the provider its revenue once
the container ran; on a real chain this is enforced by escrowing the
client's payment when it calls ``accept`` and releasing it on completion.
This module implements that flow over an in-memory token ledger:

    accept -> escrow(payment)        funds leave the client
    completion report -> release     funds reach the provider
    provider default -> refund       funds return to the client

Balances can never go negative and the total token supply is conserved
through every operation — tested invariants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ContractError
from repro.obs import ObservabilityLike, resolve as resolve_obs


class EscrowState(enum.Enum):
    HELD = "held"
    RELEASED = "released"
    REFUNDED = "refunded"


@dataclass
class Escrow:
    """Funds locked for one agreement."""

    escrow_id: str
    client_id: str
    provider_id: str
    amount: float
    state: EscrowState = EscrowState.HELD


@dataclass
class TokenLedger:
    """Minimal account-model token ledger with escrow support."""

    balances: Dict[str, float] = field(default_factory=dict)
    escrows: Dict[str, Escrow] = field(default_factory=dict)
    _escrow_counter: int = 0

    # ------------------------------------------------------------------
    # Basic accounting
    # ------------------------------------------------------------------
    def mint(self, account: str, amount: float) -> None:
        """Credit new tokens (the miners' emission reward in DeCloud)."""
        if amount < 0:
            raise ContractError("cannot mint a negative amount")
        self.balances[account] = self.balances.get(account, 0.0) + amount

    def balance(self, account: str) -> float:
        return self.balances.get(account, 0.0)

    def total_supply(self) -> float:
        """All tokens: free balances plus funds held in escrow."""
        held = sum(
            e.amount for e in self.escrows.values() if e.state is EscrowState.HELD
        )
        return sum(self.balances.values()) + held

    def transfer(self, sender: str, recipient: str, amount: float) -> None:
        if amount < 0:
            raise ContractError("cannot transfer a negative amount")
        if self.balance(sender) < amount - 1e-12:
            raise ContractError(
                f"{sender} has {self.balance(sender):.6f}, needs {amount:.6f}"
            )
        self.balances[sender] = self.balance(sender) - amount
        self.balances[recipient] = self.balance(recipient) + amount

    # ------------------------------------------------------------------
    # Escrow lifecycle
    # ------------------------------------------------------------------
    def open_escrow(
        self, client_id: str, provider_id: str, amount: float
    ) -> str:
        """Lock the client's payment pending service completion."""
        if amount < 0:
            raise ContractError("cannot escrow a negative amount")
        if self.balance(client_id) < amount - 1e-12:
            raise ContractError(
                f"client {client_id} cannot cover escrow of {amount:.6f}"
            )
        self.balances[client_id] = self.balance(client_id) - amount
        escrow_id = f"esc-{self._escrow_counter:06d}"
        self._escrow_counter += 1
        self.escrows[escrow_id] = Escrow(
            escrow_id=escrow_id,
            client_id=client_id,
            provider_id=provider_id,
            amount=amount,
        )
        return escrow_id

    def _held(self, escrow_id: str) -> Escrow:
        escrow = self.escrows.get(escrow_id)
        if escrow is None:
            raise ContractError(f"unknown escrow {escrow_id}")
        if escrow.state is not EscrowState.HELD:
            raise ContractError(
                f"escrow {escrow_id} already {escrow.state.value}"
            )
        return escrow

    def release(self, escrow_id: str) -> None:
        """Service completed: pay the provider."""
        escrow = self._held(escrow_id)
        escrow.state = EscrowState.RELEASED
        self.balances[escrow.provider_id] = (
            self.balance(escrow.provider_id) + escrow.amount
        )

    def refund(self, escrow_id: str) -> None:
        """Provider defaulted: return funds to the client."""
        escrow = self._held(escrow_id)
        escrow.state = EscrowState.REFUNDED
        self.balances[escrow.client_id] = (
            self.balance(escrow.client_id) + escrow.amount
        )

    def held_for(self, provider_id: str) -> List[Escrow]:
        return [
            e
            for e in self.escrows.values()
            if e.provider_id == provider_id and e.state is EscrowState.HELD
        ]


@dataclass
class SettlementProcessor:
    """Drives settlement for a block's matches through the token ledger.

    With an :class:`~repro.obs.Observability` attached, settlement
    outcomes land in the registry as
    ``settlement_escrows_total{outcome=opened|released|refunded}`` plus
    per-block counters, so a running market can answer "how much value
    settled, how much was refunded" without replaying the ledger.
    """

    ledger: TokenLedger
    obs: Optional[ObservabilityLike] = None
    #: settlements already processed, by block hash — duplicate-delivery safe
    _settled_blocks: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.obs = resolve_obs(self.obs)

    def settle_block(
        self,
        matches,
        auto_fund: bool = False,
        block_hash: str = "",
    ) -> Dict[str, str]:
        """Open one escrow per match; returns request id -> escrow id.

        With ``auto_fund`` clients are minted exactly the payment they
        owe (useful in simulations that do not model wealth).  Passing
        the ``block_hash`` makes settlement idempotent per block: gossip
        that redelivers an already-settled block returns the original
        escrow ids instead of locking the client's funds twice.
        """
        obs = self.obs
        if block_hash and block_hash in self._settled_blocks:
            if obs.enabled:
                obs.registry.inc("settlement_duplicate_blocks_total")
            return dict(self._settled_blocks[block_hash])
        escrow_ids: Dict[str, str] = {}
        escrowed = 0.0
        for match in matches:
            client = match.request.client_id
            if auto_fund and self.ledger.balance(client) < match.payment:
                self.ledger.mint(
                    client, match.payment - self.ledger.balance(client)
                )
            escrow_ids[match.request.request_id] = self.ledger.open_escrow(
                client_id=client,
                provider_id=match.offer.provider_id,
                amount=match.payment,
            )
            escrowed += match.payment
        if block_hash:
            self._settled_blocks[block_hash] = dict(escrow_ids)
        if obs.enabled:
            obs.registry.inc("settlement_blocks_total")
            obs.registry.inc(
                "settlement_escrows_total", len(escrow_ids), outcome="opened"
            )
            obs.registry.inc("settlement_value_total", escrowed,
                             outcome="opened")
        return escrow_ids

    def complete(self, escrow_id: str) -> None:
        amount = self.ledger.escrows[escrow_id].amount \
            if escrow_id in self.ledger.escrows else 0.0
        self.ledger.release(escrow_id)
        if self.obs.enabled:
            self.obs.registry.inc(
                "settlement_escrows_total", outcome="released"
            )
            self.obs.registry.inc(
                "settlement_value_total", amount, outcome="released"
            )

    def default(self, escrow_id: str) -> None:
        amount = self.ledger.escrows[escrow_id].amount \
            if escrow_id in self.ledger.escrows else 0.0
        self.ledger.refund(escrow_id)
        if self.obs.enabled:
            self.obs.registry.inc(
                "settlement_escrows_total", outcome="refunded"
            )
            self.obs.registry.inc(
                "settlement_value_total", amount, outcome="refunded"
            )
