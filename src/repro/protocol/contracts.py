"""Smart-contract agreement layer (paper §III-B).

After a block with an allocation suggestion is accepted by the miner
network, clients *accept* or *deny* their suggested match by invoking
contract methods.  The contract checks that the referenced block exists,
that the allocation it carries really associates the client's request
with the claimed provider, and then walks an agreement state machine:

    SUGGESTED --accept--> AGREED
    SUGGESTED --deny----> DENIED   (provider must resubmit its offer;
                                    the client takes a reputation penalty)

Providers cannot reject clients (§III-B), but may require a minimum
client reputation, enforced here at ``accept`` time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ContractError
from repro.ledger.chain import Blockchain
from repro.protocol.reputation import ReputationLedger


class AgreementState(enum.Enum):
    SUGGESTED = "suggested"
    AGREED = "agreed"
    DENIED = "denied"
    #: the suggesting block was orphaned (fork, failed quorum) — the
    #: suggestion is void and must be neither accepted nor denied
    VOID = "void"


@dataclass
class Agreement:
    """State of one suggested (request, offer) match."""

    request_id: str
    offer_id: str
    client_id: str
    provider_id: str
    payment: float
    block_hash: str
    state: AgreementState = AgreementState.SUGGESTED


@dataclass
class AllocationContract:
    """The agreement smart contract, executing against a chain view."""

    chain: Blockchain
    reputation: ReputationLedger = field(default_factory=ReputationLedger)
    provider_thresholds: Dict[str, float] = field(default_factory=dict)
    _agreements: Dict[Tuple[str, str], Agreement] = field(default_factory=dict)
    #: offers whose clients denied the match — providers must resubmit
    resubmission_queue: List[str] = field(default_factory=list)

    def set_provider_threshold(self, provider_id: str, threshold: float) -> None:
        """Provider opts into a minimum client reputation (§III-B)."""
        if not 0.0 <= threshold <= 1.0:
            raise ContractError("reputation threshold must be in [0, 1]")
        self.provider_thresholds[provider_id] = threshold

    # ------------------------------------------------------------------
    # Contract state ingestion
    # ------------------------------------------------------------------
    def register_block(self, block_hash: str, client_index: Dict[str, str]) -> None:
        """Load a block's allocation suggestion into contract storage.

        ``client_index`` maps request id -> client id (the chain payload
        stores only ids; the market-level identity mapping comes from the
        round's participants).
        """
        block = self.chain.find_block(block_hash)
        if block is None:
            raise ContractError(f"unknown block {block_hash[:12]}...")
        body = block.require_complete()
        for entry in body.allocation.get("matches", []):
            request_id = entry["request_id"]
            key = (block_hash, request_id)
            if key in self._agreements:
                continue
            self._agreements[key] = Agreement(
                request_id=request_id,
                offer_id=entry["offer_id"],
                client_id=client_index.get(request_id, ""),
                provider_id=entry.get("provider_id", ""),
                payment=float(entry["payment"]),
                block_hash=block_hash,
            )

    def void_block(self, block_hash: str) -> List[Agreement]:
        """Void every still-suggested agreement of an orphaned block.

        Called when a registered block loses its place on the chain (a
        fork outran it) or its proposal failed quorum after agreements
        were optimistically loaded.  Voiding carries no reputation
        penalty — the *network* failed, not the client — and the bids
        simply resubmit in a later round (paper §III-B denial path).
        Already-entered (AGREED/DENIED) agreements are left untouched.
        """
        voided: List[Agreement] = []
        for (bhash, _), agreement in self._agreements.items():
            if bhash != block_hash:
                continue
            if agreement.state is AgreementState.SUGGESTED:
                agreement.state = AgreementState.VOID
                self.resubmission_queue.append(agreement.offer_id)
                voided.append(agreement)
        return voided

    def _lookup(self, block_hash: str, request_id: str) -> Agreement:
        agreement = self._agreements.get((block_hash, request_id))
        if agreement is None:
            raise ContractError(
                f"no suggested allocation for request {request_id} in "
                f"block {block_hash[:12]}..."
            )
        return agreement

    # ------------------------------------------------------------------
    # Contract methods invoked by clients
    # ------------------------------------------------------------------
    def accept(self, client_id: str, block_hash: str, request_id: str) -> Agreement:
        """The ``accept`` method: enter the agreement with the provider."""
        agreement = self._lookup(block_hash, request_id)
        self._check_caller(agreement, client_id)
        if agreement.state is not AgreementState.SUGGESTED:
            raise ContractError(
                f"request {request_id} is already {agreement.state.value}"
            )
        threshold = self.provider_thresholds.get(agreement.provider_id)
        if threshold is not None and not self.reputation.meets_threshold(
            client_id, threshold
        ):
            raise ContractError(
                f"client {client_id} reputation "
                f"{self.reputation.score(client_id):.2f} below provider "
                f"threshold {threshold:.2f}"
            )
        agreement.state = AgreementState.AGREED
        self.reputation.record_acceptance(client_id)
        return agreement

    def deny(self, client_id: str, block_hash: str, request_id: str) -> Agreement:
        """The ``deny`` method: reject the match, penalizing reputation.

        The provider's offer joins the resubmission queue so it can be
        posted again in a later round (paper §III-B).
        """
        agreement = self._lookup(block_hash, request_id)
        self._check_caller(agreement, client_id)
        if agreement.state is not AgreementState.SUGGESTED:
            raise ContractError(
                f"request {request_id} is already {agreement.state.value}"
            )
        agreement.state = AgreementState.DENIED
        self.reputation.record_rejection(client_id)
        self.resubmission_queue.append(agreement.offer_id)
        return agreement

    @staticmethod
    def _check_caller(agreement: Agreement, client_id: str) -> None:
        if agreement.client_id and agreement.client_id != client_id:
            raise ContractError(
                f"caller {client_id} does not own request "
                f"{agreement.request_id}"
            )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def state_of(self, block_hash: str, request_id: str) -> AgreementState:
        return self._lookup(block_hash, request_id).state

    def agreements(self, state: Optional[AgreementState] = None) -> List[Agreement]:
        out = list(self._agreements.values())
        if state is not None:
            out = [a for a in out if a.state is state]
        return out
