"""The allocation function miners execute and collectively verify.

Bridges the generic ledger (opaque plaintext bytes) to the DeCloud
auction: decode plaintexts into requests/offers, run the mechanism seeded
by the block evidence, and emit the deterministic JSON payload stored in
the block body.  Determinism is what makes peer verification by
re-execution possible, so inputs are canonically ordered before the
auction runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.core.outcome import AuctionOutcome
from repro.market.bids import Offer, Request, decode_bid_payload


def decode_round(
    plaintexts: Dict[str, List[bytes]]
) -> Tuple[List[Request], List[Offer]]:
    """Decode and canonically order one round's bids.

    A plaintext that fails to decode invalidates only that participant's
    bid (they encrypted garbage — equivalent to not bidding), never the
    round.
    """
    requests: List[Request] = []
    offers: List[Offer] = []
    for sender_id in sorted(plaintexts):
        for raw in plaintexts[sender_id]:
            try:
                bid = decode_bid_payload(raw)
            except ValidationError:
                continue
            if isinstance(bid, Request):
                if bid.client_id == sender_id:
                    requests.append(bid)
            else:
                if bid.provider_id == sender_id:
                    offers.append(bid)
    requests.sort(key=lambda r: (r.submit_time, r.request_id))
    offers.sort(key=lambda o: (o.submit_time, o.offer_id))
    return requests, offers


class DecloudAllocator:
    """Callable handed to :class:`~repro.ledger.miner.Miner`.

    Stateless with respect to results (every call recomputes from its
    arguments); ``last_outcome`` is a convenience cache for the node that
    wants the rich object rather than the serialized payload.
    """

    def __init__(self, config: Optional[AuctionConfig] = None) -> None:
        self.config = config or AuctionConfig()
        self.last_outcome: Optional[AuctionOutcome] = None

    def __call__(
        self, plaintexts: Dict[str, List[bytes]], evidence: bytes
    ) -> Dict:
        requests, offers = decode_round(plaintexts)
        auction = DecloudAuction(self.config)
        outcome = auction.run(requests, offers, evidence=evidence)
        self.last_outcome = outcome
        return outcome.to_payload()
