"""Identity registry: binding participant ids to public keys.

Sealed-bid transactions are signed, but a signature only proves the
sender holds *some* key — deciding **which key speaks for which id** is
an identity layer.  On a public chain that binding is implicit (your id
*is* your key); DeCloud ids are market-level names (client/provider ids
inside bids), so the registry pins each name to the first public key
that claims it, and rejects later conflicting claims — the same
first-come binding Namecoin-style systems use.

The exposure protocol consults the registry on submission: a transaction
whose sender id is bound to a different key is rejected before it ever
reaches a mempool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.errors import ProtocolError


@dataclass
class IdentityRegistry:
    """First-come-first-served id -> public-key bindings."""

    bindings: Dict[str, int] = field(default_factory=dict)

    def register(self, participant_id: str, public_key: int) -> None:
        """Bind ``participant_id`` to ``public_key``.

        Re-registering the same pair is idempotent; claiming a taken id
        with a different key raises.
        """
        existing = self.bindings.get(participant_id)
        if existing is None:
            self.bindings[participant_id] = public_key
            return
        if existing != public_key:
            raise ProtocolError(
                f"id {participant_id!r} is already bound to another key"
            )

    def is_bound(self, participant_id: str) -> bool:
        return participant_id in self.bindings

    def key_of(self, participant_id: str) -> int:
        key = self.bindings.get(participant_id)
        if key is None:
            raise ProtocolError(f"id {participant_id!r} is not registered")
        return key

    def verify(self, participant_id: str, public_key: int) -> bool:
        """True when ``public_key`` speaks for ``participant_id``.

        Unregistered ids verify against nothing — callers should
        register on first contact (the exposure protocol does).
        """
        return self.bindings.get(participant_id) == public_key

    def check_or_register(self, participant_id: str, public_key: int) -> None:
        """Register on first contact; reject a key mismatch afterwards."""
        if not self.is_bound(participant_id):
            self.register(participant_id, public_key)
            return
        if not self.verify(participant_id, public_key):
            raise ProtocolError(
                f"transaction claims id {participant_id!r} with a key that "
                "does not match its registered binding"
            )
