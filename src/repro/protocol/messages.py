"""Protocol message types carried over the broadcast network (Fig. 2).

Every message optionally carries a :class:`~repro.obs.trace.TraceContext`
captured from the sender's tracer at broadcast time.  The fault-injecting
network and the receiving inboxes use it to anchor delivery spans and
fault events on the *sender's* span, so one protocol round renders as a
single causal tree across clients, providers, and miners.  With
observability off the field stays ``None`` and the wire format is
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ledger.block import Block, BlockPreamble, KeyReveal
from repro.ledger.transaction import SealedBidTransaction
from repro.obs.trace import TraceContext

TOPIC_BIDS = "bids"
TOPIC_PREAMBLE = "preamble"
TOPIC_REVEALS = "reveals"
TOPIC_BLOCK = "block"


@dataclass(frozen=True)
class BidSubmission:
    """A participant posts a sealed bid to the miner network."""

    transaction: SealedBidTransaction
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class PreambleAnnouncement:
    """Miner A shares the mined preamble (PoW solved, bids still sealed)."""

    preamble: BlockPreamble
    miner_id: str
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class RevealMessage:
    """A participant discloses its temporary key for the current round."""

    reveal: KeyReveal
    preamble_hash: str
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class BlockProposal:
    """Miner A shares the completed block (body with allocation)."""

    block: Block
    miner_id: str
    trace: Optional[TraceContext] = None
