"""Protocol message types carried over the broadcast network (Fig. 2).

Every message optionally carries a :class:`~repro.obs.trace.TraceContext`
captured from the sender's tracer at broadcast time.  The fault-injecting
network and the receiving inboxes use it to anchor delivery spans and
fault events on the *sender's* span, so one protocol round renders as a
single causal tree across clients, providers, and miners.  With
observability off the field stays ``None`` and the wire format is
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Tuple

from repro.ledger.block import Block, BlockPreamble, KeyReveal
from repro.ledger.transaction import SealedBidTransaction
from repro.obs.trace import TraceContext

TOPIC_BIDS = "bids"
TOPIC_PREAMBLE = "preamble"
TOPIC_REVEALS = "reveals"
TOPIC_BLOCK = "block"
TOPIC_REVEAL_REQUEST = "reveal-request"
TOPIC_TELEMETRY = "telemetry"


@dataclass(frozen=True)
class BidSubmission:
    """A participant posts a sealed bid to the miner network.

    ``sequence`` is the submission's position in the driver's global
    submit order.  Gossip can deliver submissions in any order, so the
    async runtime's miners keep it next to the admitted transaction and
    compose preambles in sequence order — the arrival order a lockstep
    driver gets for free from its synchronous bus.  ``None`` (legacy
    senders) means "no ordering claim"; such transactions sort last.
    """

    transaction: SealedBidTransaction
    trace: Optional[TraceContext] = None
    sequence: Optional[int] = None


@dataclass(frozen=True)
class PreambleAnnouncement:
    """Miner A shares the mined preamble (PoW solved, bids still sealed)."""

    preamble: BlockPreamble
    miner_id: str
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class RevealMessage:
    """A participant discloses its temporary key for the current round."""

    reveal: KeyReveal
    preamble_hash: str
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class RevealRequest:
    """The leader re-requests reveals that never (validly) arrived.

    Carries the preamble itself so a participant whose preamble gossip
    was dropped can still answer — :meth:`Participant.reveals_for` needs
    the transaction list to know which keys are safe to disclose.
    ``txids`` narrows the request to what the leader reports missing.
    """

    preamble: BlockPreamble
    txids: Tuple[str, ...]
    miner_id: str
    attempt: int = 1
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class BlockProposal:
    """Miner A shares the completed block (body with allocation)."""

    block: Block
    miner_id: str
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class TelemetryFrame:
    """One node's periodic metrics delta on the telemetry topic.

    ``frame`` is a :func:`~repro.obs.registry.snapshot_diff` — plain
    dicts, so the frame pickles over the asyncio TCP hub exactly as it
    rides the deterministic transport.  ``seq`` numbers frames per node:
    the aggregator drops duplicates and orders gauge writes by it.
    """

    node_id: str
    seq: int
    frame: Mapping[str, Any]
    trace: Optional[TraceContext] = None
