"""Protocol message types carried over the broadcast network (Fig. 2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ledger.block import Block, BlockPreamble, KeyReveal
from repro.ledger.transaction import SealedBidTransaction

TOPIC_BIDS = "bids"
TOPIC_PREAMBLE = "preamble"
TOPIC_REVEALS = "reveals"
TOPIC_BLOCK = "block"


@dataclass(frozen=True)
class BidSubmission:
    """A participant posts a sealed bid to the miner network."""

    transaction: SealedBidTransaction


@dataclass(frozen=True)
class PreambleAnnouncement:
    """Miner A shares the mined preamble (PoW solved, bids still sealed)."""

    preamble: BlockPreamble
    miner_id: str


@dataclass(frozen=True)
class RevealMessage:
    """A participant discloses its temporary key for the current round."""

    reveal: KeyReveal
    preamble_hash: str


@dataclass(frozen=True)
class BlockProposal:
    """Miner A shares the completed block (body with allocation)."""

    block: Block
    miner_id: str
