"""Simulated TEE remote attestation (paper §II-D).

DeCloud protects clients from malicious providers by running containers
inside hardware enclaves (SGX/TrustZone); a client that demanded the
``sgx`` resource should only enter an agreement with a provider that can
*prove* enclave support.  Real deployments use the vendor's remote
attestation service; this module simulates that trust root:

* an :class:`AttestationService` (the vendor) signs **quotes** binding a
  provider to an enclave measurement;
* providers present quotes; verifiers check the signature, the expected
  measurement, and freshness;
* :func:`enforce_attestation` screens a block's matches — any
  SGX-demanding match whose provider lacks a valid quote is flagged so
  the client can `deny` it at the contract.

The signature is the repository's Schnorr scheme, so forged or replayed
quotes fail exactly like forged transactions do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ProtocolError
from repro.cryptosim import hashing, schnorr

SGX_RESOURCE = "sgx"


@dataclass(frozen=True)
class Quote:
    """A signed attestation: this provider runs this enclave code."""

    provider_id: str
    enclave_measurement: str
    issued_at: float
    signature: Tuple[int, int]

    def signing_payload(self) -> bytes:
        return hashing.hash_concat(
            self.provider_id.encode("utf-8"),
            self.enclave_measurement.encode("utf-8"),
            repr(self.issued_at).encode("ascii"),
        )


@dataclass
class AttestationService:
    """The vendor's signing root (e.g., Intel's attestation service)."""

    keypair: schnorr.KeyPair = field(default=None)  # type: ignore[assignment]
    max_quote_age: float = 24.0

    def __post_init__(self) -> None:
        if self.keypair is None:
            self.keypair = schnorr.KeyPair.generate(seed=b"attestation-root")

    @property
    def public_key(self) -> int:
        return self.keypair.public

    def issue_quote(
        self, provider_id: str, enclave_measurement: str, now: float
    ) -> Quote:
        """Sign a quote (the provider passed local attestation)."""
        unsigned = Quote(
            provider_id=provider_id,
            enclave_measurement=enclave_measurement,
            issued_at=now,
            signature=(0, 0),
        )
        signature = schnorr.sign(
            self.keypair.secret, unsigned.signing_payload()
        )
        return Quote(
            provider_id=provider_id,
            enclave_measurement=enclave_measurement,
            issued_at=now,
            signature=signature,
        )

    def verify_quote(
        self,
        quote: Quote,
        expected_measurement: Optional[str] = None,
        now: Optional[float] = None,
    ) -> bool:
        """Check signature, measurement, and freshness."""
        if not schnorr.verify(
            self.public_key, quote.signing_payload(), quote.signature
        ):
            return False
        if (
            expected_measurement is not None
            and quote.enclave_measurement != expected_measurement
        ):
            return False
        if now is not None and now - quote.issued_at > self.max_quote_age:
            return False
        return True


@dataclass
class AttestationRegistry:
    """Quotes presented by providers, keyed by provider id."""

    service: AttestationService
    quotes: Dict[str, Quote] = field(default_factory=dict)

    def present(self, quote: Quote) -> None:
        """A provider publishes its quote (e.g., alongside its offer)."""
        if not self.service.verify_quote(quote):
            raise ProtocolError(
                f"invalid attestation quote from {quote.provider_id}"
            )
        self.quotes[quote.provider_id] = quote

    def is_attested(
        self,
        provider_id: str,
        expected_measurement: Optional[str] = None,
        now: Optional[float] = None,
    ) -> bool:
        quote = self.quotes.get(provider_id)
        if quote is None:
            return False
        return self.service.verify_quote(
            quote, expected_measurement=expected_measurement, now=now
        )


def enforce_attestation(
    matches: Sequence,
    registry: AttestationRegistry,
    expected_measurement: Optional[str] = None,
    now: Optional[float] = None,
) -> List:
    """Matches whose SGX demand is *not* backed by a valid quote.

    The client should `deny` these at the contract; everything else may
    proceed to agreement.  Matches without an SGX demand pass through.
    """
    violations = []
    for match in matches:
        if match.request.resources.get(SGX_RESOURCE, 0.0) <= 0:
            continue
        if not registry.is_attested(
            match.offer.provider_id,
            expected_measurement=expected_measurement,
            now=now,
        ):
            violations.append(match)
    return violations
