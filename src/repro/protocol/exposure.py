"""The two-phase bid exposure protocol (paper §III, Fig. 2).

Phase 1 — *sealed bidding*: participants encrypt their requests/offers
with fresh temporary keys, sign them, and broadcast them to the miner
network.  The winning miner assembles the **preamble** (parent hash +
sealed bids + proof-of-work) and shares it.  No one — miner included —
can read any bid yet.

Phase 2 — *allocation and agreement*: participants whose bids appear in a
valid preamble broadcast their temporary keys.  The miner decrypts, runs
the DeCloud auction with the preamble hash as randomization evidence, and
shares the block **body** (keys + allocation suggestion).  Every other
miner re-executes the auction and accepts the block only on an exact
match; participants then accept or deny via the smart contract layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.common.errors import ProtocolError
from repro.core.config import AuctionConfig
from repro.core.outcome import AuctionOutcome
from repro.cryptosim import schnorr
from repro.ledger.block import Block, BlockPreamble, KeyReveal
from repro.ledger.miner import Miner, make_sealed_bid
from repro.ledger.network import BroadcastNetwork
from repro.ledger.transaction import SealedBidTransaction
from repro.market.bids import Offer, Request
from repro.protocol import messages
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.identity import IdentityRegistry


@dataclass
class Participant:
    """A client or provider with a signing identity and pending reveals.

    The key pair is derived from the participant id by default — handy
    for reproducible simulations, but it means anyone can derive the
    same key.  Deployments wanting unforgeable identities pass
    ``fresh_key=True`` (random key) and register the public key in an
    :class:`~repro.protocol.identity.IdentityRegistry`.
    """

    participant_id: str
    keypair: schnorr.KeyPair = field(default=None)  # type: ignore[assignment]
    fresh_key: bool = False
    _pending_reveals: Dict[str, KeyReveal] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.keypair is None:
            if self.fresh_key:
                self.keypair = schnorr.KeyPair.generate()
            else:
                self.keypair = schnorr.KeyPair.generate(
                    seed=self.participant_id.encode("utf-8")
                )

    def seal(self, bid: Union[Request, Offer]) -> SealedBidTransaction:
        """Encrypt and sign one bid; the reveal is held until phase 2."""
        owner = (
            bid.client_id if isinstance(bid, Request) else bid.provider_id
        )
        if owner != self.participant_id:
            raise ProtocolError(
                f"participant {self.participant_id} cannot submit a bid "
                f"owned by {owner}"
            )
        tx, reveal = make_sealed_bid(
            sender_id=self.participant_id,
            keypair=self.keypair,
            plaintext=bid.to_json(),
        )
        self._pending_reveals[tx.txid()] = reveal
        return tx

    def reveals_for(self, preamble: BlockPreamble) -> List[KeyReveal]:
        """Keys for this participant's bids included in ``preamble``.

        A rational participant only reveals keys for bids the (valid)
        preamble actually contains — revealing anything else would leak
        a live bid.
        """
        included = {tx.txid() for tx in preamble.transactions}
        out: List[KeyReveal] = []
        for txid, reveal in list(self._pending_reveals.items()):
            if txid in included:
                out.append(reveal)
                del self._pending_reveals[txid]
        return out


@dataclass
class RoundResult:
    """Everything one protocol round produced."""

    block: Block
    outcome: AuctionOutcome
    accepted_by: List[str]


class ExposureProtocol:
    """Drives full rounds of the two-phase protocol over a miner network."""

    def __init__(
        self,
        miners: Sequence[Miner],
        network: Optional[BroadcastNetwork] = None,
        registry: Optional["IdentityRegistry"] = None,
    ) -> None:
        if not miners:
            raise ProtocolError("at least one miner is required")
        self.miners = list(miners)
        self.network = network or BroadcastNetwork()
        self.registry = registry
        self._round = 0
        for miner in self.miners:
            self.network.subscribe(
                messages.TOPIC_BIDS,
                lambda _sender, payload, m=miner: m.accept_transaction(
                    payload.transaction
                ),
            )

    def submit(
        self, participant: Participant, bid: Union[Request, Offer]
    ) -> SealedBidTransaction:
        """Phase 1: seal a bid and gossip it to every miner.

        With an identity registry configured, the sender's public key is
        bound to its id on first contact and checked ever after —
        impersonating a registered id fails here, before any mempool.
        """
        tx = participant.seal(bid)
        if self.registry is not None:
            self.registry.check_or_register(
                tx.sender_id, tx.sender_public
            )
        self.network.broadcast(
            messages.TOPIC_BIDS,
            messages.BidSubmission(transaction=tx),
            sender=participant.participant_id,
        )
        return tx

    def run_round(
        self, participants: Sequence[Participant]
    ) -> RoundResult:
        """Mine one block end to end and return the verified outcome.

        The miner that "gets the block" rotates round-robin — consensus
        forks are out of scope (the paper builds on, not contributes to,
        the underlying consensus).
        """
        leader = self.miners[self._round % len(self.miners)]
        self._round += 1

        # Phase 1 completion: leader mines the preamble over sealed bids.
        preamble = leader.build_preamble()
        self.network.broadcast(
            messages.TOPIC_PREAMBLE,
            messages.PreambleAnnouncement(
                preamble=preamble, miner_id=leader.miner_id
            ),
            sender=leader.miner_id,
        )

        # Peers validate the preamble's PoW before anyone reveals.
        for miner in self.miners:
            if not preamble.check_pow(miner.chain.difficulty_bits):
                raise ProtocolError("preamble failed proof-of-work check")

        # Phase 2: participants with included bids disclose their keys.
        reveals: List[KeyReveal] = []
        for participant in participants:
            for reveal in participant.reveals_for(preamble):
                self.network.broadcast(
                    messages.TOPIC_REVEALS,
                    messages.RevealMessage(
                        reveal=reveal, preamble_hash=preamble.hash()
                    ),
                    sender=participant.participant_id,
                )
                reveals.append(reveal)

        body = leader.build_body(preamble, tuple(reveals))
        block = Block(preamble=preamble, body=body)
        self.network.broadcast(
            messages.TOPIC_BLOCK,
            messages.BlockProposal(block=block, miner_id=leader.miner_id),
            sender=leader.miner_id,
        )

        # Collective verification: every miner re-executes the allocation
        # and appends only on an exact payload match.
        accepted_by: List[str] = []
        for miner in self.miners:
            miner.accept_block(block)
            accepted_by.append(miner.miner_id)

        allocator = leader.allocate
        outcome = (
            allocator.last_outcome
            if isinstance(allocator, DecloudAllocator)
            and allocator.last_outcome is not None
            else AuctionOutcome()
        )
        return RoundResult(
            block=block, outcome=outcome, accepted_by=accepted_by
        )


def build_miner_network(
    num_miners: int,
    config: Optional[AuctionConfig] = None,
    difficulty_bits: int = 8,
) -> ExposureProtocol:
    """Convenience factory: ``num_miners`` DeCloud miners on one bus."""
    miners = [
        Miner(
            miner_id=f"miner-{i}",
            allocate=DecloudAllocator(config),
            difficulty_bits=difficulty_bits,
        )
        for i in range(num_miners)
    ]
    return ExposureProtocol(miners=miners)
