"""The two-phase bid exposure protocol (paper §III, Fig. 2).

Phase 1 — *sealed bidding*: participants encrypt their requests/offers
with fresh temporary keys, sign them, and broadcast them to the miner
network.  The winning miner assembles the **preamble** (parent hash +
sealed bids + proof-of-work) and shares it.  No one — miner included —
can read any bid yet.

Phase 2 — *allocation and agreement*: participants whose bids appear in a
valid preamble broadcast their temporary keys.  The miner decrypts, runs
the DeCloud auction with the preamble hash as randomization evidence, and
shares the block **body** (keys + allocation suggestion).  Every other
miner re-executes the auction and accepts the block only on an exact
match; participants then accept or deny via the smart contract layer.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.common.errors import (
    ByzantineFaultError,
    InsecureKeyWarning,
    ProtocolError,
    QuorumError,
    ReproError,
    RevealTimeoutError,
)
from repro.common.timing import PhaseTimer, resolve
from repro.core.config import AuctionConfig
from repro.obs import ObservabilityLike, resolve as resolve_obs
from repro.core.outcome import AuctionOutcome
from repro.cryptosim import schnorr
from repro.ledger.block import Block, BlockPreamble, KeyReveal
from repro.ledger.miner import Miner, make_sealed_bid
from repro.ledger.network import BroadcastNetwork
from repro.ledger.transaction import SealedBidTransaction
from repro.market.bids import Offer, Request
from repro.protocol import messages
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.identity import IdentityRegistry


@dataclass
class Participant:
    """A client or provider with a signing identity and pending reveals.

    Protocol examples and deployments should pass ``fresh_key=True`` (a
    random, unforgeable key) and register the public key in an
    :class:`~repro.protocol.identity.IdentityRegistry` — that is the
    documented default for anything beyond a reproducible simulation.
    Simulations that *want* id-derived keys opt in with
    ``deterministic=True``; deriving them silently would let anyone
    recompute anyone's secret, so the silent fallback (kept for
    backwards compatibility) emits :class:`InsecureKeyWarning`.

    ``seal_seed`` additionally derives the temporary bid keys and nonces
    deterministically, making whole protocol rounds bit-reproducible —
    chaos experiments rely on this to replay identical fault scenarios.
    """

    participant_id: str
    keypair: schnorr.KeyPair = field(default=None)  # type: ignore[assignment]
    fresh_key: bool = False
    deterministic: bool = False
    seal_seed: Optional[bytes] = None
    _pending_reveals: Dict[str, KeyReveal] = field(default_factory=dict)
    #: reveals already disclosed for a preamble — kept for re-requests
    _disclosed: Dict[str, KeyReveal] = field(default_factory=dict)
    _seal_counter: int = 0

    def __post_init__(self) -> None:
        if self.keypair is None:
            if self.fresh_key:
                self.keypair = schnorr.KeyPair.generate()
            else:
                if not self.deterministic:
                    warnings.warn(
                        f"participant {self.participant_id!r} uses an "
                        "id-derived keypair that anyone can recompute; pass "
                        "fresh_key=True for an unforgeable identity or "
                        "deterministic=True to acknowledge the simulation "
                        "trade-off",
                        InsecureKeyWarning,
                        stacklevel=2,
                    )
                self.keypair = schnorr.KeyPair.generate(
                    seed=self.participant_id.encode("utf-8")
                )

    def _next_seal_material(self) -> Dict[str, bytes]:
        """Temporary key/nonce for the next seal (seeded when requested)."""
        if self.seal_seed is None:
            return {}
        tag = (
            self.seal_seed
            + self.participant_id.encode("utf-8")
            + self._seal_counter.to_bytes(8, "big")
        )
        return {
            "temp_key": hashlib.sha256(b"tempkey" + tag).digest(),
            "nonce": hashlib.sha256(b"nonce" + tag).digest()[:16],
            "blind": hashlib.sha256(b"blind" + tag).digest(),
        }

    def seal(self, bid: Union[Request, Offer]) -> SealedBidTransaction:
        """Encrypt and sign one bid; the reveal is held until phase 2."""
        owner = (
            bid.client_id if isinstance(bid, Request) else bid.provider_id
        )
        if owner != self.participant_id:
            raise ProtocolError(
                f"participant {self.participant_id} cannot submit a bid "
                f"owned by {owner}"
            )
        tx, reveal = make_sealed_bid(
            sender_id=self.participant_id,
            keypair=self.keypair,
            plaintext=bid.to_json(),
            **self._next_seal_material(),
        )
        self._seal_counter += 1
        self._pending_reveals[tx.txid()] = reveal
        return tx

    def reveals_for(self, preamble: BlockPreamble) -> List[KeyReveal]:
        """Keys for this participant's bids included in ``preamble``.

        A rational participant only reveals keys for bids the (valid)
        preamble actually contains — revealing anything else would leak
        a live bid.  Disclosed reveals move out of the pending set (a
        second call returns nothing new) but stay available to
        :meth:`re_reveal` so lost gossip can be re-requested.
        """
        included = {tx.txid() for tx in preamble.transactions}
        out: List[KeyReveal] = []
        for txid, reveal in list(self._pending_reveals.items()):
            if txid in included:
                out.append(reveal)
                self._disclosed[txid] = reveal
                del self._pending_reveals[txid]
        return out

    def re_reveal(
        self,
        preamble: BlockPreamble,
        txids: Optional[Iterable[str]] = None,
    ) -> List[KeyReveal]:
        """Re-disclose already-revealed keys for ``preamble``.

        Disclosure is idempotent — the keys left secrecy the moment
        :meth:`reveals_for` returned them, so answering a retry leaks
        nothing new.  ``txids`` narrows the answer to what the requester
        reports missing.
        """
        included = {tx.txid() for tx in preamble.transactions}
        if txids is not None:
            included &= set(txids)
        return [
            reveal
            for txid, reveal in self._disclosed.items()
            if txid in included
        ]


def leader_rotation(miners: Sequence[Miner], round_index: int) -> List[Miner]:
    """Round-robin proposer order for ``round_index``.

    Shared by the lockstep driver and the async runtime so the two
    engines can never disagree on who leads (or who falls back next)
    for a given round.
    """
    pivot = round_index % len(miners)
    return list(miners[pivot:]) + list(miners[:pivot])


@dataclass
class RoundResult:
    """Everything one protocol round produced."""

    block: Block
    outcome: AuctionOutcome
    accepted_by: List[str]
    #: sealed bids excluded because their keys never (validly) arrived
    excluded_txids: Tuple[str, ...] = ()
    #: miners whose proposals were rejected before one reached quorum
    failed_proposers: Tuple[str, ...] = ()


class ExposureProtocol:
    """Drives full rounds of the two-phase protocol over a miner network.

    The driver degrades gracefully under faults instead of assuming the
    lossless synchronous bus of the original design:

    * **Reveal deadline + retry**: key reveals are collected from gossip
      with a per-attempt delivery budget; missing reveals are re-requested
      with backoff up to ``max_reveal_retries`` times, after which the
      still-sealed bids are excluded and the auction runs on the
      surviving set (the paper's denial path).  Only when *every* bid
      stays sealed does the round abort with
      :class:`~repro.common.errors.RevealTimeoutError`.
    * **Quorum commit**: miners verify a proposed block first and append
      only once a majority of the network agrees, so a rejected proposal
      never leaves chains diverged.
    * **Leader fallback**: when the leader's body fails peer re-execution
      (equivocation, doctored allocation), the next live miner rebuilds
      the body from the same preamble and reveal set; the round fails
      with :class:`~repro.common.errors.ByzantineFaultError` only if no
      proposer reaches quorum.
    """

    def __init__(
        self,
        miners: Sequence[Miner],
        network: Optional[BroadcastNetwork] = None,
        registry: Optional["IdentityRegistry"] = None,
        submit_retries: int = 2,
        max_reveal_retries: int = 2,
        reveal_deadline: Optional[float] = None,
        reveal_backoff: float = 2.0,
        timer: Optional[PhaseTimer] = None,
        obs: Optional[ObservabilityLike] = None,
        store: Optional[object] = None,
        start_round: int = 0,
    ) -> None:
        if not miners:
            raise ProtocolError("at least one miner is required")
        if submit_retries < 0 or max_reveal_retries < 0:
            raise ProtocolError("retry budgets must be non-negative")
        self.miners = list(miners)
        self.network = network or BroadcastNetwork()
        self.registry = registry
        self.submit_retries = submit_retries
        self.max_reveal_retries = max_reveal_retries
        self.reveal_deadline = reveal_deadline
        self.reveal_backoff = reveal_backoff
        #: optional observability bundle: the protocol emits the round
        #: span tree (seal -> round(mine, reveal, propose, verify,
        #: commit)), retry/exclusion/Byzantine events, and the ledger
        #: metrics (blocks mined, PoW iterations, block sizes)
        self.obs = resolve_obs(obs)
        #: optional phase timer: seal / mine / reveal / propose / verify /
        #: commit accumulate across every round this protocol drives.
        #: With observability on and no explicit timer, the bundle's
        #: timer is used so phases land in one place.
        if timer is None and self.obs.enabled:
            self.timer: "PhaseTimer | object" = self.obs.timer
        else:
            self.timer = resolve(timer)
        #: optional durable store (``repro.store.NodeStore``): round phase
        #: transitions are journaled through it so recovery knows exactly
        #: how far an in-flight round progressed before a crash.
        #: ``start_round`` resumes the leader rotation after a restart.
        self.store = store
        self._round = start_round
        #: global submission order, stamped onto every BidSubmission so
        #: order-sensitive consumers (the async runtime's miners) can
        #: reconstruct arrival order from permuted gossip
        self._submit_sequence = 0
        # A fault-injecting bus that can trace deliveries causally gets
        # the same bundle, so message fates land in the round's tree.
        attach_obs = getattr(self.network, "attach_obs", None)
        if attach_obs is not None and self.obs.enabled:
            attach_obs(self.obs)
        for miner in self.miners:
            self._subscribe_miner(miner)

    # ------------------------------------------------------------------
    # Network plumbing (fault-aware when the bus supports it)
    # ------------------------------------------------------------------
    def _subscribe_miner(self, miner: Miner) -> None:
        def on_bid(_sender: str, payload) -> None:
            try:
                miner.accept_transaction(payload.transaction)
            except ReproError:
                # A malformed or forged submission is the sender's
                # problem; it must not crash the receiving node.
                pass

        def on_preamble(_sender: str, payload) -> None:
            miner.accept_preamble(payload.preamble)

        def on_reveal(_sender: str, payload) -> None:
            miner.accept_reveal(payload.preamble_hash, payload.reveal)

        subscribe_node = getattr(self.network, "subscribe_node", None)
        for topic, handler in (
            (messages.TOPIC_BIDS, on_bid),
            (messages.TOPIC_PREAMBLE, on_preamble),
            (messages.TOPIC_REVEALS, on_reveal),
        ):
            if subscribe_node is not None:
                subscribe_node(miner.miner_id, topic, handler)
            else:
                self.network.subscribe(topic, handler)

    def _flush(self, budget: Optional[float] = None) -> None:
        """Drain a fault-injecting bus; a synchronous bus needs nothing."""
        flush = getattr(self.network, "flush", None)
        if flush is None:
            return
        if budget is None:
            flush()
        else:
            flush(until=self.network.now + budget)

    def _is_down(self, node_id: str) -> bool:
        is_down = getattr(self.network, "is_down", None)
        return bool(is_down(node_id)) if is_down is not None else False

    def _live_miners(self) -> List[Miner]:
        return [m for m in self.miners if not self._is_down(m.miner_id)]

    def _journal_phase(self, round_index: int, phase: str, **extra) -> None:
        """Write one ``round.phase`` marker ahead of the transition."""
        if self.store is not None:
            self.store.log(
                "round.phase", round=round_index, phase=phase, **extra
            )

    @property
    def quorum(self) -> int:
        """Verifying majority over the *whole* miner set, live or not."""
        return len(self.miners) // 2 + 1

    # ------------------------------------------------------------------
    # Phase 1: sealed bidding
    # ------------------------------------------------------------------
    def submit(
        self, participant: Participant, bid: Union[Request, Offer]
    ) -> SealedBidTransaction:
        """Phase 1: seal a bid and gossip it to every miner.

        With an identity registry configured, the sender's public key is
        bound to its id on first contact and checked ever after —
        impersonating a registered id fails here, before any mempool.
        On a lossy bus the submission is re-gossiped up to
        ``submit_retries`` times until every live miner's mempool holds
        it (the redundancy a real gossip overlay provides for free).
        """
        with self.timer.phase("seal"), self.obs.tracer.span(
            "seal", participant=participant.participant_id
        ):
            tx = participant.seal(bid)
            if self.registry is not None:
                self.registry.check_or_register(
                    tx.sender_id, tx.sender_public
                )
            txid = tx.txid()
            sequence = self._submit_sequence
            self._submit_sequence += 1
            attempts = 0
            for _attempt in range(self.submit_retries + 1):
                attempts += 1
                self.network.broadcast(
                    messages.TOPIC_BIDS,
                    messages.BidSubmission(
                        transaction=tx,
                        trace=self.obs.tracer.child_context(
                            actor=participant.participant_id
                        ),
                        sequence=sequence,
                    ),
                    sender=participant.participant_id,
                )
                self._flush()
                if all(txid in m.mempool for m in self._live_miners()):
                    break
        if self.obs.enabled:
            self.obs.registry.inc("protocol_seals_total")
            if attempts > 1:
                self.obs.registry.inc(
                    "protocol_submit_retries_total", attempts - 1
                )
        return tx

    # ------------------------------------------------------------------
    # Phase 2: reveal collection with deadline, retry, and backoff
    # ------------------------------------------------------------------
    def _collect_reveals(
        self,
        leader: Miner,
        preamble: BlockPreamble,
        participants: Sequence[Participant],
    ) -> Tuple[KeyReveal, ...]:
        phash = preamble.hash()
        included: Set[str] = {tx.txid() for tx in preamble.transactions}
        budget = self.reveal_deadline
        for attempt in range(self.max_reveal_retries + 1):
            inbox = leader.reveal_inbox.get(phash, {})
            missing = included - set(inbox)
            if not missing:
                break
            if attempt > 0 and self.obs.enabled:
                self.obs.tracer.event(
                    "reveal.retry", attempt=attempt, missing=len(missing)
                )
                self.obs.registry.inc("protocol_reveal_retries_total")
            for participant in participants:
                if self._is_down(participant.participant_id):
                    continue
                if attempt == 0:
                    reveals = participant.reveals_for(preamble)
                else:
                    reveals = participant.re_reveal(preamble, missing)
                for reveal in reveals:
                    self.network.broadcast(
                        messages.TOPIC_REVEALS,
                        messages.RevealMessage(
                            reveal=reveal,
                            preamble_hash=phash,
                            trace=self.obs.tracer.child_context(
                                actor=participant.participant_id
                            ),
                        ),
                        sender=participant.participant_id,
                    )
            self._flush(budget)
            if budget is not None:
                budget *= self.reveal_backoff
        return leader.collected_reveals(preamble)

    # ------------------------------------------------------------------
    # Full round
    # ------------------------------------------------------------------
    def run_round(
        self, participants: Sequence[Participant]
    ) -> RoundResult:
        """Mine one block end to end and return the verified outcome.

        The miner that "gets the block" rotates round-robin — consensus
        forks are out of scope (the paper builds on, not contributes to,
        the underlying consensus).  Crashed miners are skipped; if fewer
        live miners remain than the verification quorum the round aborts
        with :class:`~repro.common.errors.QuorumError`.

        With observability attached the round emits a ``round`` span
        containing ``mine``/``reveal``/``propose``/``verify``/``commit``
        children plus the degradation events (retries, exclusions,
        Byzantine rejections, fallbacks).  A round that aborts flushes
        its partial phase timings with an ``aborted`` marker instead of
        dropping them.
        """
        round_index = self._round
        flight = self.obs.flight if self.obs.enabled else None
        if flight is not None:
            flight.begin_round(round_index)
        try:
            with self.obs.tracer.span("round", index=round_index):
                try:
                    result = self._run_round(participants, round_index)
                except ReproError as exc:
                    # Partial phase timings are already in the timer;
                    # mark the round itself so reports show the abort
                    # instead of silently blending failed rounds into
                    # the totals.
                    self.timer.mark_aborted("round")
                    self._journal_phase(
                        round_index, "aborted", error=type(exc).__name__
                    )
                    if self.obs.enabled:
                        self.obs.tracer.event(
                            "round.aborted", error=type(exc).__name__
                        )
                        self.obs.registry.inc(
                            "protocol_rounds_aborted_total",
                            reason=type(exc).__name__,
                        )
                    raise
        except ReproError as exc:
            # Dump after the round span closed so the bundle carries the
            # complete failing frame, error status included.
            if flight is not None:
                flight.dump(
                    trigger=type(exc).__name__,
                    error=str(exc),
                    round_index=round_index,
                )
            raise
        if flight is not None:
            flight.end_round(round_index)
        return result

    def _run_round(
        self, participants: Sequence[Participant], round_index: int
    ) -> RoundResult:
        obs = self.obs
        tracer = obs.tracer
        reg = obs.registry
        if obs.enabled:
            reg.inc("protocol_rounds_total")
        rotation = leader_rotation(self.miners, self._round)
        self._round += 1
        live = self._live_miners()
        if len(live) < self.quorum:
            raise QuorumError(
                f"only {len(live)} of {len(self.miners)} miners are "
                f"reachable; quorum needs {self.quorum}"
            )
        leader = next(m for m in rotation if not self._is_down(m.miner_id))
        self._journal_phase(round_index, "seal", leader=leader.miner_id)

        # Phase 1 completion: leader mines the preamble over sealed bids.
        self._journal_phase(round_index, "mine", leader=leader.miner_id)
        with self.timer.phase("mine"), tracer.span(
            "mine", leader=leader.miner_id
        ):
            preamble = leader.build_preamble()
        if obs.enabled:
            # Ledger-side metrics: what the miner committed and what the
            # proof-of-work cost (deterministic PoW scans from nonce 0,
            # so the winning nonce counts the iterations).
            reg.inc("ledger_blocks_mined_total")
            reg.inc("ledger_pow_iterations_total", preamble.pow_nonce + 1)
            reg.observe("ledger_block_txs", len(preamble.transactions))
            reg.observe("ledger_block_bytes", len(preamble.canonical_bytes))
        leader.accept_preamble(preamble)  # local knowledge, no gossip needed
        self.network.broadcast(
            messages.TOPIC_PREAMBLE,
            messages.PreambleAnnouncement(
                preamble=preamble,
                miner_id=leader.miner_id,
                trace=tracer.child_context(actor=leader.miner_id),
            ),
            sender=leader.miner_id,
        )
        self._flush()

        # Peers validate the preamble's PoW before anyone reveals.
        for miner in live:
            if not preamble.check_pow(miner.chain.difficulty_bits):
                raise ProtocolError("preamble failed proof-of-work check")

        # Phase 2: collect screened reveals; excluded bids stay sealed.
        self._journal_phase(round_index, "preamble", hash=preamble.hash())
        self._journal_phase(round_index, "reveal")
        rejected_before = [len(m.rejected_reveals) for m in self.miners]
        with self.timer.phase("reveal"), tracer.span("reveal"):
            reveals = self._collect_reveals(leader, preamble, participants)
        revealed = {r.txid for r in reveals}
        excluded = tuple(
            tx.txid()
            for tx in preamble.transactions
            if tx.txid() not in revealed
        )
        if obs.enabled:
            reg.inc("protocol_reveals_total", len(reveals))
            # Byzantine evidence accumulated during this reveal phase:
            # reveals the miners screened out (forged keys, unknown
            # txids, undecryptable boxes) — one event per rejection.
            for miner, before in zip(self.miners, rejected_before):
                for reveal, reason in miner.rejected_reveals[before:]:
                    tracer.event(
                        "byzantine.reveal_rejected",
                        miner=miner.miner_id,
                        sender=reveal.sender_id,
                        txid=reveal.txid,
                        reason=reason,
                    )
                    reg.inc(
                        "protocol_byzantine_reveals_total", reason=reason
                    )
            # Exactly one exclusion event per bid whose key never
            # (validly) arrived — the trace-based suite pins this down.
            # Naming the sender makes the flight recorder's causal tree
            # point at the excluded *bidder*, not just an opaque txid.
            sender_of = {
                tx.txid(): tx.sender_id for tx in preamble.transactions
            }
            for txid in excluded:
                tracer.event(
                    "reveal.excluded", txid=txid, sender=sender_of[txid]
                )
            reg.inc("protocol_excluded_bids_total", len(excluded))
        if preamble.transactions and not reveals:
            if obs.enabled:
                tracer.event(
                    "reveal.timeout",
                    sealed=len(preamble.transactions),
                    retries=self.max_reveal_retries,
                )
                reg.inc("protocol_reveal_timeouts_total")
            raise RevealTimeoutError(
                f"no valid key reveal arrived for any of the "
                f"{len(preamble.transactions)} sealed bids after "
                f"{self.max_reveal_retries} retries"
            )

        # Proposal with fallback: the leader proposes first; if peers
        # reject its body, the next live miner rebuilds from the same
        # preamble and reveal set.
        failed: List[str] = []
        for proposer in rotation:
            if self._is_down(proposer.miner_id):
                continue
            if failed and obs.enabled:
                tracer.event("round.fallback", proposer=proposer.miner_id)
            self._journal_phase(
                round_index, "propose", proposer=proposer.miner_id
            )
            with self.timer.phase("propose"), tracer.span(
                "propose", proposer=proposer.miner_id
            ):
                body = proposer.build_body(preamble, reveals)
                block = Block(preamble=preamble, body=body)
                self.network.broadcast(
                    messages.TOPIC_BLOCK,
                    messages.BlockProposal(
                        block=block,
                        miner_id=proposer.miner_id,
                        trace=tracer.child_context(actor=proposer.miner_id),
                    ),
                    sender=proposer.miner_id,
                )
                self._flush()
            if obs.enabled:
                reg.inc("protocol_proposals_total")

            # Collective verification: every live miner re-executes the
            # allocation; commit happens only after quorum agrees, so a
            # rejected proposal leaves no chain diverged.
            approving: List[Miner] = []
            self._journal_phase(round_index, "verify")
            with self.timer.phase("verify"), tracer.span("verify"):
                for miner in self._live_miners():
                    try:
                        miner.verify_block(block)
                    except ReproError:
                        continue
                    approving.append(miner)
            if len(approving) < self.quorum:
                failed.append(proposer.miner_id)
                if obs.enabled:
                    tracer.event(
                        "proposal.rejected",
                        proposer=proposer.miner_id,
                        approvals=len(approving),
                        quorum=self.quorum,
                    )
                    reg.inc("protocol_proposals_rejected_total")
                continue
            self._journal_phase(round_index, "commit")
            with self.timer.phase("commit"), tracer.span("commit"):
                for miner in approving:
                    miner.commit_block(block)
            self._journal_phase(
                round_index, "committed", hash=block.hash()
            )
            if obs.enabled:
                reg.inc("protocol_commits_total")
                reg.set("protocol_last_quorum", len(approving))
                if failed:
                    reg.inc("protocol_fallbacks_total")
                tracer.event(
                    "round.committed",
                    height=block.preamble.height,
                    approvals=len(approving),
                    excluded=len(excluded),
                )

            allocator = proposer.allocate
            outcome = (
                allocator.last_outcome
                if isinstance(allocator, DecloudAllocator)
                and allocator.last_outcome is not None
                else AuctionOutcome()
            )
            # Runtime mechanism monitors audit the committed block's
            # outcome — in strict mode a violated §IV invariant aborts
            # the round (caught above, traced, and flight-dumped).
            obs.check_outcome(
                outcome, source="protocol", round_index=round_index
            )
            return RoundResult(
                block=block,
                outcome=outcome,
                accepted_by=[m.miner_id for m in approving],
                excluded_txids=excluded,
                failed_proposers=tuple(failed),
            )
        raise ByzantineFaultError(
            "no block proposal reached quorum; rejected proposers: "
            + ", ".join(failed)
        )


def build_miner_network(
    num_miners: int,
    config: Optional[AuctionConfig] = None,
    difficulty_bits: int = 8,
    obs: Optional[ObservabilityLike] = None,
) -> ExposureProtocol:
    """Convenience factory: ``num_miners`` DeCloud miners on one bus."""
    miners = [
        Miner(
            miner_id=f"miner-{i}",
            allocate=DecloudAllocator(config),
            difficulty_bits=difficulty_bits,
        )
        for i in range(num_miners)
    ]
    return ExposureProtocol(miners=miners, obs=obs)
