"""Reputation ledger (paper §III-B).

Clients may accept or reject suggested allocations; successive rejections
carry an escalating reputational penalty.  Providers cannot reject clients
but may set a minimum reputation threshold for the clients they serve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

INITIAL_SCORE = 1.0
MIN_SCORE = 0.0
MAX_SCORE = 1.0
BASE_PENALTY = 0.05
ACCEPT_RECOVERY = 0.02


@dataclass
class ReputationRecord:
    """Per-participant reputation state."""

    score: float = INITIAL_SCORE
    consecutive_rejections: int = 0
    total_accepts: int = 0
    total_rejections: int = 0


@dataclass
class ReputationLedger:
    """Tracks client behaviour; penalties escalate with rejection streaks."""

    records: Dict[str, ReputationRecord] = field(default_factory=dict)

    def _record(self, participant_id: str) -> ReputationRecord:
        record = self.records.get(participant_id)
        if record is None:
            record = ReputationRecord()
            self.records[participant_id] = record
        return record

    def score(self, participant_id: str) -> float:
        """Current score; unknown participants start at the initial score."""
        record = self.records.get(participant_id)
        return record.score if record is not None else INITIAL_SCORE

    def record_acceptance(self, participant_id: str) -> float:
        """An accepted allocation resets the streak and slowly recovers."""
        record = self._record(participant_id)
        record.consecutive_rejections = 0
        record.total_accepts += 1
        record.score = min(MAX_SCORE, record.score + ACCEPT_RECOVERY)
        return record.score

    def record_rejection(self, participant_id: str) -> float:
        """A rejection costs ``BASE_PENALTY * streak`` — successive
        rejections hurt progressively more (the paper's deterrent)."""
        record = self._record(participant_id)
        record.consecutive_rejections += 1
        record.total_rejections += 1
        penalty = BASE_PENALTY * record.consecutive_rejections
        record.score = max(MIN_SCORE, record.score - penalty)
        return record.score

    def meets_threshold(self, participant_id: str, threshold: float) -> bool:
        """Provider-side check: is the client reputable enough to serve?"""
        return self.score(participant_id) >= threshold


REPUTATION_RESOURCE = "reputation"


def attach_reputation_resource(requests, offers, ledger: ReputationLedger):
    """Fold provider reputation into the bidding language (§IV-B).

    "A resource type k can represent a broad range of resources, e.g.,
    latency, reputation, the presence of SGX."  Each offer is annotated
    with its provider's current score as a ``reputation`` resource;
    requests that already declare a ``reputation`` demand (amount =
    minimum score, significance 1.0 for a hard floor) then match through
    the standard feasibility/quality machinery — no special-casing in
    the mechanism.

    Returns new offer objects; requests pass through unchanged.
    """
    from repro.market.bids import Offer  # local import avoids a cycle

    annotated = []
    for offer in offers:
        resources = dict(offer.resources)
        resources[REPUTATION_RESOURCE] = ledger.score(offer.provider_id)
        annotated.append(
            Offer(
                offer_id=offer.offer_id,
                provider_id=offer.provider_id,
                submit_time=offer.submit_time,
                resources=resources,
                window=offer.window,
                bid=offer.bid,
                location=offer.location,
            )
        )
    return list(requests), annotated
