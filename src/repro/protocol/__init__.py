"""DeCloud's decentralized operation: two-phase bid exposure, contracts,
reputation."""

from repro.protocol.allocator import DecloudAllocator, decode_round
from repro.protocol.attestation import (
    AttestationRegistry,
    AttestationService,
    Quote,
    enforce_attestation,
)
from repro.protocol.contracts import (
    Agreement,
    AgreementState,
    AllocationContract,
)
from repro.protocol.exposure import (
    ExposureProtocol,
    Participant,
    RoundResult,
    build_miner_network,
)
from repro.protocol.identity import IdentityRegistry
from repro.protocol.reputation import (
    ReputationLedger,
    ReputationRecord,
    attach_reputation_resource,
)
from repro.protocol.settlement import (
    Escrow,
    EscrowState,
    SettlementProcessor,
    TokenLedger,
)

__all__ = [
    "DecloudAllocator",
    "decode_round",
    "AttestationRegistry",
    "AttestationService",
    "Quote",
    "enforce_attestation",
    "Agreement",
    "AgreementState",
    "AllocationContract",
    "ExposureProtocol",
    "IdentityRegistry",
    "Participant",
    "RoundResult",
    "build_miner_network",
    "ReputationLedger",
    "ReputationRecord",
    "attach_reputation_resource",
    "Escrow",
    "EscrowState",
    "SettlementProcessor",
    "TokenLedger",
]
