"""``repro.store`` — crash-safe durability for DeCloud nodes.

An append-only, CRC32-framed write-ahead log (``repro.store.wal``) plus
a snapshot/compaction layer (``repro.store.snapshot``) behind one
per-node façade, :class:`~repro.store.node.NodeStore`: chain extension,
mempool admission, settlement escrow transitions, and exposure-protocol
round phases are journaled *before* they take effect, and
:meth:`~repro.store.node.NodeStore.recover` replays snapshot + log back
into a consistent node — truncating torn tails and reporting any round
that was in flight so the supervisor (``repro.sim.chaos``) can resume or
abort-and-replay it.

See docs/DURABILITY.md for the record schema, the recovery state
machine, and the crash-matrix guarantees.
"""

from repro.store.node import (
    NodeStore,
    RecoveredState,
    state_digest_of,
    state_to_dict,
)
from repro.store.snapshot import (
    FileSnapshotStore,
    MemorySnapshotStore,
    decode_snapshot,
    encode_snapshot,
)
from repro.store.wal import (
    FileLogBackend,
    MemoryLogBackend,
    ScanResult,
    WriteAheadLog,
    encode_frame,
    scan_frames,
)
from repro.store import records

__all__ = [
    "NodeStore",
    "RecoveredState",
    "state_digest_of",
    "state_to_dict",
    "WriteAheadLog",
    "MemoryLogBackend",
    "FileLogBackend",
    "ScanResult",
    "encode_frame",
    "scan_frames",
    "MemorySnapshotStore",
    "FileSnapshotStore",
    "encode_snapshot",
    "decode_snapshot",
    "records",
]
