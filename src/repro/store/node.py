"""Per-node durable store: journal, snapshots, and crash recovery.

A :class:`NodeStore` is the durability boundary of one DeCloud node.
Mutable subsystems — the chain, the mempool, the token ledger, the
settlement processor, the exposure-protocol round driver — are
*attached* to it; each then journals its state transitions through
:meth:`NodeStore.log` **before** applying them (write-ahead).  After a
process crash, :meth:`NodeStore.recover` rebuilds the node bit-for-bit:
load the latest snapshot, truncate any torn log tail, replay the valid
record suffix in order, and report whether a protocol round was in
flight so the supervisor can resume or abort-and-replay it (see
``repro.sim.chaos`` for the supervision loop and the crash-point
differential matrix that proves recovered outcomes identical to
uninterrupted runs).

The recovered state is a pure function of (snapshot, valid log prefix):
recovery never consults surviving in-memory state, so recovering twice
— or from any snapshot + log-suffix split — yields the same state as
recovering once (property-tested).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.errors import (
    ContractError,
    LedgerError,
    RecoveryError,
    StoreError,
)
from repro.cryptosim import hashing
from repro.ledger.chain import Blockchain
from repro.ledger.mempool import Mempool
from repro.ledger.miner import Miner
from repro.ledger.pow import DEFAULT_DIFFICULTY_BITS
from repro.ledger.serialization import chain_from_json, chain_to_json, tx_to_dict
from repro.obs import ObservabilityLike, resolve as resolve_obs
from repro.protocol.settlement import (
    EscrowState,
    SettlementProcessor,
    TokenLedger,
    apply_settlement_intent,
)
from repro.store import records
from repro.store.snapshot import (
    MemorySnapshotStore,
    FileSnapshotStore,
    decode_snapshot,
    encode_snapshot,
)
from repro.store.wal import FileLogBackend, MemoryLogBackend, WriteAheadLog

#: round phases that mean "this round is finished, nothing in flight"
TERMINAL_PHASES = frozenset({"committed", "aborted"})


def state_to_dict(
    chain: Blockchain,
    mempool: Mempool,
    ledger: TokenLedger,
    settled_blocks: Dict[str, Dict[str, str]],
    last_round: Optional[Dict[str, Any]],
) -> Dict[str, Any]:
    """Canonical JSON-ready materialization of one node's durable state."""
    return {
        "chain": json.loads(chain_to_json(chain)),
        "mempool": [tx_to_dict(tx) for tx in mempool.peek(len(mempool))],
        "ledger": {
            "balances": dict(ledger.balances),
            "escrows": [
                {
                    "escrow_id": escrow.escrow_id,
                    "client_id": escrow.client_id,
                    "provider_id": escrow.provider_id,
                    "amount": escrow.amount,
                    "state": escrow.state.value,
                }
                for _eid, escrow in sorted(ledger.escrows.items())
            ],
            "counter": ledger._escrow_counter,
        },
        "settled_blocks": {
            block_hash: dict(mapping)
            for block_hash, mapping in settled_blocks.items()
        },
        "round": last_round,
    }


def state_digest_of(state: Dict[str, Any]) -> str:
    """Exact digest of a materialized state (bit-identical ⇔ equal)."""
    return hashing.sha256_hex(hashing.canonical_json(state))


@dataclass
class RecoveredState:
    """Everything :meth:`NodeStore.recover` rebuilt, plus how it got there."""

    chain: Blockchain
    mempool: Mempool
    ledger: TokenLedger
    settled_blocks: Dict[str, Dict[str, str]]
    #: the newest ``round.phase`` marker replayed (None: no round seen)
    last_round: Optional[Dict[str, Any]] = None
    #: newest marker per round index — the pipelined runtime keeps
    #: several rounds in flight at once, so recovery must see each one's
    #: own latest phase, not just the globally newest marker
    round_phases: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    replayed_records: int = 0
    truncated_bytes: int = 0
    snapshot_used: bool = False

    @property
    def committed_height(self) -> int:
        return len(self.chain)

    def round_in_flight(self) -> Optional[Dict[str, Any]]:
        """The round the node was inside when it died, if any.

        A round whose last durable phase marker is non-terminal was cut
        off mid-protocol.  If its block nevertheless made it into the
        recovered chain (the ``chain.append`` record beat the crash),
        the round is *decided* and only settlement may need resuming;
        otherwise the supervisor must abort-and-replay it.
        """
        if self.last_round is None:
            return None
        if self.last_round.get("phase") in TERMINAL_PHASES:
            return None
        return self.last_round

    def open_rounds(self) -> List[int]:
        """Every round whose newest durable marker is non-terminal.

        Under the lockstep driver this is at most one round (and equals
        :meth:`round_in_flight`); under the pipelined runtime a crash can
        leave round *N* mid-reveal while round *N+1* was already sealing,
        so the supervisor needs the full set to credit-or-replay each.
        """
        return sorted(
            index
            for index, marker in self.round_phases.items()
            if marker.get("phase") not in TERMINAL_PHASES
        )

    def state_dict(self) -> Dict[str, Any]:
        return state_to_dict(
            self.chain,
            self.mempool,
            self.ledger,
            self.settled_blocks,
            self.last_round,
        )

    def state_digest(self) -> str:
        return state_digest_of(self.state_dict())

    def make_miner(
        self,
        miner_id: str,
        allocate: Any,
        store: Optional["NodeStore"] = None,
    ) -> Miner:
        """A miner resuming this state (journaling into ``store`` if given)."""
        return Miner(
            miner_id=miner_id,
            allocate=allocate,
            difficulty_bits=self.chain.difficulty_bits,
            chain=self.chain,
            mempool=self.mempool,
            store=store,
        )

    def make_settlement(
        self,
        store: Optional["NodeStore"] = None,
        obs: Optional[ObservabilityLike] = None,
    ) -> SettlementProcessor:
        """A settlement processor resuming this ledger and settled-map."""
        processor = SettlementProcessor(ledger=self.ledger, obs=obs)
        processor._settled_blocks.update(self.settled_blocks)
        if store is not None:
            store.attach(settlement=processor)
        return processor


class NodeStore:
    """Write-ahead journal + snapshot store for one node."""

    def __init__(
        self,
        wal: Optional[WriteAheadLog] = None,
        snapshots: Optional[Any] = None,
        obs: Optional[ObservabilityLike] = None,
    ) -> None:
        self.wal = wal if wal is not None else WriteAheadLog()
        self.snapshots = (
            snapshots if snapshots is not None else MemorySnapshotStore()
        )
        self.obs = resolve_obs(obs)
        self._chain: Optional[Blockchain] = None
        self._mempool: Optional[Mempool] = None
        self._ledger: Optional[TokenLedger] = None
        self._settlement: Optional[SettlementProcessor] = None
        #: newest round.phase journaled through this handle (snapshotted)
        self.last_round_phase: Optional[Dict[str, Any]] = None
        #: newest marker per round index (see RecoveredState.round_phases)
        self.round_phases: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Construction sugar
    # ------------------------------------------------------------------
    @classmethod
    def in_memory(
        cls,
        obs: Optional[ObservabilityLike] = None,
        crash_point: Optional[Any] = None,
        keep_snapshots: int = 2,
    ) -> "NodeStore":
        """The deterministic test/chaos backend pair."""
        return cls(
            wal=WriteAheadLog(MemoryLogBackend(), crash_point=crash_point),
            snapshots=MemorySnapshotStore(keep=keep_snapshots),
            obs=obs,
        )

    @classmethod
    def at_path(
        cls,
        directory: str,
        fsync: bool = False,
        obs: Optional[ObservabilityLike] = None,
        crash_point: Optional[Any] = None,
        keep_snapshots: int = 2,
    ) -> "NodeStore":
        """File-backed store rooted at ``directory`` (wal.log + snapshots/)."""
        import os

        return cls(
            wal=WriteAheadLog(
                FileLogBackend(
                    os.path.join(directory, "wal.log"), fsync=fsync
                ),
                crash_point=crash_point,
            ),
            snapshots=FileSnapshotStore(
                os.path.join(directory, "snapshots"), keep=keep_snapshots
            ),
            obs=obs,
        )

    # ------------------------------------------------------------------
    # Attachment: who journals through this store
    # ------------------------------------------------------------------
    def attach(
        self,
        chain: Optional[Blockchain] = None,
        mempool: Optional[Mempool] = None,
        ledger: Optional[TokenLedger] = None,
        settlement: Optional[SettlementProcessor] = None,
    ) -> "NodeStore":
        """Wire subsystems to journal through this store (and be
        snapshotted by it)."""
        if chain is not None:
            self._chain = chain
            chain.journal = self
        if mempool is not None:
            self._mempool = mempool
            mempool.journal = self
        if ledger is not None:
            self._ledger = ledger
            ledger.journal = self
        if settlement is not None:
            self._settlement = settlement
            self.attach(ledger=settlement.ledger)
        return self

    # ------------------------------------------------------------------
    # The journal
    # ------------------------------------------------------------------
    def log(self, record_type: str, **data: Any) -> int:
        """Append one write-ahead record; returns its ``seq``.

        Called by attached subsystems immediately *before* they apply
        the transition the record describes.
        """
        payload = records.encode_data(record_type, data)
        seq = self.wal.append(record_type, payload)
        if record_type == records.ROUND_PHASE:
            self.last_round_phase = payload
            if "round" in payload:
                self.round_phases[payload["round"]] = payload
        if self.obs.enabled:
            self.obs.registry.inc(
                "store_wal_records_total", type=record_type
            )
        return seq

    # ------------------------------------------------------------------
    # Live-state materialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Canonical materialization of the attached subsystems now."""
        if self._chain is None or self._mempool is None:
            raise StoreError(
                "state materialization requires an attached chain and "
                "mempool"
            )
        ledger = self._ledger if self._ledger is not None else TokenLedger()
        settled = (
            dict(self._settlement._settled_blocks)
            if self._settlement is not None
            else {}
        )
        return state_to_dict(
            self._chain,
            self._mempool,
            ledger,
            settled,
            self.last_round_phase,
        )

    def state_digest(self) -> str:
        """Exact digest of the attached state (see :func:`state_digest_of`)."""
        return state_digest_of(self.state_dict())

    # ------------------------------------------------------------------
    # Snapshot + compaction
    # ------------------------------------------------------------------
    def snapshot(self, compact: bool = True) -> int:
        """Persist the attached state as of now; returns the covered seq.

        With ``compact`` (default) the WAL prefix the snapshot covers is
        dropped afterwards — recovery then starts from this snapshot and
        replays only the suffix.
        """
        last_seq = self.wal.next_seq - 1
        state = self.state_dict()
        self.snapshots.save(last_seq, encode_snapshot(state, last_seq))
        if compact:
            self.wal.compact(last_seq)
        self.log(records.SNAPSHOT_MARK, last_seq=last_seq)
        if self.obs.enabled:
            self.obs.registry.inc("store_snapshots_total")
            if compact:
                self.obs.registry.inc("store_compactions_total")
        return last_seq

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(
        self,
        difficulty_bits: int = DEFAULT_DIFFICULTY_BITS,
    ) -> RecoveredState:
        """Rebuild node state from snapshot + log; truncate torn tails.

        ``difficulty_bits`` seeds an *empty* recovered chain only — a
        snapshot or any replayed block carries its own difficulty.
        Raises :class:`RecoveryError` when the valid record sequence is
        internally inconsistent (damage beyond what tail truncation can
        explain).
        """
        obs = self.obs
        with obs.tracer.span("recover"):
            truncated = self.wal.truncate_tail()
            state = self._recover_state(difficulty_bits)
            state.truncated_bytes = truncated
        if obs.enabled:
            obs.registry.inc("store_recoveries_total")
            obs.registry.inc(
                "store_replayed_records_total", state.replayed_records
            )
            if truncated:
                obs.registry.inc("store_torn_tails_total")
                obs.registry.inc("store_truncated_bytes_total", truncated)
        return state

    def _recover_state(self, difficulty_bits: int) -> RecoveredState:
        chain: Blockchain
        mempool = Mempool()
        ledger = TokenLedger()
        settled_blocks: Dict[str, Dict[str, str]] = {}
        last_round: Optional[Dict[str, Any]] = None
        round_phases: Dict[int, Dict[str, Any]] = {}
        last_seq = -1
        snapshot_used = False

        raw = self.snapshots.latest()
        if raw is not None:
            snapshot_used = True
            state, last_seq = decode_snapshot(raw)
            try:
                chain = chain_from_json(json.dumps(state["chain"]))
            except LedgerError as exc:
                raise RecoveryError(
                    f"snapshot chain failed validation: {exc}"
                ) from exc
            for tx_data in state["mempool"]:
                mempool.submit(records.decode_tx({"tx": tx_data}))
            ledger.balances.update(state["ledger"]["balances"])
            for entry in state["ledger"]["escrows"]:
                ledger._restore_escrow(
                    escrow_id=entry["escrow_id"],
                    client_id=entry["client_id"],
                    provider_id=entry["provider_id"],
                    amount=entry["amount"],
                    state=EscrowState(entry["state"]),
                )
            ledger._escrow_counter = state["ledger"]["counter"]
            settled_blocks.update(
                {h: dict(m) for h, m in state["settled_blocks"].items()}
            )
            last_round = state["round"]
            if last_round is not None and "round" in last_round:
                # markers older than the snapshot were compacted away;
                # the newest one survives via the snapshot itself
                round_phases[last_round["round"]] = dict(last_round)
        else:
            chain = Blockchain(difficulty_bits=difficulty_bits)

        replayed = 0
        for record in self.wal.records(after_seq=last_seq):
            replayed += 1
            last_round = self._replay_record(
                record,
                chain,
                mempool,
                ledger,
                settled_blocks,
                last_round,
                round_phases,
            )
        self.last_round_phase = last_round
        self.round_phases = dict(round_phases)
        return RecoveredState(
            chain=chain,
            mempool=mempool,
            ledger=ledger,
            settled_blocks=settled_blocks,
            last_round=last_round,
            round_phases=round_phases,
            replayed_records=replayed,
            snapshot_used=snapshot_used,
        )

    @staticmethod
    def _replay_record(
        record: Dict[str, Any],
        chain: Blockchain,
        mempool: Mempool,
        ledger: TokenLedger,
        settled_blocks: Dict[str, Dict[str, str]],
        last_round: Optional[Dict[str, Any]],
        round_phases: Optional[Dict[int, Dict[str, Any]]] = None,
    ) -> Optional[Dict[str, Any]]:
        rtype = record["type"]
        data = record["data"]
        try:
            if rtype == records.MEMPOOL_ADMIT:
                mempool.submit(records.decode_tx(data))
            elif rtype == records.CHAIN_APPEND:
                block = records.decode_block(data)
                chain.append(block)
                mempool.remove(
                    [tx.txid() for tx in block.preamble.transactions]
                )
            elif rtype == records.SETTLEMENT_BLOCK:
                mapping = apply_settlement_intent(
                    ledger, data["entries"], data["auto_fund"]
                )
                if data["block_hash"]:
                    settled_blocks[data["block_hash"]] = mapping
            elif rtype == records.ESCROW_OPEN:
                ledger._apply_open(
                    escrow_id=data["escrow_id"],
                    client_id=data["client_id"],
                    provider_id=data["provider_id"],
                    amount=data["amount"],
                )
            elif rtype == records.ESCROW_TRANSITION:
                ledger._apply_transition(data["escrow_id"], data["to"])
            elif rtype == records.TOKEN_MINT:
                ledger._apply_mint(data["account"], data["amount"])
            elif rtype == records.TOKEN_TRANSFER:
                ledger._apply_transfer(
                    data["sender"], data["recipient"], data["amount"]
                )
            elif rtype == records.ROUND_PHASE:
                if round_phases is not None and "round" in data:
                    round_phases[data["round"]] = dict(data)
                return dict(data)
            elif rtype == records.SNAPSHOT_MARK:
                pass
            else:
                raise RecoveryError(
                    f"unknown record type {rtype!r} at seq {record['seq']}"
                )
        except (LedgerError, ContractError) as exc:
            raise RecoveryError(
                f"replaying {rtype} record seq {record['seq']} failed: {exc}"
            ) from exc
        return last_round

    def close(self) -> None:
        self.wal.close()
        self.snapshots.close()
