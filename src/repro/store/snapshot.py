"""Snapshots: materialized node state, keyed by the WAL seq they cover.

A snapshot is a single canonical-JSON document holding everything the
write-ahead log would otherwise have to replay from genesis: the chain
(audit JSON format), the pending mempool, the token ledger with its
escrows, the per-block settlement map, and the last round-phase marker.
``last_seq`` names the newest WAL record whose effect the snapshot
already contains — recovery loads the latest snapshot and replays only
records with ``seq > last_seq``, and compaction may drop everything at
or below it.

Backends mirror the WAL's: :class:`MemorySnapshotStore` for
deterministic tests, :class:`FileSnapshotStore` (one
``snapshot_<seq>.json`` per snapshot, written atomically via temp file +
rename, pruned to a bounded history) for demos.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import StoreError

SNAPSHOT_VERSION = 1


def encode_snapshot(state: Dict[str, Any], last_seq: int) -> bytes:
    document = {
        "version": SNAPSHOT_VERSION,
        "last_seq": last_seq,
        "state": state,
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def decode_snapshot(data: bytes) -> Tuple[Dict[str, Any], int]:
    """Returns ``(state, last_seq)``; raises :class:`StoreError` on damage."""
    try:
        document = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StoreError(f"snapshot is not valid JSON: {exc}") from exc
    if document.get("version") != SNAPSHOT_VERSION:
        raise StoreError(
            f"unsupported snapshot version {document.get('version')!r}"
        )
    return document["state"], document["last_seq"]


class MemorySnapshotStore:
    """Deterministic in-memory snapshot history."""

    def __init__(self, keep: int = 2) -> None:
        if keep < 1:
            raise StoreError("snapshot history must keep at least one entry")
        self.keep = keep
        self._snapshots: List[Tuple[int, bytes]] = []

    def save(self, last_seq: int, data: bytes) -> None:
        self._snapshots.append((last_seq, data))
        self._snapshots.sort(key=lambda entry: entry[0])
        del self._snapshots[: -self.keep]

    def latest(self) -> Optional[bytes]:
        return self._snapshots[-1][1] if self._snapshots else None

    def close(self) -> None:
        pass


class FileSnapshotStore:
    """Directory of ``snapshot_<seq>.json`` files, atomically written."""

    _NAME = re.compile(r"^snapshot_(\d{12})\.json$")

    def __init__(self, directory: str, keep: int = 2) -> None:
        if keep < 1:
            raise StoreError("snapshot history must keep at least one entry")
        self.directory = directory
        self.keep = keep
        os.makedirs(directory, exist_ok=True)

    def _entries(self) -> List[Tuple[int, str]]:
        entries: List[Tuple[int, str]] = []
        for name in os.listdir(self.directory):
            match = self._NAME.match(name)
            if match:
                entries.append(
                    (int(match.group(1)), os.path.join(self.directory, name))
                )
        entries.sort()
        return entries

    def save(self, last_seq: int, data: bytes) -> None:
        path = os.path.join(self.directory, f"snapshot_{last_seq:012d}.json")
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        for _seq, stale in self._entries()[: -self.keep]:
            os.remove(stale)

    def latest(self) -> Optional[bytes]:
        entries = self._entries()
        if not entries:
            return None
        with open(entries[-1][1], "rb") as handle:
            return handle.read()

    def close(self) -> None:
        pass
