"""Typed WAL record schema: what a durable node journals, and how.

Each record type names one atomic state transition.  The journaling
contract is **write-ahead with logical redo**: the record carries enough
information to re-apply the transition to the recovered state from
scratch — it is appended to the log *before* the in-memory mutation, and
recovery replays records in ``seq`` order against a fresh state (the
crashed process's in-memory state is discarded entirely, so every
transition is applied exactly once).

Record types and their ``data`` payloads:

``mempool.admit``
    ``{"tx": <tx dict>}`` — one sealed-bid transaction entering the
    mempool (:func:`repro.ledger.serialization.tx_to_dict` shape).
``chain.append``
    ``{"block": <block dict>, "hash": h}`` — a quorum-verified block
    extending the chain.  Replay re-validates structure and removes the
    included transactions from the mempool (mirroring
    :meth:`repro.ledger.miner.Miner.commit_block`).
``round.phase``
    ``{"round": i, "phase": p, ...}`` — an exposure-protocol round
    entering phase ``p`` (``begin``/``mine``/``reveal``/``propose``/
    ``verify``/``commit``/``committed``/``aborted``).  Pure markers: they
    carry no redo state, but recovery reads the last one to decide
    whether a round was in flight and how far it durably got.
``settlement.block``
    ``{"block_hash": h, "auto_fund": b, "entries": [...]}`` — the full
    settlement *intent* for one block (escrow ids are reserved before
    the record is written), journaled before any escrow opens.  Replay
    re-runs the whole intent atomically, which is what makes a crash
    between individual escrow opens harmless.
``escrow.open`` / ``escrow.transition``
    A standalone escrow opening, and a held escrow moving to
    ``released`` or ``refunded``.
``token.mint`` / ``token.transfer``
    Direct token-ledger operations outside any settlement intent.
``snapshot.mark``
    A snapshot was persisted covering everything up to this record —
    informational (snapshots carry their own ``last_seq``).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.common.errors import StoreError
from repro.ledger.serialization import (
    block_from_dict,
    block_to_dict,
    tx_from_dict,
    tx_to_dict,
)

MEMPOOL_ADMIT = "mempool.admit"
CHAIN_APPEND = "chain.append"
ROUND_PHASE = "round.phase"
SETTLEMENT_BLOCK = "settlement.block"
ESCROW_OPEN = "escrow.open"
ESCROW_TRANSITION = "escrow.transition"
TOKEN_MINT = "token.mint"
TOKEN_TRANSFER = "token.transfer"
SNAPSHOT_MARK = "snapshot.mark"

RECORD_TYPES = frozenset(
    {
        MEMPOOL_ADMIT,
        CHAIN_APPEND,
        ROUND_PHASE,
        SETTLEMENT_BLOCK,
        ESCROW_OPEN,
        ESCROW_TRANSITION,
        TOKEN_MINT,
        TOKEN_TRANSFER,
        SNAPSHOT_MARK,
    }
)


def encode_data(record_type: str, data: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-ready payload for one record: live ledger objects become
    their canonical dict forms, everything else passes through."""
    if record_type not in RECORD_TYPES:
        raise StoreError(f"unknown WAL record type {record_type!r}")
    if record_type == MEMPOOL_ADMIT:
        return {"tx": tx_to_dict(data["tx"])}
    if record_type == CHAIN_APPEND:
        block = data["block"]
        return {"block": block_to_dict(block), "hash": block.hash()}
    return dict(data)


def decode_tx(data: Dict[str, Any]):
    return tx_from_dict(data["tx"])


def decode_block(data: Dict[str, Any]):
    return block_from_dict(data["block"])
