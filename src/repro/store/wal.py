"""CRC32-framed append-only write-ahead log.

Every durable state transition in a DeCloud node is journaled here
*before* it takes effect (see ``repro.store.node``).  The log is a flat
byte stream of self-delimiting frames::

    MAGIC (2B) | payload length (4B BE) | crc32(payload) (4B BE) | payload

The payload is one canonical-JSON *envelope* ``{"seq": n, "type": t,
"data": {...}}`` — ``seq`` is a monotonically increasing record number
that survives compaction (snapshots store the last ``seq`` they cover,
so recovery knows which suffix of the log to replay).

A crashed writer can leave a **torn tail**: a final frame whose header
or payload is incomplete, or whose CRC does not match (the write died
mid-sector, or the sector was corrupted afterwards).  :meth:`
WriteAheadLog.scan` finds the longest valid frame prefix and reports the
damage instead of raising; :meth:`WriteAheadLog.truncate_tail` discards
the damage so the log can be appended to again.  Nothing after the first
bad byte is ever trusted — a torn tail can only *lose* the records that
were being written when the process died, never resurrect or invent
state (the fuzz suite drives random corruption through this contract).

Two backends ship: :class:`MemoryLogBackend` (deterministic, for tests
and the crash-matrix differential harness) and :class:`FileLogBackend`
(a real file with flush-on-append and opt-in fsync, for demos).
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.common.errors import CorruptRecordError, StoreError

MAGIC = b"\xd7\xca"
_HEADER = struct.Struct(">2sII")
HEADER_SIZE = _HEADER.size  # 10 bytes

#: refuse absurd frame lengths up front so a corrupted length field is
#: diagnosed as corruption instead of a giant allocation
MAX_RECORD_BYTES = 64 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """Frame ``payload`` with magic, length, and CRC32."""
    if len(payload) > MAX_RECORD_BYTES:
        raise StoreError(
            f"record of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte frame limit"
        )
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def encode_envelope(seq: int, record_type: str, data: Dict[str, Any]) -> bytes:
    """Canonical-JSON envelope bytes for one record."""
    return json.dumps(
        {"seq": seq, "type": record_type, "data": data},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


@dataclass
class ScanResult:
    """Longest valid frame prefix of a log, plus what (if anything) broke."""

    records: List[Dict[str, Any]]
    #: byte length of the valid prefix — everything past this is damage
    good_length: int
    #: None for a clean log; otherwise the first framing/CRC failure
    tail_error: Optional[CorruptRecordError] = None
    #: raw frame bytes per record (compaction re-writes these verbatim)
    frames: List[bytes] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.tail_error is None


def scan_frames(data: bytes) -> ScanResult:
    """Decode the longest valid frame prefix of ``data``.

    Stops at the first torn or corrupt frame and reports it via
    ``tail_error`` — by design there is no resynchronization: a frame at
    or after the first bad byte could be a half-written record, so
    trusting anything beyond it could resurrect state that was never
    durably committed.
    """
    records: List[Dict[str, Any]] = []
    frames: List[bytes] = []
    offset = 0
    error: Optional[CorruptRecordError] = None
    total = len(data)
    while offset < total:
        if total - offset < HEADER_SIZE:
            error = CorruptRecordError(
                f"torn frame header at offset {offset}",
                offset=offset,
                reason="torn header",
            )
            break
        magic, length, crc = _HEADER.unpack_from(data, offset)
        if magic != MAGIC:
            error = CorruptRecordError(
                f"bad frame magic at offset {offset}",
                offset=offset,
                reason="bad magic",
            )
            break
        if length > MAX_RECORD_BYTES:
            error = CorruptRecordError(
                f"implausible frame length {length} at offset {offset}",
                offset=offset,
                reason="bad length",
            )
            break
        start = offset + HEADER_SIZE
        end = start + length
        if end > total:
            error = CorruptRecordError(
                f"torn frame payload at offset {offset}",
                offset=offset,
                reason="torn payload",
            )
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            error = CorruptRecordError(
                f"CRC mismatch at offset {offset}",
                offset=offset,
                reason="crc mismatch",
            )
            break
        try:
            envelope = json.loads(payload.decode("utf-8"))
            seq = envelope["seq"]
            record_type = envelope["type"]
            record_data = envelope["data"]
        except (ValueError, KeyError, TypeError):
            error = CorruptRecordError(
                f"undecodable record envelope at offset {offset}",
                offset=offset,
                reason="bad envelope",
            )
            break
        records.append({"seq": seq, "type": record_type, "data": record_data})
        frames.append(data[offset:end])
        offset = end
    return ScanResult(
        records=records,
        good_length=offset,
        tail_error=error,
        frames=frames,
    )


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class MemoryLogBackend:
    """Deterministic in-memory byte log (the test/chaos backend)."""

    def __init__(self, data: bytes = b"") -> None:
        self._data = bytearray(data)

    def append(self, data: bytes) -> None:
        self._data.extend(data)

    def read(self) -> bytes:
        return bytes(self._data)

    def truncate_to(self, length: int) -> None:
        del self._data[length:]

    def replace(self, data: bytes) -> None:
        self._data = bytearray(data)

    def size(self) -> int:
        return len(self._data)

    def sync(self) -> None:  # in-memory: nothing to flush
        pass

    def close(self) -> None:
        pass


class FileLogBackend:
    """File-backed log: append + flush per record, opt-in fsync.

    ``fsync=True`` gives real power-loss durability at a heavy per-append
    cost; the default (``False``) flushes to the OS page cache, which
    survives process crashes (the failure model the crash matrix tests)
    but not kernel panics.
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "ab")

    def append(self, data: bytes) -> None:
        self._handle.write(data)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def read(self) -> bytes:
        self._handle.flush()
        with open(self.path, "rb") as handle:
            return handle.read()

    def truncate_to(self, length: int) -> None:
        self._handle.flush()
        os.truncate(self.path, length)
        # reopen so the append position tracks the truncated end
        self._handle.close()
        self._handle = open(self.path, "ab")

    def replace(self, data: bytes) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self._handle.close()
        os.replace(tmp, self.path)
        self._handle = open(self.path, "ab")

    def size(self) -> int:
        self._handle.flush()
        return os.path.getsize(self.path)

    def sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()


# ----------------------------------------------------------------------
# The log
# ----------------------------------------------------------------------
class WriteAheadLog:
    """Append-only record log over a byte backend.

    ``crash_point`` (a :class:`repro.faults.crash.CrashPoint`) lets the
    chaos harness kill the "process" deterministically at any record
    boundary, optionally persisting a torn or corrupted final frame —
    the write path asks the crash point before completing each append.
    """

    def __init__(
        self,
        backend: Optional[Any] = None,
        crash_point: Optional[Any] = None,
    ) -> None:
        self.backend = backend if backend is not None else MemoryLogBackend()
        self.crash_point = crash_point
        existing = self.scan()
        self._next_seq = (
            existing.records[-1]["seq"] + 1 if existing.records else 0
        )
        self._tail_damaged = not existing.clean
        #: appends performed through *this* handle (crash-matrix sizing)
        self.append_count = 0

    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        return self._next_seq

    def append(self, record_type: str, data: Dict[str, Any]) -> int:
        """Frame and persist one record; returns its ``seq``.

        Raises :class:`StoreError` if the log still carries an
        unrecovered torn tail — appending after damage would bury it
        mid-log where truncation can no longer repair it.
        """
        if self._tail_damaged:
            raise StoreError(
                "write-ahead log has an unrecovered torn tail; call "
                "truncate_tail() (or recover the store) before appending"
            )
        seq = self._next_seq
        frame = encode_frame(encode_envelope(seq, record_type, data))
        if self.crash_point is not None:
            injected = self.crash_point.on_append(frame)
            if injected is not None:
                # the simulated process dies mid-write: persist whatever
                # the crash mode says reached the disk, then "kill" it
                self.backend.append(injected)
                self.append_count += 1
                raise self.crash_point.crash_error(record_type, seq)
        self.backend.append(frame)
        self.append_count += 1
        self._next_seq = seq + 1
        return seq

    def scan(self, strict: bool = False) -> ScanResult:
        """Decode the longest valid prefix; ``strict`` raises on damage."""
        result = scan_frames(self.backend.read())
        if strict and result.tail_error is not None:
            raise result.tail_error
        return result

    def records(self, after_seq: int = -1) -> List[Dict[str, Any]]:
        """Valid records with ``seq > after_seq`` (tolerates a torn tail)."""
        return [
            record
            for record in self.scan().records
            if record["seq"] > after_seq
        ]

    def truncate_tail(self) -> int:
        """Discard any torn/corrupt tail; returns the bytes dropped."""
        result = self.scan()
        dropped = self.backend.size() - result.good_length
        if dropped:
            self.backend.truncate_to(result.good_length)
        self._tail_damaged = False
        self._next_seq = (
            result.records[-1]["seq"] + 1 if result.records else 0
        )
        return dropped

    def compact(self, upto_seq: int) -> int:
        """Drop records with ``seq <= upto_seq`` (they live in a snapshot).

        Returns the number of records removed.  Frames are rewritten
        verbatim, so record bytes (and CRCs) are stable across
        compaction.
        """
        result = self.scan(strict=True)
        kept: List[bytes] = []
        removed = 0
        for record, frame in zip(result.records, result.frames):
            if record["seq"] <= upto_seq:
                removed += 1
            else:
                kept.append(frame)
        if removed:
            self.backend.replace(b"".join(kept))
        return removed

    def close(self) -> None:
        self.backend.close()
