"""Amazon EC2 M5 provider catalog (paper §V).

The evaluation draws provider capabilities and pricing from the EC2 M5
family, with resources "in a range between 2-16 CPU cores and 8-64 GB
RAM" — exactly the m5.large … m5.4xlarge tiers.  Specs and the on-demand
us-east-1 hourly prices below are the published 2018/2019 values.  M5 is
EBS-backed, so the catalog attaches a configurable block-storage volume
per instance (the Google-trace workload needs a disk dimension).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import make_generator
from repro.common.timewindow import TimeWindow
from repro.market.bids import Offer


@dataclass(frozen=True)
class InstanceType:
    """One EC2 instance type: name, shape, hourly on-demand price."""

    name: str
    vcpus: int
    ram_gb: float
    hourly_price: float
    disk_gb: float = 200.0

    def resources(self) -> Dict[str, float]:
        return {
            "cpu": float(self.vcpus),
            "ram": float(self.ram_gb),
            "disk": float(self.disk_gb),
        }


#: Published M5 on-demand specs/prices (us-east-1, 2018).
M5_INSTANCES: Sequence[InstanceType] = (
    InstanceType(name="m5.large", vcpus=2, ram_gb=8, hourly_price=0.096),
    InstanceType(name="m5.xlarge", vcpus=4, ram_gb=16, hourly_price=0.192),
    InstanceType(name="m5.2xlarge", vcpus=8, ram_gb=32, hourly_price=0.384),
    InstanceType(name="m5.4xlarge", vcpus=16, ram_gb=64, hourly_price=0.768),
)


def instance_by_name(name: str) -> InstanceType:
    for instance in M5_INSTANCES:
        if instance.name == name:
            return instance
    raise ValidationError(f"unknown instance type {name!r}")


@dataclass
class ProviderCatalog:
    """Generates provider offers by sampling the M5 family.

    ``cost_noise`` models provider heterogeneity: individual providers'
    operating costs scatter around the EC2 list price by a uniform
    multiplicative factor (a crowdsourced host with sunk hardware costs
    undercuts; a boutique edge site charges a premium).
    """

    instances: Sequence[InstanceType] = M5_INSTANCES
    cost_noise: float = 0.2
    window_span: float = 24.0
    disk_gb_range: tuple = (100.0, 500.0)
    locations: Sequence[str] = ("edge-a", "edge-b", "edge-c", "edge-d")

    def __post_init__(self) -> None:
        if not self.instances:
            raise ValidationError("catalog needs at least one instance type")
        if not 0.0 <= self.cost_noise < 1.0:
            raise ValidationError("cost_noise must be in [0, 1)")

    def sample_offers(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        weights: Optional[Sequence[float]] = None,
        start_time: float = 0.0,
    ) -> List[Offer]:
        """Draw ``count`` offers; ``weights`` skews the type mix."""
        rng = rng if rng is not None else make_generator()
        if weights is not None:
            weights = np.asarray(weights, dtype=float)
            if len(weights) != len(self.instances) or weights.sum() <= 0:
                raise ValidationError(
                    "weights must match the instance list and sum > 0"
                )
            probabilities = weights / weights.sum()
        else:
            probabilities = np.full(
                len(self.instances), 1.0 / len(self.instances)
            )

        offers: List[Offer] = []
        indices = rng.choice(len(self.instances), size=count, p=probabilities)
        for i, type_index in enumerate(indices):
            instance = self.instances[int(type_index)]
            resources = instance.resources()
            resources["disk"] = float(
                rng.uniform(*self.disk_gb_range)
            )
            noise = 1.0 + rng.uniform(-self.cost_noise, self.cost_noise)
            cost = instance.hourly_price * self.window_span * noise
            offers.append(
                Offer(
                    offer_id=f"off-{i:06d}",
                    provider_id=f"prov-{i:06d}",
                    submit_time=start_time + 1e-6 * i,
                    resources=resources,
                    window=TimeWindow(
                        start_time, start_time + self.window_span
                    ),
                    bid=cost,
                    location=str(
                        self.locations[int(rng.integers(len(self.locations)))]
                    ),
                )
            )
        return offers
