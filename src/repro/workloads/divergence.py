"""Supply/demand divergence scenarios (paper Fig. 5d-5f).

"We generated sets of offers and requests distributions with various
degrees of Kullback-Leibler divergence, e.g., when clients want mostly
8-core CPUs, the majority of offered CPUs have only 2 cores."

A :class:`DivergenceScenario` tilts the request-side machine-class
distribution toward big configurations and the offer-side toward small
ones by a single ``tilt`` parameter; tilt 0 means perfectly aligned
(similarity 1), larger tilts drive the similarity ``1 - KLD`` down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.kld import similarity as kld_similarity
from repro.common.errors import ValidationError
from repro.common.rng import make_generator
from repro.common.timewindow import TimeWindow
from repro.market.bids import Offer, Request
from repro.workloads.ec2_catalog import M5_INSTANCES, ProviderCatalog
from repro.workloads.google_trace import assign_valuations

#: Machine classes: (cores, ram_gb), the M5 ladder.
CONFIG_CLASSES: Sequence[Tuple[float, float]] = tuple(
    (float(inst.vcpus), float(inst.ram_gb)) for inst in M5_INSTANCES
)


def tilted_distribution(tilt: float, ascending: bool) -> np.ndarray:
    """Softmax over classes: positive tilt favors one end of the ladder."""
    n = len(CONFIG_CLASSES)
    scores = np.arange(n, dtype=float)
    if not ascending:
        scores = scores[::-1]
    logits = tilt * scores
    logits -= logits.max()
    weights = np.exp(logits)
    return weights / weights.sum()


@dataclass
class DivergenceScenario:
    """One point on the similarity axis.

    Requests want big machines (ascending tilt), offers supply small ones
    (descending tilt); ``tilt = 0`` aligns both at uniform.
    """

    tilt: float
    n_requests: int = 100
    n_offers: int = 50
    flexibility: float = 1.0
    soft_significance: float = 0.5
    window_span: float = 24.0
    duration_log_mean: float = 0.7
    duration_log_sigma: float = 0.8
    seed: int = 0
    valuation_basis: str = "fraction"
    catalog: ProviderCatalog = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.tilt < 0:
            raise ValidationError("tilt must be >= 0")
        if self.catalog is None:
            self.catalog = ProviderCatalog(window_span=self.window_span)

    @property
    def request_distribution(self) -> np.ndarray:
        return tilted_distribution(self.tilt, ascending=True)

    @property
    def offer_distribution(self) -> np.ndarray:
        return tilted_distribution(self.tilt, ascending=False)

    @property
    def similarity(self) -> float:
        """``1 - KLD(requests || offers)`` on the class distributions."""
        return kld_similarity(
            self.request_distribution, self.offer_distribution
        )

    def generate(
        self, rng: Optional[np.random.Generator] = None
    ) -> Tuple[List[Request], List[Offer]]:
        """Sample a full market for this similarity level.

        Deterministic by default: the RNG derives from the scenario's
        parameters and ``seed``, so the same scenario yields the same
        market — pass an explicit ``rng`` for replications.
        """
        # The key deliberately excludes flexibility: scenarios differing
        # only in flexibility sample the *same* demands and offers, so
        # flexible-vs-strict comparisons are paired.
        if rng is None:
            rng = make_generator(
                f"divergence-{self.seed}-{self.tilt:.6f}-"
                f"{self.n_requests}-{self.n_offers}"
            )
        offers = self.catalog.sample_offers(
            self.n_offers, rng=rng, weights=self.offer_distribution
        )
        requests = self._sample_requests(rng)
        requests = assign_valuations(
            requests, offers, rng=rng, basis=self.valuation_basis
        )
        return requests, offers

    def _sample_requests(self, rng: np.random.Generator) -> List[Request]:
        class_indices = rng.choice(
            len(CONFIG_CLASSES),
            size=self.n_requests,
            p=self.request_distribution,
        )
        durations = np.clip(
            np.exp(
                rng.normal(
                    self.duration_log_mean,
                    self.duration_log_sigma,
                    size=self.n_requests,
                )
            ),
            0.1,
            self.window_span,
        )
        strict = self.flexibility >= 1.0
        requests: List[Request] = []
        for i, class_index in enumerate(class_indices):
            cores, ram = CONFIG_CLASSES[int(class_index)]
            # Demands jitter around the class; overshoots (up to 20%)
            # make the request strictly infeasible on its own class
            # machine but reachable at 80% flexibility — the mechanism
            # the paper's flexible-matching evaluation exercises.
            cpu_demand = cores * float(rng.uniform(0.8, 1.2))
            ram_demand = ram * float(rng.uniform(0.75, 1.2))
            resources = {
                "cpu": round(cpu_demand, 2),
                "ram": round(ram_demand, 2),
                "disk": float(rng.uniform(5.0, 80.0)),
            }
            significance = (
                {k: 1.0 for k in resources}
                if strict
                else {k: self.soft_significance for k in resources}
            )
            requests.append(
                Request(
                    request_id=f"req-{i:06d}",
                    client_id=f"cli-{i:06d}",
                    submit_time=1e-6 * i,
                    resources=resources,
                    significance=significance,
                    window=TimeWindow(0.0, self.window_span),
                    duration=float(durations[i]),
                    bid=0.0,
                    flexibility=self.flexibility,
                )
            )
        return requests


def tilt_for_similarity(target: float, tolerance: float = 1e-3) -> float:
    """Invert similarity -> tilt by bisection (similarity is monotone)."""
    if not 0.0 <= target <= 1.0:
        raise ValidationError("target similarity must be in [0, 1]")
    low, high = 0.0, 1.0
    # Expand until the high tilt is dissimilar enough.
    while DivergenceScenario(tilt=high).similarity > target and high < 64:
        high *= 2.0
    for _ in range(64):
        mid = 0.5 * (low + high)
        sim = DivergenceScenario(tilt=mid).similarity
        if abs(sim - target) < tolerance:
            return mid
        if sim > target:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)
