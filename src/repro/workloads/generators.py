"""High-level market generation used by experiments and examples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.common.rng import make_generator, spawn_child
from repro.common.timewindow import TimeWindow
from repro.market.bids import Offer, Request
from repro.market.location import GeoLocation
from repro.workloads.ec2_catalog import ProviderCatalog
from repro.workloads.google_trace import GoogleTraceWorkload, assign_valuations


@dataclass
class MarketScenario:
    """A reproducible Google-trace-on-EC2 market (the Fig. 5a-5c setup).

    ``offers_per_request`` controls supply tightness; the paper's sweep
    varies the number of requests with proportional supply.
    """

    n_requests: int
    offers_per_request: float = 0.5
    seed: int = 0
    flexibility: float = 1.0
    window_span: float = 24.0
    valuation_basis: str = "fraction"
    workload: GoogleTraceWorkload = field(default=None)  # type: ignore[assignment]
    catalog: ProviderCatalog = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValidationError("n_requests must be >= 1")
        if self.offers_per_request <= 0:
            raise ValidationError("offers_per_request must be > 0")
        if self.workload is None:
            self.workload = GoogleTraceWorkload(
                window_span=self.window_span, flexibility=self.flexibility
            )
        if self.catalog is None:
            self.catalog = ProviderCatalog(window_span=self.window_span)

    @property
    def n_offers(self) -> int:
        return max(1, int(round(self.n_requests * self.offers_per_request)))

    def generate(self) -> Tuple[List[Request], List[Offer]]:
        """Sample the full market with independent per-role RNG streams."""
        root = make_generator(self.seed)
        offer_rng = spawn_child(root, "offers")
        request_rng = spawn_child(root, "requests")
        value_rng = spawn_child(root, "valuations")
        offers = self.catalog.sample_offers(self.n_offers, rng=offer_rng)
        requests = self.workload.sample_requests(
            self.n_requests, rng=request_rng
        )
        requests = assign_valuations(
            requests, offers, rng=value_rng, basis=self.valuation_basis
        )
        return requests, offers


def generate_market(
    n_requests: int,
    n_offers: Optional[int] = None,
    seed: int = 0,
    flexibility: float = 1.0,
) -> Tuple[List[Request], List[Offer]]:
    """One-call market generation (convenience wrapper)."""
    offers_per_request = (
        n_offers / n_requests if n_offers is not None else 0.5
    )
    scenario = MarketScenario(
        n_requests=n_requests,
        offers_per_request=offers_per_request,
        seed=seed,
        flexibility=flexibility,
    )
    return scenario.generate()


def generate_zone_market(
    n_requests: int,
    n_zones: int = 8,
    offers_per_request: float = 1.0,
    seed: int = 0,
    kind: str = "geo",
    locality: str = "strong",
    cross_zone_fraction: float = 0.0,
) -> Tuple[List[Request], List[Offer], Dict[str, GeoLocation]]:
    """A geographically clustered edge market for the candidate stage.

    Participants are assigned to ``n_zones`` zones spread over the
    globe.  With ``kind="geo"`` every bid carries a location tag mapped
    (in the returned dict) to a :class:`GeoLocation` jittered around its
    zone anchor — feed the dict to
    :class:`~repro.core.candidates.GeoBucketGenerator`.  With
    ``kind="network"`` the tag *is* a hierarchical zone path like
    ``"zone-3/cell-1"`` (parsed directly by
    :class:`~repro.core.candidates.NetworkZoneGenerator`) and the
    returned dict is empty.

    ``locality`` shapes how separable the market is:

    * ``"strong"`` — each zone trades its own resource types
      (``cpu@z3``...), so cross-zone pairs are infeasible and a good
      generator prunes them without scoring (the regime where edge
      markets are sub-quadratic in practice);
    * ``"weak"`` — all zones share ``cpu``/``ram``/``disk`` with
      zone-biased magnitudes, so pruning can only come from score
      bounds and windows.

    ``cross_zone_fraction`` detaches that fraction of the *requests*
    from their home zone: the request keeps its location (and therefore
    its shard under a zone partition) but demands the resource types of
    a different zone, so it can only trade cross-zone.  Under strong
    locality this guarantees work for the spillover round of
    :mod:`repro.core.sharding`; at 0.0 (default) the sampled market is
    byte-identical to what earlier revisions produced (the extra RNG
    stream is spawned after the existing three, leaving them unchanged).
    """
    if n_zones < 1:
        raise ValidationError("n_zones must be >= 1")
    if kind not in ("geo", "network"):
        raise ValidationError(f"kind must be 'geo' or 'network', got {kind!r}")
    if locality not in ("strong", "weak"):
        raise ValidationError(
            f"locality must be 'strong' or 'weak', got {locality!r}"
        )
    if not 0.0 <= cross_zone_fraction <= 1.0:
        raise ValidationError(
            f"cross_zone_fraction must be in [0, 1], got {cross_zone_fraction}"
        )
    rng = make_generator(seed)
    zone_rng = spawn_child(rng, "zones")
    request_rng = spawn_child(rng, "requests")
    offer_rng = spawn_child(rng, "offers")
    cross_rng = (
        spawn_child(rng, "crosszone") if cross_zone_fraction > 0 else None
    )

    # Zone anchors spread around the globe (including near the
    # antimeridian, so the seam is exercised by construction).
    anchors = [
        GeoLocation(
            latitude=float(zone_rng.uniform(-60.0, 60.0)),
            longitude=float(
                ((zone_rng.uniform(0.0, 360.0) + 180.0) % 360.0) - 180.0
            ),
        )
        for _ in range(n_zones)
    ]

    def zone_types(zone: int) -> List[str]:
        if locality == "strong":
            return [f"cpu@z{zone}", f"ram@z{zone}"]
        return ["cpu", "ram", "disk"]

    def location_tag(
        zone: int, index: int, role: str, out: Dict[str, GeoLocation]
    ) -> str:
        if kind == "network":
            return f"zone-{zone}/cell-{index % 4}"
        tag = f"{role}-{index}@z{zone}"
        anchor = anchors[zone]
        out[tag] = GeoLocation(
            latitude=float(
                max(-90.0, min(90.0, anchor.latitude + zone_rng.uniform(-2, 2)))
            ),
            longitude=float(
                ((anchor.longitude + zone_rng.uniform(-2, 2) + 180.0) % 360.0)
                - 180.0
            ),
        )
        return tag

    locations: Dict[str, GeoLocation] = {}
    scale = 1.0 if locality == "strong" else None
    requests: List[Request] = []
    for i in range(n_requests):
        zone = int(request_rng.integers(0, n_zones))
        # A cross-zone request keeps its home location but demands a
        # *different* zone's resource types — only reachable across the
        # partition boundary.
        demand_zone = zone
        if cross_rng is not None and n_zones > 1 and (
            float(cross_rng.uniform()) < cross_zone_fraction
        ):
            demand_zone = (
                zone + 1 + int(cross_rng.integers(0, n_zones - 1))
            ) % n_zones
        types = zone_types(demand_zone)
        amounts = {
            t: float(request_rng.integers(1, 9))
            * (scale or (1.0 + zone / n_zones))
            for t in types
        }
        start = float(request_rng.integers(0, 12))
        duration = float(request_rng.integers(1, 7))
        requests.append(
            Request(
                request_id=f"r{i:06d}",
                client_id=f"c{i:06d}",
                submit_time=float(i),
                resources=amounts,
                significance={types[0]: 1.0, types[1]: 0.5}
                if locality == "strong"
                else {"cpu": 1.0, "ram": 0.5, "disk": 0.5},
                window=TimeWindow(start, start + duration + 2.0),
                duration=duration,
                bid=float(request_rng.integers(10, 100)),
                location=location_tag(zone, i, "req", locations),
                flexibility=0.5,
            )
        )

    n_offers = max(1, int(round(n_requests * offers_per_request)))
    offers: List[Offer] = []
    for j in range(n_offers):
        zone = int(offer_rng.integers(0, n_zones))
        types = zone_types(zone)
        amounts = {
            t: float(offer_rng.integers(4, 33))
            * (scale or (1.0 + zone / n_zones))
            for t in types
        }
        offers.append(
            Offer(
                offer_id=f"o{j:06d}",
                provider_id=f"p{j:06d}",
                submit_time=float(j),
                resources=amounts,
                window=TimeWindow(0.0, 24.0),
                bid=float(offer_rng.integers(5, 50)),
                location=location_tag(zone, j, "off", locations),
            )
        )
    return requests, offers, locations
