"""High-level market generation used by experiments and examples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.common.rng import make_generator, spawn_child
from repro.market.bids import Offer, Request
from repro.workloads.ec2_catalog import ProviderCatalog
from repro.workloads.google_trace import GoogleTraceWorkload, assign_valuations


@dataclass
class MarketScenario:
    """A reproducible Google-trace-on-EC2 market (the Fig. 5a-5c setup).

    ``offers_per_request`` controls supply tightness; the paper's sweep
    varies the number of requests with proportional supply.
    """

    n_requests: int
    offers_per_request: float = 0.5
    seed: int = 0
    flexibility: float = 1.0
    window_span: float = 24.0
    valuation_basis: str = "fraction"
    workload: GoogleTraceWorkload = field(default=None)  # type: ignore[assignment]
    catalog: ProviderCatalog = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValidationError("n_requests must be >= 1")
        if self.offers_per_request <= 0:
            raise ValidationError("offers_per_request must be > 0")
        if self.workload is None:
            self.workload = GoogleTraceWorkload(
                window_span=self.window_span, flexibility=self.flexibility
            )
        if self.catalog is None:
            self.catalog = ProviderCatalog(window_span=self.window_span)

    @property
    def n_offers(self) -> int:
        return max(1, int(round(self.n_requests * self.offers_per_request)))

    def generate(self) -> Tuple[List[Request], List[Offer]]:
        """Sample the full market with independent per-role RNG streams."""
        root = make_generator(self.seed)
        offer_rng = spawn_child(root, "offers")
        request_rng = spawn_child(root, "requests")
        value_rng = spawn_child(root, "valuations")
        offers = self.catalog.sample_offers(self.n_offers, rng=offer_rng)
        requests = self.workload.sample_requests(
            self.n_requests, rng=request_rng
        )
        requests = assign_valuations(
            requests, offers, rng=value_rng, basis=self.valuation_basis
        )
        return requests, offers


def generate_market(
    n_requests: int,
    n_offers: Optional[int] = None,
    seed: int = 0,
    flexibility: float = 1.0,
) -> Tuple[List[Request], List[Offer]]:
    """One-call market generation (convenience wrapper)."""
    offers_per_request = (
        n_offers / n_requests if n_offers is not None else 0.5
    )
    scenario = MarketScenario(
        n_requests=n_requests,
        offers_per_request=offers_per_request,
        seed=seed,
        flexibility=flexibility,
    )
    return scenario.generate()
