"""Loading real trace data (Google ClusterData task-event CSV).

The evaluation uses the Google cluster-usage trace; this repository ships
a distribution-matched synthetic generator (DESIGN.md) because the raw
trace is not redistributable.  Users who *have* the trace can feed it in
directly through this module: it parses the ClusterData v2 ``task_events``
CSV schema and converts resource-request rows into DeCloud requests.

ClusterData v2 task_events columns (0-indexed):

    0 timestamp (microseconds)   3 job id        9  cpu request
    1 missing info               4 task index    10 memory request
    2 machine id                 5 event type    11 disk space request

Resource requests are normalized to the largest machine in the cell;
:func:`rows_to_requests` rescales them into the provider envelope used by
the rest of the library (cores / GB / GB).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.common.errors import ValidationError
from repro.common.timewindow import TimeWindow
from repro.market.bids import Request

#: Event type code for "submit" in ClusterData v2.
EVENT_SUBMIT = 0

MICROSECONDS_PER_HOUR = 3_600_000_000


@dataclass(frozen=True)
class TaskEvent:
    """One parsed task-event row (submit events only are retained)."""

    timestamp_hours: float
    job_id: str
    task_index: int
    cpu_request: float
    memory_request: float
    disk_request: float


def parse_task_events(
    lines: Iterable[str], submit_only: bool = True
) -> Iterator[TaskEvent]:
    """Parse ClusterData v2 task_events CSV lines.

    Rows with missing resource fields are skipped (the trace marks many);
    malformed rows raise :class:`ValidationError` with the row number.
    """
    reader = csv.reader(lines)
    for row_number, row in enumerate(reader):
        if not row:
            continue
        if len(row) < 12:
            raise ValidationError(
                f"task_events row {row_number} has {len(row)} columns, "
                "expected >= 12"
            )
        try:
            event_type = int(row[5])
        except ValueError as exc:
            raise ValidationError(
                f"task_events row {row_number}: bad event type {row[5]!r}"
            ) from exc
        if submit_only and event_type != EVENT_SUBMIT:
            continue
        if not row[9] or not row[10]:
            continue  # resource request withheld for this row
        try:
            yield TaskEvent(
                timestamp_hours=int(row[0]) / MICROSECONDS_PER_HOUR,
                job_id=row[3],
                task_index=int(row[4]) if row[4] else 0,
                cpu_request=float(row[9]),
                memory_request=float(row[10]),
                disk_request=float(row[11]) if row[11] else 0.0,
            )
        except ValueError as exc:
            raise ValidationError(
                f"task_events row {row_number}: {exc}"
            ) from exc


def load_task_events(path: str, limit: Optional[int] = None) -> List[TaskEvent]:
    """Read a task_events CSV file (plain text, possibly large)."""
    events: List[TaskEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for event in parse_task_events(handle):
            events.append(event)
            if limit is not None and len(events) >= limit:
                break
    return events


def rows_to_requests(
    events: Sequence[TaskEvent],
    max_cores: float = 16.0,
    max_ram_gb: float = 64.0,
    max_disk_gb: float = 500.0,
    window_span: float = 24.0,
    default_duration: float = 2.0,
) -> List[Request]:
    """Convert normalized trace rows into DeCloud requests.

    ClusterData normalizes resources to [0, 1] by the largest machine;
    we rescale into the library's provider envelope.  The trace does not
    carry durations for submit events, so ``default_duration`` applies
    (callers with full event streams can compute real durations and
    rebuild requests).  Valuations are zeroed — run
    :func:`repro.workloads.google_trace.assign_valuations` afterwards.
    """
    requests: List[Request] = []
    for index, event in enumerate(events):
        cpu = max(0.25, event.cpu_request * max_cores)
        ram = max(0.5, event.memory_request * max_ram_gb)
        disk = max(1.0, event.disk_request * max_disk_gb)
        start = event.timestamp_hours
        requests.append(
            Request(
                request_id=f"trace-{index:06d}",
                client_id=f"job-{event.job_id}-{event.task_index}",
                submit_time=event.timestamp_hours,
                resources={"cpu": cpu, "ram": ram, "disk": disk},
                window=TimeWindow(start, start + window_span),
                duration=min(default_duration, window_span),
                bid=0.0,
            )
        )
    return requests


def parse_task_events_text(text: str) -> List[TaskEvent]:
    """Convenience for tests and snippets: parse from a string."""
    return list(parse_task_events(io.StringIO(text)))
