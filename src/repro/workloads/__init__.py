"""Workload generation: Google-trace-style demand, EC2 M5 supply,
divergence-controlled scenarios."""

from repro.workloads.divergence import (
    CONFIG_CLASSES,
    DivergenceScenario,
    tilt_for_similarity,
    tilted_distribution,
)
from repro.workloads.ec2_catalog import (
    M5_INSTANCES,
    InstanceType,
    ProviderCatalog,
    instance_by_name,
)
from repro.workloads.generators import MarketScenario, generate_market
from repro.workloads.google_trace import GoogleTraceWorkload, assign_valuations
from repro.workloads.traces import (
    TaskEvent,
    load_task_events,
    parse_task_events,
    rows_to_requests,
)

__all__ = [
    "CONFIG_CLASSES",
    "DivergenceScenario",
    "tilt_for_similarity",
    "tilted_distribution",
    "M5_INSTANCES",
    "InstanceType",
    "ProviderCatalog",
    "instance_by_name",
    "MarketScenario",
    "generate_market",
    "GoogleTraceWorkload",
    "assign_valuations",
    "TaskEvent",
    "load_task_events",
    "parse_task_events",
    "rows_to_requests",
]
