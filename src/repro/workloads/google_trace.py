"""Google cluster-usage-style request generator (paper §V).

The paper generates client requests from the Google Cluster Data trace
(CPU, RAM, and disk of the 2011 ClusterData release).  The raw trace is
not redistributable and this environment is offline, so this module is a
*distribution-matched synthetic substitute* (see DESIGN.md): it reproduces
the published statistical shape of task resource requests —

* demands are heavy-tailed with a dominant mass of small tasks
  (log-normal body),
* CPU and memory requests are positively correlated,
* requested amounts cluster on machine-friendly quanta
  (quarter-core / half-GB steps),
* task durations are heavy-tailed: most tasks are short, a few run long.

The auction consumes only the resulting (cpu, ram, disk, duration, value)
tuples, so any consumer of the real trace exercises the same code paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import make_generator
from repro.common.timewindow import TimeWindow
from repro.core.matching import block_maxima, rank_offers
from repro.core.welfare import resource_fraction
from repro.market.bids import Offer, Request


def _quantize(values: np.ndarray, step: float) -> np.ndarray:
    """Snap to the nearest machine-friendly quantum, at least one step."""
    return np.maximum(step, np.round(values / step) * step)


@dataclass
class GoogleTraceWorkload:
    """Synthetic ClusterData-shaped request stream.

    Attributes:
        cpu_log_mean/cpu_log_sigma: log-normal body of CPU demand (cores).
        ram_per_core: mean memory-to-CPU ratio (GB per core); ClusterData
            tasks average a few GB per core.
        ram_correlation: correlation between CPU and RAM demand.
        duration_log_mean/duration_log_sigma: log-normal task duration, in
            hours; heavy upper tail, clipped to the request window.
        max_cores/max_ram_gb: clip ceilings — requests must stay inside
            the M5 provider envelope (2-16 cores / 8-64 GB) to be
            satisfiable at all.
    """

    cpu_log_mean: float = 0.3
    cpu_log_sigma: float = 0.8
    ram_per_core: float = 3.75
    ram_correlation: float = 0.6
    disk_log_mean: float = 2.5
    disk_log_sigma: float = 1.0
    duration_log_mean: float = 0.7
    duration_log_sigma: float = 1.0
    window_span: float = 24.0
    max_cores: float = 16.0
    max_ram_gb: float = 64.0
    max_disk_gb: float = 500.0
    flexibility: float = 1.0
    soft_significance: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.ram_correlation <= 1.0:
            raise ValidationError("ram_correlation must be in [0, 1]")
        if not 0.0 < self.flexibility <= 1.0:
            raise ValidationError("flexibility must be in (0, 1]")

    def sample_requests(
        self,
        count: int,
        rng: Optional[np.random.Generator] = None,
        start_time: float = 0.0,
    ) -> List[Request]:
        """Draw ``count`` requests with placeholder (zero) valuations.

        Use :func:`assign_valuations` afterwards — the paper derives each
        request's value from its best-matching offer, which requires the
        offer pool.
        """
        rng = rng if rng is not None else make_generator()
        cpu = np.exp(
            rng.normal(self.cpu_log_mean, self.cpu_log_sigma, size=count)
        )
        cpu = _quantize(np.clip(cpu, 0.25, self.max_cores), 0.25)

        # RAM = correlated mixture: rho * (scaled CPU) + (1 - rho) * noise.
        ram_noise = np.exp(rng.normal(1.0, 0.7, size=count))
        ram = (
            self.ram_correlation * cpu * self.ram_per_core
            + (1.0 - self.ram_correlation) * ram_noise * self.ram_per_core
        )
        ram = _quantize(np.clip(ram, 0.5, self.max_ram_gb), 0.5)

        disk = np.exp(
            rng.normal(self.disk_log_mean, self.disk_log_sigma, size=count)
        )
        disk = _quantize(np.clip(disk, 1.0, self.max_disk_gb), 1.0)

        duration = np.exp(
            rng.normal(
                self.duration_log_mean, self.duration_log_sigma, size=count
            )
        )
        duration = np.clip(duration, 0.1, self.window_span)

        strict = self.flexibility >= 1.0
        requests: List[Request] = []
        for i in range(count):
            resources = {
                "cpu": float(cpu[i]),
                "ram": float(ram[i]),
                "disk": float(disk[i]),
            }
            significance = (
                {k: 1.0 for k in resources}
                if strict
                else {
                    "cpu": self.soft_significance,
                    "ram": self.soft_significance,
                    "disk": self.soft_significance,
                }
            )
            requests.append(
                Request(
                    request_id=f"req-{i:06d}",
                    client_id=f"cli-{i:06d}",
                    submit_time=start_time + 1e-6 * i,
                    resources=resources,
                    significance=significance,
                    window=TimeWindow(start_time, start_time + self.window_span),
                    duration=float(duration[i]),
                    bid=0.0,
                    flexibility=self.flexibility,
                )
            )
        return requests


def assign_valuations(
    requests: Sequence[Request],
    offers: Sequence[Offer],
    rng: Optional[np.random.Generator] = None,
    coefficient_range: tuple = (0.5, 2.0),
    basis: str = "fraction",
) -> List[Request]:
    """Set each request's valuation per the paper's §V rule.

    "The valuation of each request is calculated as a cost of its best
    match offer multiplied by a random uniform coefficient in the range
    of [0.5, 2]."  We interpret "cost of its best match offer" as the
    cost of the *fraction of that offer the request would consume*
    (Eq. 6), so values scale with request size; coefficients below 1 then
    produce clients genuinely priced out of the market, which the
    welfare-ratio experiments need.

    The base cost is computed against the request's *strict* view (all
    resources required in full), so a client's private valuation does not
    depend on how flexible it later chooses to be — flexibility relaxes
    feasibility, never the value of the bundle.  Requests whose strict
    view has no feasible offer fall back to flexible matching, then to
    the cheapest offer's full cost.

    ``basis`` selects how "cost of its best match offer" is read:
    ``"fraction"`` (default) prices the fraction of the offer the request
    would consume (Eq. 6) — values scale with request size;
    ``"full_offer"`` uses the offer's whole posted cost, the literal
    reading of §V.
    """
    if basis not in ("fraction", "full_offer"):
        raise ValidationError(f"unknown valuation basis {basis!r}")
    rng = rng if rng is not None else make_generator()
    maxima = block_maxima(requests, offers)
    low, high = coefficient_range
    if not offers:
        raise ValidationError("assign_valuations needs at least one offer")
    fallback_cost = min(o.bid for o in offers)

    valued: List[Request] = []
    offer_list = list(offers)
    for request in requests:
        strict = request.strict_view()
        ranked = rank_offers(strict, offer_list, maxima)
        if not ranked:
            ranked = rank_offers(request, offer_list, maxima)
        if ranked:
            _, best = ranked[0]
            if basis == "fraction":
                base_cost = resource_fraction(strict, best) * best.bid
            else:
                base_cost = best.bid
        else:
            base_cost = fallback_cost
        coefficient = float(rng.uniform(low, high))
        valued.append(request.replace_bid(max(base_cost * coefficient, 1e-9)))
    return valued
