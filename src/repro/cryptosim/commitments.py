"""Hash commitments.

Used by the exposure protocol so that a temporary key disclosed in the
block body can be checked against the commitment included beside the
sealed bid in the preamble — a participant cannot swap keys after seeing
other bids.
"""

from __future__ import annotations

import hmac
import hashlib
import secrets
from dataclasses import dataclass

from repro.common.errors import CryptoError

BLIND_SIZE = 16


@dataclass(frozen=True)
class Commitment:
    """A binding, hiding commitment to a byte string."""

    digest: bytes

    def hex(self) -> str:
        return self.digest.hex()


@dataclass(frozen=True)
class Opening:
    """The data needed to open a :class:`Commitment`."""

    value: bytes
    blind: bytes


def commit(value: bytes, blind: bytes | None = None) -> tuple[Commitment, Opening]:
    """Commit to ``value``; returns the commitment and its opening."""
    if blind is None:
        blind = secrets.token_bytes(BLIND_SIZE)
    if len(blind) < 8:
        raise CryptoError("blind must be at least 8 bytes")
    digest = hashlib.sha256(
        len(blind).to_bytes(4, "big") + blind + value
    ).digest()
    return Commitment(digest=digest), Opening(value=value, blind=blind)


def verify_opening(commitment: Commitment, opening: Opening) -> bool:
    """True when ``opening`` matches ``commitment``."""
    digest = hashlib.sha256(
        len(opening.blind).to_bytes(4, "big") + opening.blind + opening.value
    ).digest()
    return hmac.compare_digest(digest, commitment.digest)
