"""Hashing helpers used across the ledger and protocol layers.

All hashing is SHA-256.  Structured data is serialized with a canonical,
sorted-key JSON encoding before hashing so that hash values do not depend
on dict insertion order or platform.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def sha256(data: bytes) -> bytes:
    """Raw SHA-256 digest."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Hex-encoded SHA-256 digest."""
    return hashlib.sha256(data).hexdigest()


def canonical_json(obj: Any) -> bytes:
    """Deterministic JSON bytes: sorted keys, no whitespace, UTF-8.

    ``bytes`` values are not JSON-serializable; callers must hex-encode
    them first (the ledger layer does this in its ``to_payload`` methods).
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def hash_obj(obj: Any) -> str:
    """Hex SHA-256 of the canonical JSON encoding of ``obj``."""
    return sha256_hex(canonical_json(obj))


def hash_concat(*parts: bytes) -> bytes:
    """Digest of length-prefixed concatenation (unambiguous framing)."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()
