"""Authenticated symmetric encryption for sealed bids (pure stdlib).

The two-phase bid exposure protocol requires participants to encrypt their
bids with *temporary keys* that are disclosed only after the block preamble
is fixed.  We implement encrypt-then-MAC over a SHA-256 counter-mode
keystream:

* keystream block ``i`` = SHA-256(enc_key || nonce || i)
* tag = HMAC-SHA-256(mac_key, nonce || ciphertext)

Encryption and MAC keys are derived from the temporary key with domain
separation, so a single 32-byte temporary key is all a participant
discloses.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.common.errors import DecryptionError

KEY_SIZE = 32
NONCE_SIZE = 16
TAG_SIZE = 32


def generate_key(seed: bytes | None = None) -> bytes:
    """A fresh 32-byte temporary key (deterministic when ``seed`` given)."""
    if seed is None:
        return secrets.token_bytes(KEY_SIZE)
    return hashlib.sha256(b"tempkey" + seed).digest()


def _derive(key: bytes, label: bytes) -> bytes:
    return hmac.new(key, label, hashlib.sha256).digest()


def _keystream(enc_key: bytes, nonce: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(
            enc_key + nonce + counter.to_bytes(8, "big")
        ).digest()
        counter += 1
    return bytes(out[:length])


@dataclass(frozen=True)
class SealedBox:
    """Ciphertext container: nonce, ciphertext, authentication tag."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        return self.nonce + self.tag + self.ciphertext

    @classmethod
    def from_bytes(cls, raw: bytes) -> "SealedBox":
        if len(raw) < NONCE_SIZE + TAG_SIZE:
            raise DecryptionError("sealed box too short")
        return cls(
            nonce=raw[:NONCE_SIZE],
            tag=raw[NONCE_SIZE : NONCE_SIZE + TAG_SIZE],
            ciphertext=raw[NONCE_SIZE + TAG_SIZE :],
        )


def encrypt(key: bytes, plaintext: bytes, nonce: bytes | None = None) -> SealedBox:
    """Encrypt-then-MAC ``plaintext`` under the temporary ``key``."""
    if len(key) != KEY_SIZE:
        raise DecryptionError(f"key must be {KEY_SIZE} bytes")
    if nonce is None:
        nonce = secrets.token_bytes(NONCE_SIZE)
    if len(nonce) != NONCE_SIZE:
        raise DecryptionError(f"nonce must be {NONCE_SIZE} bytes")
    enc_key = _derive(key, b"enc")
    mac_key = _derive(key, b"mac")
    stream = _keystream(enc_key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(mac_key, nonce + ciphertext, hashlib.sha256).digest()
    return SealedBox(nonce=nonce, ciphertext=ciphertext, tag=tag)


def decrypt(key: bytes, box: SealedBox) -> bytes:
    """Verify the tag and recover the plaintext.

    Raises :class:`DecryptionError` on a wrong key or tampered box.
    """
    if len(key) != KEY_SIZE:
        raise DecryptionError(f"key must be {KEY_SIZE} bytes")
    enc_key = _derive(key, b"enc")
    mac_key = _derive(key, b"mac")
    expected = hmac.new(mac_key, box.nonce + box.ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, box.tag):
        raise DecryptionError("authentication tag mismatch")
    stream = _keystream(enc_key, box.nonce, len(box.ciphertext))
    return bytes(c ^ s for c, s in zip(box.ciphertext, stream))
