"""Schnorr signatures over a fixed prime-order subgroup (pure stdlib).

Participants sign bids and miners sign blocks.  The group is the
quadratic-residue subgroup of a 1024-bit safe prime; parameters are small
relative to production standards but the scheme is a real public-key
signature: verification needs only the public
key, and any bit flip in message or signature fails verification.

Signing is deterministic (RFC-6979 style nonce derivation from the secret
key and message) so the ledger simulation stays reproducible.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import SignatureError

# Safe prime P = 2*Q + 1 with Q prime (RFC 2409 Oakley Group 2, 1024-bit);
# G = 4 is a quadratic residue and therefore generates the order-Q subgroup.
# Parameters are verified at import time below.
P = 0xFFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF
Q = (P - 1) // 2
G = 4  # 2^2 is a quadratic residue, hence generates the order-Q subgroup.


def _hash_to_int(*parts: bytes) -> int:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return int.from_bytes(hasher.digest(), "big")


@dataclass(frozen=True)
class KeyPair:
    """A Schnorr key pair: secret exponent and public group element."""

    secret: int
    public: int

    @classmethod
    def generate(cls, seed: bytes | None = None) -> "KeyPair":
        """Generate a key pair; ``seed`` makes generation deterministic."""
        if seed is None:
            secret = secrets.randbelow(Q - 1) + 1
        else:
            secret = _hash_to_int(b"keygen", seed) % (Q - 1) + 1
        return cls(secret=secret, public=pow(G, secret, P))


def sign(secret: int, message: bytes) -> Tuple[int, int]:
    """Produce a Schnorr signature ``(challenge, response)``.

    The nonce is derived deterministically from ``(secret, message)``.
    """
    nonce = _hash_to_int(b"nonce", secret.to_bytes(160, "big"), message) % (Q - 1) + 1
    commitment = pow(G, nonce, P)
    public = pow(G, secret, P)
    challenge = (
        _hash_to_int(
            b"chal",
            commitment.to_bytes(160, "big"),
            public.to_bytes(160, "big"),
            message,
        )
        % Q
    )
    response = (nonce + challenge * secret) % Q
    return challenge, response


def verify(public: int, message: bytes, signature: Tuple[int, int]) -> bool:
    """Check a signature against ``public`` and ``message``."""
    try:
        challenge, response = signature
    except (TypeError, ValueError):
        return False
    if not (0 <= challenge < Q and 0 <= response < Q):
        return False
    # commitment' = G^response * public^(-challenge) mod P
    commitment = (
        pow(G, response, P) * pow(pow(public, challenge, P), P - 2, P)
    ) % P
    expected = (
        _hash_to_int(
            b"chal",
            commitment.to_bytes(160, "big"),
            public.to_bytes(160, "big"),
            message,
        )
        % Q
    )
    return expected == challenge


def require_valid(public: int, message: bytes, signature: Tuple[int, int]) -> None:
    """Raise :class:`SignatureError` unless the signature verifies."""
    if not verify(public, message, signature):
        raise SignatureError("signature verification failed")


def _self_check() -> None:
    # Group sanity: G must have order Q (so G^Q == 1 and G != 1).
    assert pow(G, Q, P) == 1 and G != 1, "bad Schnorr group parameters"


_self_check()
