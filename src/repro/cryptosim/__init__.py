"""Self-contained cryptographic primitives (stdlib only).

Functional — not production-grade — implementations of everything the
two-phase bid exposure protocol needs: SHA-256 hashing helpers, Schnorr
signatures, an authenticated stream cipher for sealed bids, and hash
commitments binding temporary keys to the preamble.
"""

from repro.cryptosim.commitments import Commitment, Opening, commit, verify_opening
from repro.cryptosim.hashing import (
    canonical_json,
    hash_concat,
    hash_obj,
    sha256,
    sha256_hex,
)
from repro.cryptosim.schnorr import KeyPair, require_valid, sign, verify
from repro.cryptosim.symmetric import (
    KEY_SIZE,
    SealedBox,
    decrypt,
    encrypt,
    generate_key,
)

__all__ = [
    "Commitment",
    "Opening",
    "commit",
    "verify_opening",
    "canonical_json",
    "hash_concat",
    "hash_obj",
    "sha256",
    "sha256_hex",
    "KeyPair",
    "sign",
    "verify",
    "require_valid",
    "SealedBox",
    "encrypt",
    "decrypt",
    "generate_key",
    "KEY_SIZE",
]
