"""Durability overhead benches: journaling must not tax the round.

Every durable subsystem writes its WAL record *before* mutating state
(see docs/DURABILITY.md), so the question CI has to keep answering is:
what does write-ahead journaling cost a realistic round?  The round
here is the full node-side pipeline a block triggers — admit ``n``
sealed bids to the mempool (signature-verified), clear the n=800
vectorized bench market, settle the outcome into escrow — run twice in
a paired protocol: once dark, once with every subsystem journaling
through an in-memory ``NodeStore``.

* ``test_bench_round_plain`` — the gated baseline: the round with no
  store attached.
* ``test_bench_round_durable`` — the identical round fully journaled
  (mempool admissions, token ops, the per-block settlement intent).
* ``test_durability_overhead_within_bound`` — interleaved best-of
  pairing of the two; the ratio must stay within
  ``DECLOUD_DURABILITY_CEILING`` (default 1.10, the <=10% budget).
* ``test_bench_wal_append`` — the micro-bench under all of it: framing
  + CRC32 + append for a batch of typical records.

Sizes honour ``DECLOUD_DURABILITY_N`` (falling back to
``DECLOUD_SPEEDUP_N``) so the CI smoke job runs reduced.
"""

from __future__ import annotations

import os
import time

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.cryptosim import schnorr
from repro.ledger.mempool import Mempool
from repro.ledger.miner import make_sealed_bid
from repro.protocol.settlement import SettlementProcessor, TokenLedger
from repro.store import MemoryLogBackend, NodeStore, WriteAheadLog
from repro.workloads.generators import generate_market

DURABILITY_N = int(
    os.environ.get(
        "DECLOUD_DURABILITY_N", os.environ.get("DECLOUD_SPEEDUP_N", "800")
    )
)
#: Allowed durability-on overhead ratio (paired best-of comparison).
DURABILITY_CEILING = float(
    os.environ.get("DECLOUD_DURABILITY_CEILING", "1.10")
)
EVIDENCE = b"durability-bench"

_CACHE: dict = {}


def _market():
    if "market" not in _CACHE:
        _CACHE["market"] = generate_market(DURABILITY_N, seed=0)
    return _CACHE["market"]


def _sealed_txs():
    """One sealed bid per market participant, built once and re-admitted
    every round (mempool admission re-verifies each signature)."""
    if "txs" not in _CACHE:
        txs = []
        for i in range(DURABILITY_N):
            keypair = schnorr.KeyPair.generate(
                seed=f"durability-bench-{i}".encode()
            )
            tx, _reveal = make_sealed_bid(
                sender_id=f"bench-sender-{i}",
                keypair=keypair,
                plaintext=f"bench-bid-{i}".encode(),
                temp_key=bytes([i % 256]) * 32,
                nonce=bytes([i % 256]) * 16,
                blind=bytes([i % 256]) * 32,
            )
            txs.append(tx)
        _CACHE["txs"] = txs
    return _CACHE["txs"]


def _round(durable: bool):
    requests, offers = _market()
    mempool = Mempool(max_size=DURABILITY_N + 1)
    ledger = TokenLedger()
    processor = SettlementProcessor(ledger=ledger)
    if durable:
        store = NodeStore.in_memory()
        store.attach(mempool=mempool, settlement=processor)
    for tx in _sealed_txs():
        mempool.submit(tx)
    auction = DecloudAuction(AuctionConfig(engine="vectorized"))
    outcome = auction.run(requests, offers, evidence=EVIDENCE)
    processor.settle_block(
        outcome.matches, auto_fund=True, block_hash="bench-block"
    )
    return outcome


def test_bench_round_plain(benchmark):
    _sealed_txs()  # build outside the timed region
    outcome = benchmark.pedantic(
        _round, args=(False,), rounds=3, iterations=1
    )
    assert outcome.matches


def test_bench_round_durable(benchmark):
    _sealed_txs()
    outcome = benchmark.pedantic(
        _round, args=(True,), rounds=3, iterations=1
    )
    assert outcome.matches


def test_durability_overhead_within_bound():
    """Paired interleaved best-of: journaled round vs dark round.

    Interleaving and best-of-k make the ratio robust to runner noise;
    the WAL work is canonical-JSON encoding plus a CRC32 per record,
    which the signature checks and the clearing itself must dominate.
    """
    _sealed_txs()
    _round(False)
    _round(True)  # warm both paths

    best_plain = float("inf")
    best_durable = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        _round(False)
        best_plain = min(best_plain, time.perf_counter() - start)

        start = time.perf_counter()
        _round(True)
        best_durable = min(best_durable, time.perf_counter() - start)

    ratio = best_durable / max(best_plain, 1e-9)
    print(
        f"\ndurability overhead at n={DURABILITY_N}: plain "
        f"{best_plain:.4f}s, durable {best_durable:.4f}s, "
        f"ratio {ratio:.3f} (ceiling {DURABILITY_CEILING})"
    )
    assert ratio <= DURABILITY_CEILING, (
        f"write-ahead journaling costs {ratio:.3f}x a dark round at "
        f"n={DURABILITY_N}; durability must stay within "
        f"{DURABILITY_CEILING}x"
    )


def test_bench_wal_append(benchmark):
    """Micro-bench: frame + CRC + append for a batch of typical records."""
    payload = {
        "block_hash": "bench",
        "auto_fund": True,
        "entries": [
            {
                "escrow_id": f"esc-{i:06d}",
                "request_id": f"r{i}",
                "client_id": f"c{i}",
                "provider_id": f"p{i}",
                "amount": 1.0 + i,
            }
            for i in range(8)
        ],
    }

    def append_batch():
        log = WriteAheadLog(MemoryLogBackend())
        for _ in range(256):
            log.append("settlement.block", payload)
        return log

    log = benchmark.pedantic(append_batch, rounds=5, iterations=1)
    assert log.next_seq == 256
