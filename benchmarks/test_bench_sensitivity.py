"""Supply-tightness sensitivity bench.

Demonstrates with data why our Fig. 5b band is milder than the paper's:
the welfare ratio degrades toward (and into) the 0.70-0.85 band exactly
when supply binds.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import sensitivity


def test_bench_sensitivity(benchmark):
    result = benchmark.pedantic(
        sensitivity.run,
        kwargs={
            "n_requests": 120,
            "supply_levels": (1.0, 0.25),
            "duration_scales": (1.8,),
            "seeds": range(2),
        },
        rounds=1,
        iterations=1,
    )
    by_supply = {
        row["offers_per_request"]: row["mean_welfare_ratio"]
        for row in result.rows
    }
    # Scarce supply costs more welfare than abundant supply.
    assert by_supply[0.25] <= by_supply[1.0] + 0.02
    assert all(np.isfinite(v) for v in by_supply.values())
