"""Observability overhead benches: instrumentation must be free when off.

The contract from the obs work: every layer threads an
:class:`~repro.obs.Observability` through the hot path, but the default
is the shared null bundle — so a round cleared *without* a live
registry must cost what it cost before the instrumentation landed.

Three measurements on the n=800 vectorized engine bench market (size
reducible via ``DECLOUD_OBS_N`` / ``DECLOUD_SPEEDUP_N`` for CI smoke):

* ``test_bench_obs_disabled`` — the gated bench: a full round with the
  default (null) observability.  Its committed threshold equals the
  plain vectorized engine baseline, so CI fails if the disabled path
  regresses past the usual gate.
* ``test_bench_obs_enabled`` — the same round with a live registry and
  tracer attached (informative: what turning observability on costs).
* ``test_bench_obs_monitored`` — the enabled round with the full
  :class:`~repro.obs.monitors.MonitorSuite` checking every outcome; its
  committed threshold sits <=10% over the enabled baseline, so CI fails
  if the monitors grow past "a handful of O(matches) passes".
* ``test_disabled_overhead_within_bound`` — interleaved best-of paired
  runs, default path vs explicit ``NULL_OBS``; the ratio must stay
  within ``DECLOUD_OBS_CEILING`` (default 1.05, the <=5% requirement).
* ``test_monitored_overhead_within_bound`` — the same paired protocol
  for monitors: enabled+monitors vs plain enabled must stay within
  ``DECLOUD_MONITOR_CEILING`` (default 1.10).
"""

from __future__ import annotations

import os
import time

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.obs import NULL_OBS, Observability
from repro.obs.monitors import MonitorSuite
from repro.workloads.generators import generate_market

OBS_N = int(
    os.environ.get(
        "DECLOUD_OBS_N", os.environ.get("DECLOUD_SPEEDUP_N", "800")
    )
)
#: Allowed disabled-path overhead ratio (paired best-of comparison).
OBS_CEILING = float(os.environ.get("DECLOUD_OBS_CEILING", "1.05"))
#: Allowed monitor-suite overhead over the plain enabled path.
MONITOR_CEILING = float(os.environ.get("DECLOUD_MONITOR_CEILING", "1.10"))
EVIDENCE = b"obs-bench"


def _market():
    return generate_market(OBS_N, seed=0)


def _run_round(requests, offers, obs=None):
    auction = DecloudAuction(AuctionConfig(engine="vectorized"))
    if obs is None:
        return auction.run(requests, offers, evidence=EVIDENCE)
    return auction.run(requests, offers, evidence=EVIDENCE, obs=obs)


def test_bench_obs_disabled(benchmark):
    requests, offers = _market()
    outcome = benchmark.pedantic(
        _run_round, args=(requests, offers), rounds=3, iterations=1
    )
    assert outcome.matches


def test_bench_obs_enabled(benchmark):
    requests, offers = _market()

    def run():
        return _run_round(requests, offers, obs=Observability("bench"))

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.matches


def test_bench_obs_monitored(benchmark):
    requests, offers = _market()

    def run():
        return _run_round(
            requests,
            offers,
            obs=Observability("bench-mon", monitors=MonitorSuite()),
        )

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.matches


def test_disabled_overhead_within_bound():
    """Paired interleaved best-of: default path vs explicit NULL_OBS.

    Both are the disabled path — the comparison pins the cost of
    threading the null bundle through every layer (`resolve`, null
    spans, `obs.enabled` guards) at <= OBS_CEILING of the default.
    Interleaving and best-of-k make the ratio robust to runner noise.
    """
    requests, offers = _market()
    # warm both paths (matcher caches, numpy JIT-ish first-touch costs)
    _run_round(requests, offers)
    _run_round(requests, offers, obs=NULL_OBS)

    best_default = float("inf")
    best_null = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        _run_round(requests, offers)
        best_default = min(best_default, time.perf_counter() - start)

        start = time.perf_counter()
        _run_round(requests, offers, obs=NULL_OBS)
        best_null = min(best_null, time.perf_counter() - start)

    ratio = best_null / max(best_default, 1e-9)
    print(
        f"\ndisabled-obs overhead at n={OBS_N}: default {best_default:.4f}s, "
        f"null-obs {best_null:.4f}s, ratio {ratio:.3f} "
        f"(ceiling {OBS_CEILING})"
    )
    assert ratio <= OBS_CEILING, (
        f"threading NULL_OBS costs {ratio:.3f}x the default path at "
        f"n={OBS_N}; the disabled path must stay within {OBS_CEILING}x"
    )


def test_enabled_overhead_is_bounded():
    """Turning observability on must not dominate the round (generous
    bound — the enabled path allocates a per-round PhaseTimer, spans,
    and ~25 registry writes, all O(1) per round)."""
    requests, offers = _market()
    _run_round(requests, offers)

    best_off = float("inf")
    best_on = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        _run_round(requests, offers)
        best_off = min(best_off, time.perf_counter() - start)

        start = time.perf_counter()
        _run_round(requests, offers, obs=Observability("bench"))
        best_on = min(best_on, time.perf_counter() - start)

    ratio = best_on / max(best_off, 1e-9)
    print(
        f"\nenabled-obs overhead at n={OBS_N}: off {best_off:.4f}s, "
        f"on {best_on:.4f}s, ratio {ratio:.3f}"
    )
    assert ratio <= 2.0, (
        f"enabled observability costs {ratio:.3f}x a dark round — "
        "per-round instrumentation must stay O(1), not O(market)"
    )


def test_monitored_overhead_within_bound():
    """Paired interleaved best-of: enabled obs vs enabled obs + monitors.

    The monitor suite replays the outcome (budget regrouping, IR per
    match, capacity replay, bucket checks) — all O(matches) work, tiny
    next to clearing itself.  The paired ratio pins that at
    <= MONITOR_CEILING (default 1.10, the <=10% requirement).
    """
    requests, offers = _market()
    _run_round(requests, offers, obs=Observability("warm"))
    _run_round(
        requests, offers, obs=Observability("warm", monitors=MonitorSuite())
    )

    best_plain = float("inf")
    best_monitored = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        _run_round(requests, offers, obs=Observability("bench"))
        best_plain = min(best_plain, time.perf_counter() - start)

        start = time.perf_counter()
        _run_round(
            requests,
            offers,
            obs=Observability("bench", monitors=MonitorSuite()),
        )
        best_monitored = min(best_monitored, time.perf_counter() - start)

    ratio = best_monitored / max(best_plain, 1e-9)
    print(
        f"\nmonitor overhead at n={OBS_N}: enabled {best_plain:.4f}s, "
        f"monitored {best_monitored:.4f}s, ratio {ratio:.3f} "
        f"(ceiling {MONITOR_CEILING})"
    )
    assert ratio <= MONITOR_CEILING, (
        f"the monitor suite costs {ratio:.3f}x an enabled round at "
        f"n={OBS_N}; monitors must stay within {MONITOR_CEILING}x"
    )
