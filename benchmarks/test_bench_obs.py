"""Observability overhead benches: instrumentation must be free when off.

The contract from the obs work: every layer threads an
:class:`~repro.obs.Observability` through the hot path, but the default
is the shared null bundle — so a round cleared *without* a live
registry must cost what it cost before the instrumentation landed.

Three measurements on the n=800 vectorized engine bench market (size
reducible via ``DECLOUD_OBS_N`` / ``DECLOUD_SPEEDUP_N`` for CI smoke):

* ``test_bench_obs_disabled`` — the gated bench: a full round with the
  default (null) observability.  Its committed threshold equals the
  plain vectorized engine baseline, so CI fails if the disabled path
  regresses past the usual gate.
* ``test_bench_obs_enabled`` — the same round with a live registry and
  tracer attached (informative: what turning observability on costs).
* ``test_disabled_overhead_within_bound`` — interleaved best-of paired
  runs, default path vs explicit ``NULL_OBS``; the ratio must stay
  within ``DECLOUD_OBS_CEILING`` (default 1.05, the <=5% requirement).
"""

from __future__ import annotations

import os
import time

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.obs import NULL_OBS, Observability
from repro.workloads.generators import generate_market

OBS_N = int(
    os.environ.get(
        "DECLOUD_OBS_N", os.environ.get("DECLOUD_SPEEDUP_N", "800")
    )
)
#: Allowed disabled-path overhead ratio (paired best-of comparison).
OBS_CEILING = float(os.environ.get("DECLOUD_OBS_CEILING", "1.05"))
EVIDENCE = b"obs-bench"


def _market():
    return generate_market(OBS_N, seed=0)


def _run_round(requests, offers, obs=None):
    auction = DecloudAuction(AuctionConfig(engine="vectorized"))
    if obs is None:
        return auction.run(requests, offers, evidence=EVIDENCE)
    return auction.run(requests, offers, evidence=EVIDENCE, obs=obs)


def test_bench_obs_disabled(benchmark):
    requests, offers = _market()
    outcome = benchmark.pedantic(
        _run_round, args=(requests, offers), rounds=3, iterations=1
    )
    assert outcome.matches


def test_bench_obs_enabled(benchmark):
    requests, offers = _market()

    def run():
        return _run_round(requests, offers, obs=Observability("bench"))

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.matches


def test_disabled_overhead_within_bound():
    """Paired interleaved best-of: default path vs explicit NULL_OBS.

    Both are the disabled path — the comparison pins the cost of
    threading the null bundle through every layer (`resolve`, null
    spans, `obs.enabled` guards) at <= OBS_CEILING of the default.
    Interleaving and best-of-k make the ratio robust to runner noise.
    """
    requests, offers = _market()
    # warm both paths (matcher caches, numpy JIT-ish first-touch costs)
    _run_round(requests, offers)
    _run_round(requests, offers, obs=NULL_OBS)

    best_default = float("inf")
    best_null = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        _run_round(requests, offers)
        best_default = min(best_default, time.perf_counter() - start)

        start = time.perf_counter()
        _run_round(requests, offers, obs=NULL_OBS)
        best_null = min(best_null, time.perf_counter() - start)

    ratio = best_null / max(best_default, 1e-9)
    print(
        f"\ndisabled-obs overhead at n={OBS_N}: default {best_default:.4f}s, "
        f"null-obs {best_null:.4f}s, ratio {ratio:.3f} "
        f"(ceiling {OBS_CEILING})"
    )
    assert ratio <= OBS_CEILING, (
        f"threading NULL_OBS costs {ratio:.3f}x the default path at "
        f"n={OBS_N}; the disabled path must stay within {OBS_CEILING}x"
    )


def test_enabled_overhead_is_bounded():
    """Turning observability on must not dominate the round (generous
    bound — the enabled path allocates a per-round PhaseTimer, spans,
    and ~25 registry writes, all O(1) per round)."""
    requests, offers = _market()
    _run_round(requests, offers)

    best_off = float("inf")
    best_on = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        _run_round(requests, offers)
        best_off = min(best_off, time.perf_counter() - start)

        start = time.perf_counter()
        _run_round(requests, offers, obs=Observability("bench"))
        best_on = min(best_on, time.perf_counter() - start)

    ratio = best_on / max(best_off, 1e-9)
    print(
        f"\nenabled-obs overhead at n={OBS_N}: off {best_off:.4f}s, "
        f"on {best_on:.4f}s, ratio {ratio:.3f}"
    )
    assert ratio <= 2.0, (
        f"enabled observability costs {ratio:.3f}x a dark round — "
        "per-round instrumentation must stay O(1), not O(market)"
    )
