"""Candidate-path scaling benches: n=1k / 10k / 100k bid blocks.

Each bench clears one zone-structured market (``generate_zone_market``,
strong locality, zone count growing with the block so zone occupancy
stays roughly constant) through the full vectorized pipeline with the
:class:`~repro.core.candidates.NetworkZoneGenerator` in front of the
matcher.  The certificate ``verify`` knob is off here — inline scalar
replay is an audit tool and deliberately O(pairs); the safety claim is
carried by the differential + property suites, not by the benches.

``test_candidate_scaling_subquadratic`` fits a log-log slope across the
measured sizes and asserts the candidate path stays clearly below the
all-pairs exponent (slope 2.0): the committed full-block curve on the
baseline machine is 0.10s / 1.23s / 73.8s for 1k / 10k / 100k bids,
slope ~1.43.

Env knobs (CI smoke mirrors the other benches):

- ``DECLOUD_CAND_SIZES``  — space-separated bid counts (default
  ``1000 10000 100000``); sizes not listed are skipped.
- ``DECLOUD_CAND_STRIDE`` — request-side sampling stride.  Stride k
  keeps every k-th request but the *full* offer book, so the 100k-bid
  grouping/screening machinery still runs at full width while the
  admission work shrinks by ~k (the CI "stride-sampled 100k run").
"""

from __future__ import annotations

import math
import os

import pytest

from repro.core.auction import DecloudAuction
from repro.core.candidates import NetworkZoneGenerator
from repro.core.config import AuctionConfig
from repro.workloads.generators import generate_zone_market

SIZES = tuple(
    int(token)
    for token in os.environ.get(
        "DECLOUD_CAND_SIZES", "1000 10000 100000"
    ).split()
)
STRIDE = int(os.environ.get("DECLOUD_CAND_STRIDE", "1"))
#: All-pairs is slope 2.0; the committed full-block curve sits at ~1.43
#: and leaves headroom for runner noise without letting a quadratic
#: regression through.
MAX_SLOPE = 1.8

_SECONDS: dict[int, float] = {}
_STATS: dict[int, dict] = {}


def _zones_for(n_bids: int) -> int:
    # ~150 offers per zone at every size: a bigger market covers more
    # cells, it does not pack more providers into each one.
    return max(8, n_bids // 300)


def _clear_block(n_bids: int):
    requests, offers, _ = generate_zone_market(
        n_bids // 2,
        n_zones=_zones_for(n_bids),
        seed=3,
        kind="network",
        locality="strong",
    )
    requests = requests[::STRIDE]
    generator = NetworkZoneGenerator(verify="off")
    config = AuctionConfig(engine="vectorized", candidates=generator)
    import time

    start = time.perf_counter()
    outcome = DecloudAuction(config).run(
        requests, offers, evidence=b"candidate-bench"
    )
    _SECONDS[n_bids] = time.perf_counter() - start
    _STATS[n_bids] = dict(generator.last_stats)
    assert outcome.matches, f"no matches at n_bids={n_bids}"
    return outcome


def _bench(benchmark, n_bids: int):
    if n_bids not in SIZES:
        pytest.skip(f"n_bids={n_bids} not in DECLOUD_CAND_SIZES")
    benchmark.pedantic(_clear_block, args=(n_bids,), rounds=1, iterations=1)
    stats = _STATS[n_bids]
    admitted = stats["pairs_admitted"] / max(stats["pairs_total"], 1)
    print(
        f"\nn_bids={n_bids} stride={STRIDE}: {_SECONDS[n_bids]:.2f}s, "
        f"{stats['groups']} groups, admitted {100 * admitted:.2f}% "
        f"of {stats['pairs_total']} pairs in {stats['rounds']} rounds"
    )


def test_bench_candidates_1k(benchmark):
    _bench(benchmark, 1_000)


def test_bench_candidates_10k(benchmark):
    _bench(benchmark, 10_000)


def test_bench_candidates_100k(benchmark):
    _bench(benchmark, 100_000)


def test_candidate_scaling_subquadratic():
    """Log-log slope of round time vs block size stays sub-quadratic."""
    sizes = sorted(SIZES)
    if len(sizes) < 2:
        pytest.skip("need at least two sizes for a slope fit")
    for n_bids in sizes:
        if n_bids not in _SECONDS:
            _clear_block(n_bids)

    xs = [math.log10(n) for n in sizes]
    # Floor at 50ms: below that, interpreter noise dominates and an
    # artificially fast small-block point would steepen the fit.
    ys = [math.log10(max(_SECONDS[n], 0.05)) for n in sizes]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    slope = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    ) / sum((x - mean_x) ** 2 for x in xs)

    curve = ", ".join(f"{n}: {_SECONDS[n]:.2f}s" for n in sizes)
    print(f"\ncandidate path scaling (stride={STRIDE}): {curve} "
          f"-> slope {slope:.2f}")
    assert slope < MAX_SLOPE, (
        f"candidate path scaling slope {slope:.2f} >= {MAX_SLOPE} "
        f"({curve}); the pruning stage is no longer sub-quadratic"
    )
    # The admitted share must *shrink* as the block grows — constant
    # share would mean the screens stopped pruning relative work.
    shares = [
        _STATS[n]["pairs_admitted"] / max(_STATS[n]["pairs_total"], 1)
        for n in sizes
    ]
    assert shares == sorted(shares, reverse=True), (
        f"admitted pair share is not monotonically shrinking: {shares}"
    )
