"""Strategy-regret bench: no bidding strategy beats truthfulness.

DSIC for this mechanism is exact within a cluster and holds *on average*
across markets in the general heterogeneous setting (individual markets
can be gamed via cluster-boundary effects — EXPERIMENTS.md quantifies
the epsilon).  The bench therefore asserts the mean advantage over the
experiment's full market sample, not per-market dominance.
"""

from __future__ import annotations

from repro.experiments import strategy_regret


def test_bench_strategy_regret(benchmark):
    result = benchmark.pedantic(
        strategy_regret.run,
        kwargs={"n_markets": 20, "n_requests": 12},
        rounds=1,
        iterations=1,
    )
    client_rows = {
        row["strategy"]: row for row in result.rows if row["side"] == "client"
    }
    assert client_rows["truthful"]["mean_advantage"] == 0.0
    truthful_mean = client_rows["truthful"]["mean_utility"]
    for name, row in client_rows.items():
        if name == "truthful":
            continue
        assert row["mean_advantage"] <= 0.02 * truthful_mean + 1e-6, (
            f"client strategy {name} beat truthful bidding by "
            f"{row['mean_advantage']:.5f} on average"
        )
    # Truthful earns the top mean client utility of all strategies.
    assert truthful_mean >= max(
        r["mean_utility"] for r in client_rows.values()
    ) - 1e-9

    # Provider side: undercutting must never pay; cost *inflation* can
    # gain a small epsilon by escaping loss-making marginal allocations
    # (fractional-cost accounting — documented in EXPERIMENTS.md).
    provider_rows = {
        row["strategy"]: row
        for row in result.rows
        if row["side"] == "provider"
    }
    for name, row in provider_rows.items():
        if name.startswith("undercut"):
            assert row["mean_advantage"] <= 1e-6, (
                f"undercutting gained {row['mean_advantage']:.5f}"
            )
        elif name.startswith("inflate"):
            assert row["mean_advantage"] <= 0.05, (
                f"inflation gained {row['mean_advantage']:.5f}, beyond "
                "the documented epsilon"
            )
