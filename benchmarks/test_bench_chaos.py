"""Chaos-harness benchmark: protocol rounds over a faulty network.

Measures the cost of running the full ledger-backed protocol through
the fault-injection stack (seeded drops, delays, duplicates, Byzantine
actors) — the overhead a resilience experiment pays over the clean-bus
round benchmarked in ``test_bench_ledger.py``.
"""

from __future__ import annotations

from repro.sim.chaos import ChaosSpec, run_chaos_sweep

BENCH_SPEC = ChaosSpec(
    num_clients=6,
    num_providers=3,
    num_miners=3,
    rounds=2,
    seed=11,
    difficulty_bits=4,
    withholding_clients=1,
    equivocating_leader=True,
    reorder_rate=0.1,
    duplicate_rate=0.05,
)


def test_bench_chaos_sweep(benchmark):
    points = benchmark.pedantic(
        run_chaos_sweep,
        args=(BENCH_SPEC,),
        kwargs={"drop_rates": (0.0, 0.2)},
        rounds=3,
        iterations=1,
    )
    clean, faulty = points
    assert clean.success_rate == 1.0
    assert faulty.success_rate == 1.0
    assert clean.integrity_failures == faulty.integrity_failures == 0
    # faults may shrink welfare but the harness must retain some market
    assert faulty.welfare > 0.0
