"""Fig. 5d bench: satisfaction, flexible vs inflexible matching."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5d
from benchmarks.conftest import BENCH_SEEDS, BENCH_SIMILARITIES


def test_bench_fig5d(benchmark, similarity_points):
    result = benchmark.pedantic(
        fig5d.run,
        kwargs={
            "similarities": BENCH_SIMILARITIES,
            "seeds": BENCH_SEEDS,
            "points": similarity_points,
        },
        rounds=1,
        iterations=1,
    )

    sats = np.array(result.column("satisfaction"))
    flex = np.array(result.column("flexibility"))
    strict_mean = sats[flex == 1.0].mean()
    flexible_mean = sats[flex == 0.8].mean()
    # Paper: "80% flexibility results in stably higher satisfaction".
    assert flexible_mean > strict_mean
