"""Gate the CI benchmark smoke job on committed timing thresholds.

Usage (mirrors .github/workflows/ci.yml):

    pytest benchmarks/ --benchmark-only -k "fig5a or matching" \
        --benchmark-json=bench.json
    python benchmarks/check_thresholds.py bench.json --slack 4

A benchmark fails the gate when its measured mean exceeds
``baseline_seconds * max_regression * slack`` from ``thresholds.json``
— i.e. a >2x regression against the recorded baseline, after
discounting runner-speed variance via ``--slack``.  Benchmarks without
a committed baseline only warn, so adding a bench does not break CI;
commit a baseline in the same PR to put it under the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_THRESHOLDS = Path(__file__).resolve().parent / "thresholds.json"


def _print_phase_breakdown(phases_path: Path) -> None:
    """Dump the per-phase timing split captured by the speedup bench
    (``DECLOUD_PHASE_REPORT``), so a regression failure shows *which*
    pipeline phase ate the budget without re-running anything."""
    if not phases_path.exists():
        print(f"(no phase report at {phases_path})")
        return
    document = json.loads(phases_path.read_text())
    phases = document.get("phases", {})
    total = sum(entry["seconds"] for entry in phases.values()) or 1.0
    label = document.get("label", phases_path.name)
    print(f"per-phase breakdown ({label}):")
    for name, entry in sorted(
        phases.items(), key=lambda kv: -kv[1]["seconds"]
    ):
        share = 100.0 * entry["seconds"] / total
        print(
            f"  {name}: {entry['seconds']:.4f}s ({share:.1f}%, "
            f"x{entry['count']})"
        )


def check(
    results_path: Path,
    thresholds_path: Path,
    slack: float,
    phases_path: Path | None = None,
) -> int:
    results = json.loads(results_path.read_text())
    thresholds = json.loads(thresholds_path.read_text())["benchmarks"]

    failures = []
    seen = set()
    for bench in results.get("benchmarks", []):
        name = bench["name"]
        seen.add(name)
        entry = thresholds.get(name)
        if entry is None:
            print(f"WARN: no committed threshold for {name}; not gated")
            continue
        limit = entry["baseline_seconds"] * entry["max_regression"] * slack
        mean = bench["stats"]["mean"]
        verdict = "ok" if mean <= limit else "REGRESSION"
        print(
            f"{name}: mean {mean:.4f}s, limit {limit:.4f}s "
            f"(baseline {entry['baseline_seconds']}s x "
            f"{entry['max_regression']} x slack {slack}) -> {verdict}"
        )
        if mean > limit:
            failures.append(name)

    for name in sorted(set(thresholds) - seen):
        print(f"WARN: threshold for {name} matched no benchmark result")

    if failures:
        print(f"FAIL: {len(failures)} benchmark(s) regressed >2x: "
              f"{', '.join(failures)}")
        if phases_path is not None:
            _print_phase_breakdown(phases_path)
        return 1
    print("all gated benchmarks within thresholds")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", type=Path,
                        help="--benchmark-json output file")
    parser.add_argument("--thresholds", type=Path,
                        default=DEFAULT_THRESHOLDS)
    parser.add_argument("--slack", type=float, default=1.0,
                        help="runner-speed factor applied to every limit")
    parser.add_argument("--phases", type=Path, default=None,
                        help="phase-timing JSON (DECLOUD_PHASE_REPORT "
                             "output) printed when the gate fails")
    args = parser.parse_args()
    return check(args.results, args.thresholds, args.slack, args.phases)


if __name__ == "__main__":
    sys.exit(main())
