"""Sharded market fabric benches: global clear vs zone-sharded clear.

One strong-locality zone market (``generate_zone_market``, zone count
growing with the block so zone occupancy stays roughly constant, a 5%
cross-zone request fraction keeping the spillover round honest) cleared
three ways through the vectorized engine:

* **global** — the unsharded baseline, one auction over the whole block;
* **sequential sharding** (``shard_workers=0``) — the fabric's partition
  + per-shard pipeline + spillover, all on one core.  This is where the
  structural win lives: clustering and matching are superlinear in block
  size, so clearing Z zone-local slices beats one global clear long
  before any parallelism;
* **pooled sharding** (``shard_workers=4``) — the same digest computed
  across a process pool (bit-identity is the differential suite's
  contract, not re-asserted here).

``test_sharding_speedup`` gates the committed claim: sequential sharding
clears the largest configured block at least 2x faster than the global
path, and prints the welfare delta so the trade-off stays visible in CI
logs.  ``test_sharding_zone_scaling`` prints the clear-time curve over
zone counts and asserts more shards never makes the fabric slower than
its coarsest split.

Committed full-size curve (10k bids, 20 zones, baseline machine):
global 21.8s, sequential sharding 5.6s (3.9x), pooled 6.9s; sharded
welfare ~2.0x the global clear's (the global mega-mini-auction reduces
far more trades).  CI runs a 4000-bid smoke via ``DECLOUD_SHARD_SIZES``
(2.2x speedup at that size).

Env knobs:

- ``DECLOUD_SHARD_SIZES`` — space-separated bid counts (default
  ``10000``); the speedup gate runs at the largest listed size.
- ``DECLOUD_SHARD_ZONES`` — zone counts for the scaling curve (default
  ``2 4 8 16``).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig, ShardPlan
from repro.workloads.generators import generate_zone_market

SIZES = tuple(
    int(token)
    for token in os.environ.get("DECLOUD_SHARD_SIZES", "10000").split()
)
ZONE_COUNTS = tuple(
    int(token)
    for token in os.environ.get("DECLOUD_SHARD_ZONES", "2 4 8 16").split()
)
#: The committed claim: sequential sharding at least halves the
#: end-to-end block-clear time of the global vectorized path.
MIN_SPEEDUP = 2.0

_SECONDS: dict[tuple[str, int], float] = {}
_WELFARE: dict[tuple[str, int], float] = {}
_MARKETS: dict[tuple[int, int], tuple] = {}


def _zones_for(n_bids: int) -> int:
    # ~250 bids per zone at every size, min 4: bigger blocks cover more
    # zones instead of packing each one denser.
    return max(4, n_bids // 500)


def _market(n_bids: int, n_zones: int):
    key = (n_bids, n_zones)
    if key not in _MARKETS:
        _MARKETS[key] = generate_zone_market(
            n_bids // 2,
            n_zones=n_zones,
            seed=42,
            kind="network",
            locality="strong",
            cross_zone_fraction=0.05,
        )[:2]
    return _MARKETS[key]


def _config(mode: str) -> AuctionConfig:
    if mode == "global":
        return AuctionConfig(engine="vectorized")
    workers = 4 if mode == "pooled" else 0
    return AuctionConfig(
        engine="vectorized",
        sharding=ShardPlan(kind="network", shard_workers=workers),
    )


def _clear(mode: str, n_bids: int, n_zones: int | None = None):
    requests, offers = _market(n_bids, n_zones or _zones_for(n_bids))
    start = time.perf_counter()
    outcome = DecloudAuction(_config(mode)).run(
        requests, offers, evidence=b"sharding-bench"
    )
    _SECONDS[(mode, n_bids)] = time.perf_counter() - start
    _WELFARE[(mode, n_bids)] = sum(m.welfare for m in outcome.matches)
    assert outcome.matches, f"no matches ({mode}, n_bids={n_bids})"
    return outcome


def _bench(benchmark, mode: str):
    n_bids = max(SIZES)
    benchmark.pedantic(_clear, args=(mode, n_bids), rounds=1, iterations=1)
    print(
        f"\n{mode} n_bids={n_bids}: {_SECONDS[(mode, n_bids)]:.2f}s, "
        f"welfare {_WELFARE[(mode, n_bids)]:.1f}"
    )


def test_bench_sharding_global(benchmark):
    _bench(benchmark, "global")


def test_bench_sharding_sequential(benchmark):
    _bench(benchmark, "sequential")


def test_bench_sharding_pooled(benchmark):
    _bench(benchmark, "pooled")


def test_sharding_speedup():
    """Sequential sharding halves the global clear time (committed 2x)."""
    n_bids = max(SIZES)
    for mode in ("global", "sequential"):
        if (mode, n_bids) not in _SECONDS:
            _clear(mode, n_bids)
    global_s = _SECONDS[("global", n_bids)]
    sharded_s = _SECONDS[("sequential", n_bids)]
    welfare_ratio = _WELFARE[("sequential", n_bids)] / max(
        _WELFARE[("global", n_bids)], 1e-12
    )
    print(
        f"\nsharding speedup at n_bids={n_bids}: global {global_s:.2f}s "
        f"vs sharded {sharded_s:.2f}s ({global_s / sharded_s:.2f}x), "
        f"welfare ratio sharded/global {welfare_ratio:.3f}"
    )
    assert MIN_SPEEDUP * sharded_s <= global_s, (
        f"sharded clear is only {global_s / sharded_s:.2f}x faster than "
        f"global at n_bids={n_bids} (need >= {MIN_SPEEDUP}x)"
    )


def test_sharding_zone_scaling():
    """Clear time over zone counts: finer shards must never lose to the
    coarsest split (10% slack for timer noise)."""
    if len(ZONE_COUNTS) < 2:
        pytest.skip("need at least two zone counts for a curve")
    n_bids = max(SIZES)
    seconds = {}
    for zones in ZONE_COUNTS:
        requests, offers = _market(n_bids, zones)
        start = time.perf_counter()
        auction = DecloudAuction(_config("sequential"))
        auction.run(requests, offers, evidence=b"sharding-bench")
        seconds[zones] = time.perf_counter() - start
        assert auction.last_shard_stats["shards"] == zones, (
            "network tags must shard one-to-one with generator zones"
        )
    curve = ", ".join(f"{z} zones: {seconds[z]:.2f}s" for z in ZONE_COUNTS)
    print(f"\nsharded clear scaling at n_bids={n_bids}: {curve}")
    coarsest, finest = ZONE_COUNTS[0], ZONE_COUNTS[-1]
    assert seconds[finest] <= seconds[coarsest] * 1.1, (
        f"finer sharding got slower: {curve}"
    )
