"""Fig. 5e bench: satisfaction across flexibility levels."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5e
from benchmarks.conftest import BENCH_SEEDS, BENCH_SIMILARITIES


def test_bench_fig5e(benchmark):
    result = benchmark.pedantic(
        fig5e.run,
        kwargs={"similarities": BENCH_SIMILARITIES, "seeds": BENCH_SEEDS},
        rounds=1,
        iterations=1,
    )

    # More flexibility -> weakly higher mean satisfaction overall.
    flex = np.array(result.column("flexibility"))
    sats = np.array(result.column("mean_satisfaction"))
    by_flex = {
        level: sats[flex == level].mean() for level in sorted(set(flex))
    }
    levels = sorted(by_flex)  # ascending flexibility = less flexible last
    # satisfaction at the most flexible setting beats strict matching
    assert by_flex[levels[0]] > by_flex[levels[-1]]
