"""Fig. 5a bench: welfare of DeCloud vs the non-truthful benchmark."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5a
from benchmarks.conftest import BENCH_SEEDS, BENCH_SIZES


def test_bench_fig5a(benchmark, size_points):
    result = benchmark.pedantic(
        fig5a.run,
        kwargs={"sizes": BENCH_SIZES, "seeds": BENCH_SEEDS,
                "points": size_points},
        rounds=1,
        iterations=1,
    )

    # Shape: DeCloud tracks the benchmark from below.  Both are greedy
    # heuristics, so individual blocks may flip by a few percent; the
    # aggregate must favor the unconstrained benchmark.
    decloud = np.array(result.column("decloud_welfare"))
    bench = np.array(result.column("benchmark_welfare"))
    assert decloud.sum() <= bench.sum() + 1e-6
    assert np.all(decloud <= bench * 1.10 + 1e-6)

    sizes = np.array(result.column("n_requests"))
    small = decloud[sizes == min(BENCH_SIZES)].mean()
    large = decloud[sizes == max(BENCH_SIZES)].mean()
    assert large > small, "welfare must grow with market size"
