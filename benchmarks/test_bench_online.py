"""Online-simulation bench: block-interval sensitivity (§VI)."""

from __future__ import annotations

import pytest

from repro.experiments.sweeps import eval_config
from repro.sim import ArrivalProcess, OnlineSimulator

HORIZON = 12.0


@pytest.fixture(scope="module")
def arrival_stream():
    return ArrivalProcess(
        request_rate=8.0, offer_rate=4.0, horizon=HORIZON, seed=5
    ).generate()


@pytest.mark.parametrize("interval", [1.0, 4.0])
def test_bench_online_rounds(benchmark, arrival_stream, interval):
    requests, offers = arrival_stream
    simulator = OnlineSimulator(
        config=eval_config(), block_interval=interval, seed=5
    )

    result = benchmark.pedantic(
        simulator.run,
        kwargs={
            "requests": requests,
            "offers": offers,
            "horizon": HORIZON,
        },
        rounds=2,
        iterations=1,
    )
    assert result.total_trades > 0
    assert 0.0 < result.served_fraction <= 1.0
    # Every round cleared by the online engine is budget balanced.
    for record in result.rounds:
        payments = record.outcome.total_payments
        revenues = sum(record.outcome.revenues().values())
        assert abs(payments - revenues) < 1e-9
