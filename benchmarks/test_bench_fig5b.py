"""Fig. 5b bench: welfare ratio DeCloud / benchmark."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5b
from benchmarks.conftest import BENCH_SEEDS, BENCH_SIZES


def test_bench_fig5b(benchmark, size_points):
    result = benchmark.pedantic(
        fig5b.run,
        kwargs={"sizes": BENCH_SIZES, "seeds": BENCH_SEEDS,
                "points": size_points},
        rounds=1,
        iterations=1,
    )

    ratios = np.array(result.column("welfare_ratio"))
    sizes = np.array(result.column("n_requests"))
    # The DSIC tradeoff: the ratio trend sits below 1 (individual greedy
    # blocks may flip by a few percent), but not catastrophically so —
    # the paper's band is 0.70-0.85; our simulator loses less, so we
    # assert the conservative envelope.
    assert ratios.mean() <= 1.0 + 1e-6
    assert np.all(ratios <= 1.10 + 1e-6)
    assert ratios.mean() > 0.7

    # Large markets lose no more than small ones (paper: ratio improves
    # with market size).
    small = ratios[sizes == min(BENCH_SIZES)].mean()
    large = ratios[sizes == max(BENCH_SIZES)].mean()
    assert large >= small - 0.05
