"""Fig. 5c bench: percentage of reduced trades."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5c
from benchmarks.conftest import BENCH_SEEDS, BENCH_SIZES


def test_bench_fig5c(benchmark, size_points):
    result = benchmark.pedantic(
        fig5c.run,
        kwargs={"sizes": BENCH_SIZES, "seeds": BENCH_SEEDS,
                "points": size_points},
        rounds=1,
        iterations=1,
    )

    reduced = np.array(result.column("reduced_pct"))
    sizes = np.array(result.column("n_requests"))
    # Paper: below 5% overall, 0.5% in large systems.  Small markets are
    # noisy (one excluded client among a handful of trades), so the cap
    # is asserted on the mean and on the largest size.
    assert reduced.mean() < 10.0
    large = reduced[sizes == max(BENCH_SIZES)].mean()
    small = reduced[sizes == min(BENCH_SIZES)].mean()
    assert large < 5.0
    assert large <= small + 1.0, "reduction must not grow with market size"
