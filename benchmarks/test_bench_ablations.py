"""Ablation bench: mini-auctions, randomization, cluster breadth."""

from __future__ import annotations

from repro.experiments import ablations


def test_bench_ablations(benchmark):
    result = benchmark.pedantic(
        ablations.run,
        kwargs={"sizes": (50, 100), "seeds": range(2)},
        rounds=1,
        iterations=1,
    )

    rows = {row["variant"]: row for row in result.rows}
    assert "full mechanism" in rows and "no mini-auctions" in rows
    # Every variant stays a functioning market: positive satisfaction and
    # a sane welfare ratio.
    for row in result.rows:
        assert row["mean_satisfaction"] > 0.0
        assert row["mean_welfare_ratio"] > 0.5
