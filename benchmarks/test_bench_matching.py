"""Matching benches: heuristic ablation + paired engine kernels.

The paired cases time the same matching front half — quality-of-match
scoring, feasibility, and best-offer-set formation over every
request×offer pair — once through the scalar reference implementation
and once through the NumPy kernel in
:mod:`repro.core.matching_vectorized`.  The speedup test pins the
tentpole performance claim (>= 5x at n=800) *and* re-asserts the
differential contract on the exact arrays being timed, so a "fast but
wrong" kernel cannot pass.

``DECLOUD_SPEEDUP_N`` shrinks the speedup market for constrained CI
runners; the 5x floor is only enforced at the full n=800 size.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.matching import best_offer_set, block_maxima
from repro.core.matching_vectorized import best_offer_sets
from repro.experiments import matching_ablation
from repro.workloads.generators import generate_market

SPEEDUP_N = int(os.environ.get("DECLOUD_SPEEDUP_N", "800"))
SPEEDUP_FLOOR = 5.0
BREADTH = 3


def _speedup_market():
    return generate_market(SPEEDUP_N, seed=0)


def _scalar_front_half(requests, offers, maxima):
    return [
        best_offer_set(request, offers, maxima, BREADTH)
        for request in requests
    ]


def _vectorized_front_half(requests, offers, maxima):
    return best_offer_sets(requests, offers, maxima, BREADTH)


def test_bench_matching_ablation(benchmark):
    result = benchmark.pedantic(
        matching_ablation.run,
        kwargs={"n_requests": 60, "seeds": range(3)},
        rounds=1,
        iterations=1,
    )
    rows = result.rows
    ec2 = [r for r in rows if r["regime"] == "ec2-correlated"]
    hetero = [r for r in rows if r["regime"] == "heterogeneous"]
    # Correlated supply: the heuristics coincide.
    assert np.mean([r["disagreement_rate"] for r in ec2]) < 0.05
    # Heterogeneous supply: they measurably diverge.
    assert np.mean([r["disagreement_rate"] for r in hetero]) > 0.02


def test_bench_matching_reference(benchmark):
    requests, offers = _speedup_market()
    maxima = block_maxima(requests, offers)
    best = benchmark.pedantic(
        _scalar_front_half,
        args=(requests, offers, maxima),
        rounds=1,
        iterations=1,
    )
    assert len(best) == len(requests)


def test_bench_matching_vectorized(benchmark):
    requests, offers = _speedup_market()
    maxima = block_maxima(requests, offers)
    best = benchmark.pedantic(
        _vectorized_front_half,
        args=(requests, offers, maxima),
        rounds=3,
        iterations=1,
    )
    assert len(best) == len(requests)


def test_vectorized_speedup_and_equivalence():
    """The tentpole claim: >= 5x at n=800, bit-identical best sets."""
    requests, offers = _speedup_market()
    maxima = block_maxima(requests, offers)

    start = time.perf_counter()
    scalar = _scalar_front_half(requests, offers, maxima)
    scalar_seconds = time.perf_counter() - start

    # Warm a throwaway call so one-time NumPy setup is not billed to the
    # timed run, mirroring how the online simulator reuses the kernel.
    _vectorized_front_half(requests[:4], offers[:4], maxima)
    start = time.perf_counter()
    vectorized = _vectorized_front_half(requests, offers, maxima)
    vectorized_seconds = time.perf_counter() - start

    assert scalar == vectorized, (
        "engines disagree on best-offer sets; speedup is meaningless"
    )
    speedup = scalar_seconds / max(vectorized_seconds, 1e-9)
    print(
        f"\nmatching front half at n={SPEEDUP_N}: "
        f"reference {scalar_seconds:.3f}s, vectorized "
        f"{vectorized_seconds:.3f}s, speedup {speedup:.1f}x"
    )
    if SPEEDUP_N >= 800:
        assert speedup >= SPEEDUP_FLOOR, (
            f"vectorized kernel is only {speedup:.1f}x faster at "
            f"n={SPEEDUP_N}; the tentpole requires >= {SPEEDUP_FLOOR}x"
        )
    else:
        # Reduced sizes (CI smoke) still require a real win.
        assert speedup > 1.0
