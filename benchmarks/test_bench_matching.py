"""Matching-heuristic ablation bench (gravity vs dot product)."""

from __future__ import annotations

import numpy as np

from repro.experiments import matching_ablation


def test_bench_matching_ablation(benchmark):
    result = benchmark.pedantic(
        matching_ablation.run,
        kwargs={"n_requests": 60, "seeds": range(3)},
        rounds=1,
        iterations=1,
    )
    rows = result.rows
    ec2 = [r for r in rows if r["regime"] == "ec2-correlated"]
    hetero = [r for r in rows if r["regime"] == "heterogeneous"]
    # Correlated supply: the heuristics coincide.
    assert np.mean([r["disagreement_rate"] for r in ec2]) < 0.05
    # Heterogeneous supply: they measurably diverge.
    assert np.mean([r["disagreement_rate"] for r in hetero]) > 0.02
