"""Loss-decomposition bench: the DSIC cost splits across stages."""

from __future__ import annotations

from repro.experiments import loss_decomposition


def test_bench_loss_decomposition(benchmark):
    result = benchmark.pedantic(
        loss_decomposition.run,
        kwargs={"n_requests": 80, "seeds": range(3)},
        rounds=1,
        iterations=1,
    )
    shares = [row["share_of_benchmark"] for row in result.rows]
    # Stage welfare is monotonically non-increasing as switches stack
    # (tiny tolerance: greedy variants can flip marginal trades).
    for earlier, later in zip(shares, shares[1:]):
        assert later <= earlier + 0.05
    # The full mechanism keeps the majority of benchmark welfare.
    assert shares[-1] > 0.5
    assert result.rows[0]["stage"].startswith("benchmark")
