"""Paired end-to-end engine benches: reference vs vectorized clearing.

Unlike the kernel benches in ``test_bench_matching.py``, these time the
*whole* pipeline — matching, clustering, normalization, mini-auction
assembly, trade reduction, pricing — on identical markets, once per
engine, and assert the differential contract on the produced outcomes.
The comparison in the benchmark report is the headline number in
docs/PERFORMANCE.md.

The speedup test additionally runs the vectorized engine under a
:class:`~repro.common.timing.PhaseTimer` and asserts the back-half
claim of the vectorization work: normalization + clearing no longer
dominate the round (the residual match phase does).  Set
``DECLOUD_PHASE_REPORT`` to a path to dump the per-phase timing JSON
(CI uploads it as a workflow artifact).

``DECLOUD_SPEEDUP_N`` shrinks the speedup market for constrained CI
runners; the end-to-end floor is only enforced at the full n=800 size.
"""

from __future__ import annotations

import os
import time

from repro.common.timing import PhaseTimer
from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.workloads.generators import generate_market

from tests.differential.conftest import canonical_outcome

N_REQUESTS = 200
SPEEDUP_N = int(os.environ.get("DECLOUD_SPEEDUP_N", "800"))
#: End-to-end round speedup floor at n=800.  Measured ~30x (reference
#: ~1.2s vs vectorized ~0.037s); the previous vectorized engine cleared
#: the same market in ~0.056s, so the floor encodes both the headline
#: ratio and the >= 1.5x additional round speedup over that baseline.
SPEEDUP_FLOOR = 22.0
_OUTCOMES = {}


def _run_engine(engine: str):
    requests, offers = generate_market(N_REQUESTS, seed=0)
    outcome = DecloudAuction(AuctionConfig(engine=engine)).run(
        requests, offers, evidence=b"engine-bench"
    )
    _OUTCOMES[engine] = canonical_outcome(outcome)
    return outcome


def test_bench_engine_reference(benchmark):
    outcome = benchmark.pedantic(
        _run_engine, args=("reference",), rounds=1, iterations=1
    )
    assert outcome.matches


def test_bench_engine_vectorized(benchmark):
    outcome = benchmark.pedantic(
        _run_engine, args=("vectorized",), rounds=1, iterations=1
    )
    assert outcome.matches


def test_engines_agree_on_bench_market():
    for engine in ("reference", "vectorized"):
        if engine not in _OUTCOMES:
            _run_engine(engine)
    assert _OUTCOMES["vectorized"] == _OUTCOMES["reference"]


def _best_round_seconds(engine: str, requests, offers, rounds: int) -> float:
    """Best-of-``rounds`` fresh-instance clearing time for one engine."""
    DecloudAuction(AuctionConfig(engine=engine)).run(
        requests, offers, evidence=b"engine-warm"
    )
    best = float("inf")
    for _ in range(rounds):
        auction = DecloudAuction(AuctionConfig(engine=engine))
        start = time.perf_counter()
        auction.run(requests, offers, evidence=b"engine-bench")
        best = min(best, time.perf_counter() - start)
    return best


def test_end_to_end_speedup_and_phase_profile():
    """The back-half claim: >= 22x end-to-end at n=800, and the phase
    timer shows normalization + clearing are no longer the bottleneck."""
    requests, offers = generate_market(SPEEDUP_N, seed=0)

    reference_seconds = _best_round_seconds(
        "reference", requests, offers, rounds=2
    )
    vectorized_seconds = _best_round_seconds(
        "vectorized", requests, offers, rounds=5
    )
    speedup = reference_seconds / max(vectorized_seconds, 1e-9)

    timer = PhaseTimer()
    for _ in range(3):
        outcome = DecloudAuction(AuctionConfig(engine="vectorized")).run(
            requests, offers, evidence=b"engine-bench", timer=timer
        )
    assert outcome.matches

    print(
        f"\nend-to-end round at n={SPEEDUP_N}: "
        f"reference {reference_seconds:.3f}s, vectorized "
        f"{vectorized_seconds:.3f}s, speedup {speedup:.1f}x"
    )
    print(timer.report(f"vectorized phases at n={SPEEDUP_N}"))

    report_path = os.environ.get("DECLOUD_PHASE_REPORT")
    if report_path:
        with open(report_path, "w") as handle:
            handle.write(timer.to_json(f"vectorized-n{SPEEDUP_N}"))

    if SPEEDUP_N >= 800:
        assert speedup >= SPEEDUP_FLOOR, (
            f"vectorized engine is only {speedup:.1f}x faster end-to-end "
            f"at n={SPEEDUP_N}; the back-half work requires "
            f">= {SPEEDUP_FLOOR}x"
        )
        # Match cost grows quadratically with market size while the back
        # half is near-linear, so the "no longer dominant" claim is only
        # meaningful (and only asserted) at the full benchmark size.
        phases = timer.to_dict()
        back_half = sum(
            phases[name]["seconds"]
            for name in ("normalize", "clear")
            if name in phases
        )
        assert back_half < 0.5 * timer.total_seconds, (
            "normalization + clearing still dominate the vectorized "
            f"round: {back_half:.4f}s of {timer.total_seconds:.4f}s"
        )
    else:
        # Reduced sizes (CI smoke) still require a real win.
        assert speedup > 1.0
