"""Paired end-to-end engine benches: reference vs vectorized clearing.

Unlike the kernel benches in ``test_bench_matching.py``, these time the
*whole* pipeline — matching, clustering, trade reduction, mini-auctions,
clearing — on identical markets, once per engine, and assert the
differential contract on the produced outcomes.  The comparison in the
benchmark report is the headline number in docs/PERFORMANCE.md.
"""

from __future__ import annotations

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig
from repro.workloads.generators import generate_market

from tests.differential.conftest import canonical_outcome

N_REQUESTS = 200
_OUTCOMES = {}


def _run_engine(engine: str):
    requests, offers = generate_market(N_REQUESTS, seed=0)
    outcome = DecloudAuction(AuctionConfig(engine=engine)).run(
        requests, offers, evidence=b"engine-bench"
    )
    _OUTCOMES[engine] = canonical_outcome(outcome)
    return outcome


def test_bench_engine_reference(benchmark):
    outcome = benchmark.pedantic(
        _run_engine, args=("reference",), rounds=1, iterations=1
    )
    assert outcome.matches


def test_bench_engine_vectorized(benchmark):
    outcome = benchmark.pedantic(
        _run_engine, args=("vectorized",), rounds=1, iterations=1
    )
    assert outcome.matches


def test_engines_agree_on_bench_market():
    for engine in ("reference", "vectorized"):
        if engine not in _OUTCOMES:
            _run_engine(engine)
    assert _OUTCOMES["vectorized"] == _OUTCOMES["reference"]
