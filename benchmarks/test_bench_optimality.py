"""Optimality-gap bench: both mechanisms against the MILP optimum."""

from __future__ import annotations

from repro.experiments import optimality_gap


def test_bench_optimality_gap(benchmark):
    result = benchmark.pedantic(
        optimality_gap.run,
        kwargs={
            "sizes": (40, 80),
            "breadths": (8, 32),
            "seeds": range(2),
            "time_limit": 10.0,
        },
        rounds=1,
        iterations=1,
    )
    for row in result.rows:
        # The optimum is an upper bound on both heuristics.
        assert row["greedy_share"] <= 1.0 + 1e-6
        assert row["decloud_share"] <= 1.0 + 1e-6
        # DeCloud stays close to its greedy sibling (the DSIC cost is a
        # small fraction of the clustering cost).
        assert row["decloud_share"] >= row["greedy_share"] - 0.15

    # Wider breadth closes the gap to optimal at every size.
    by_size: dict = {}
    for row in result.rows:
        by_size.setdefault(row["n_requests"], {})[row["breadth"]] = row[
            "greedy_share"
        ]
    for shares in by_size.values():
        assert shares[32] >= shares[8] - 0.05
