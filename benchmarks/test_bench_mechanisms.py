"""Micro-bench: classic McAfee and SBBA substrates."""

from __future__ import annotations

from repro.experiments import mechanism_micro


def test_bench_mechanisms(benchmark):
    result = benchmark.pedantic(
        mechanism_micro.run,
        kwargs={"market_sizes": (4, 16, 64), "seeds": range(10)},
        rounds=1,
        iterations=1,
    )

    sbba = [row for row in result.rows if row["mechanism"] == "sbba"]
    mcafee = [row for row in result.rows if row["mechanism"] == "mcafee"]
    # Strong budget balance: SBBA never leaves surplus with the auctioneer.
    assert all(abs(r["mean_budget_surplus"]) < 1e-9 for r in sbba)
    # McAfee's surplus is non-negative (weak budget balance).
    assert all(r["mean_budget_surplus"] >= -1e-9 for r in mcafee)
    # Both converge toward efficiency as markets grow.
    for rows in (sbba, mcafee):
        ordered = sorted(rows, key=lambda r: r["n_per_side"])
        assert ordered[-1]["mean_welfare_ratio"] >= ordered[0]["mean_welfare_ratio"]
