"""Fig. 5f bench: welfare, flexible vs inflexible matching."""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5f
from benchmarks.conftest import BENCH_SEEDS, BENCH_SIMILARITIES


def test_bench_fig5f(benchmark, similarity_points):
    result = benchmark.pedantic(
        fig5f.run,
        kwargs={
            "similarities": BENCH_SIMILARITIES,
            "seeds": BENCH_SEEDS,
            "points": similarity_points,
        },
        rounds=1,
        iterations=1,
    )

    welfare = np.array(result.column("welfare"))
    flex = np.array(result.column("flexibility"))
    strict_mean = welfare[flex == 1.0].mean()
    flexible_mean = welfare[flex == 0.8].mean()
    # Paper: flexibility has a positive effect on welfare.
    assert flexible_mean > strict_mean
