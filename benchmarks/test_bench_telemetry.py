"""Telemetry-plane overhead benches: worker capture must stay cheap.

PR 10 routes every pooled task through :class:`~repro.obs.telemetry`
capture when the parent bundle opts in (``telemetry=True``): each shard
clears under its own worker-local bundle, freezes a
:class:`~repro.obs.telemetry.TelemetryPayload`, and the parent merges it
deterministically.  That is extra pickling and registry traffic on the
hot sharded path, so it gets the same paired gate the monitor suite got:

* ``test_bench_telemetry_off`` — the gated bench: a sharded clear with a
  live bundle but telemetry *not* opted in (the pre-PR-10 enabled path).
* ``test_bench_telemetry_on`` — the same clear shipping worker payloads
  (informative: what the telemetry plane costs when on).
* ``test_telemetry_overhead_within_bound`` — interleaved best-of paired
  runs; the on/off ratio must stay within ``DECLOUD_TELEMETRY_CEILING``
  (default 1.10, the <=10% requirement from the issue).

Size reducible via ``DECLOUD_TELEMETRY_N`` for the CI smoke job.
"""

from __future__ import annotations

import os
import time

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig, ShardPlan
from repro.obs import Observability
from repro.workloads.generators import generate_zone_market

TELEMETRY_N = int(os.environ.get("DECLOUD_TELEMETRY_N", "400"))
#: Allowed telemetry-on overhead ratio over the telemetry-off clear.
TELEMETRY_CEILING = float(os.environ.get("DECLOUD_TELEMETRY_CEILING", "1.10"))
EVIDENCE = b"telemetry-bench"


def _market():
    requests, offers, _ = generate_zone_market(
        TELEMETRY_N, n_zones=4, seed=0, kind="network", locality="strong",
        cross_zone_fraction=0.25,
    )
    return requests, offers


def _run_sharded(requests, offers, telemetry: bool):
    config = AuctionConfig(
        engine="vectorized", sharding=ShardPlan(kind="network")
    )
    obs = Observability("bench-telemetry", telemetry=telemetry)
    return DecloudAuction(config).run(
        requests, offers, evidence=EVIDENCE, obs=obs
    )


def test_bench_telemetry_off(benchmark):
    requests, offers = _market()
    outcome = benchmark.pedantic(
        _run_sharded, args=(requests, offers, False), rounds=3, iterations=1
    )
    assert outcome.matches


def test_bench_telemetry_on(benchmark):
    requests, offers = _market()
    outcome = benchmark.pedantic(
        _run_sharded, args=(requests, offers, True), rounds=3, iterations=1
    )
    assert outcome.matches


def test_telemetry_overhead_within_bound():
    """Paired interleaved best-of: telemetry on vs off, same sharded clear.

    The capture path adds a worker-local bundle per shard, a frozen
    payload (sorted tuples of every series), and a parent-side merge —
    all O(series + matches) per shard, tiny next to clearing.  The
    paired ratio pins that at <= TELEMETRY_CEILING.
    """
    requests, offers = _market()
    # warm both paths before timing
    _run_sharded(requests, offers, False)
    _run_sharded(requests, offers, True)

    best_off = float("inf")
    best_on = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        _run_sharded(requests, offers, False)
        best_off = min(best_off, time.perf_counter() - start)

        start = time.perf_counter()
        _run_sharded(requests, offers, True)
        best_on = min(best_on, time.perf_counter() - start)

    ratio = best_on / max(best_off, 1e-9)
    print(
        f"\ntelemetry overhead at n={TELEMETRY_N}: off {best_off:.4f}s, "
        f"on {best_on:.4f}s, ratio {ratio:.3f} (ceiling {TELEMETRY_CEILING})"
    )
    assert ratio <= TELEMETRY_CEILING, (
        f"worker telemetry capture costs {ratio:.3f}x a telemetry-off "
        f"sharded clear at n={TELEMETRY_N}; the plane must stay within "
        f"{TELEMETRY_CEILING}x"
    )
