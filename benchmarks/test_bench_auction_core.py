"""Throughput benchmarks for the auction core itself.

Unlike the figure benches (one-shot harness wrappers), these measure the
hot path — clearing a block — with real pytest-benchmark statistics.
"""

from __future__ import annotations

import pytest

from repro.core.auction import DecloudAuction
from repro.experiments.sweeps import eval_config
from repro.workloads.generators import MarketScenario


@pytest.mark.parametrize("n_requests", [50, 200])
def test_bench_clear_block(benchmark, n_requests):
    scenario = MarketScenario(n_requests=n_requests, seed=7)
    requests, offers = scenario.generate()
    auction = DecloudAuction(eval_config())

    outcome = benchmark(auction.run, requests, offers, b"bench-evidence")
    assert outcome.num_trades > 0
    # Strong budget balance on every cleared block.
    assert abs(
        outcome.total_payments - sum(outcome.revenues().values())
    ) < 1e-9
