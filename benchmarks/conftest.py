"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one paper figure on a reduced sweep (so the
suite completes in minutes) and asserts the figure's qualitative shape —
the reproduction contract is the *shape*, not the authors' absolute
numbers (their substrate was a testbed; ours is a simulator).

The sweep sizes honour environment overrides so CI can run a reduced
smoke pass (see ``.github/workflows/ci.yml``) without a parallel config:

    DECLOUD_BENCH_SIZES="25 50"   # sweep sizes (space/comma separated)
    DECLOUD_BENCH_SEEDS=2         # number of seeds per point
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.sweeps import run_similarity_sweep, run_size_sweep


def _env_sizes(name: str, default: tuple) -> tuple:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    return tuple(int(token) for token in raw.replace(",", " ").split())


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    return int(raw) if raw else default


BENCH_SIZES = _env_sizes("DECLOUD_BENCH_SIZES", (25, 50, 100, 200))
BENCH_SEEDS = range(_env_int("DECLOUD_BENCH_SEEDS", 3))
BENCH_SIMILARITIES = (0.1, 0.5, 0.9)


@pytest.fixture(scope="session")
def size_points():
    """The Fig. 5a/5b/5c sweep, computed once per session."""
    return run_size_sweep(sizes=BENCH_SIZES, seeds=BENCH_SEEDS)


@pytest.fixture(scope="session")
def similarity_points():
    """The Fig. 5d/5f sweep (strict vs 80% flexible)."""
    return run_similarity_sweep(
        similarities=BENCH_SIMILARITIES, seeds=BENCH_SEEDS
    )
