"""Sustained-traffic throughput: pipelined runtime vs lockstep rounds.

Two kinds of measurement:

* **Virtual-clock throughput** (``test_pipelining_throughput_floor``,
  a plain test): rounds/sec on the deterministic scheduler's clock,
  pipelined vs the same reactor with pipelining off (which reproduces
  the lockstep schedule).  This is the committed regression gate for
  the structural win — overlapping round *N*+1's continuous arrivals
  with round *N*'s mine/verify/commit must buy at least 1.5x.
* **Wall-clock cost** (the ``benchmark`` tests): what a sustained run
  costs to *simulate* on each engine, gated by ``thresholds.json`` in
  the CI smoke job like every other bench.

Pipelining is pure schedule: both reactor runs and the lockstep engine
must commit bit-identical blocks, asserted here on every run.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.sustained import SustainedSpec, run_sustained

#: arrival cadence tuned so one round's arrival span roughly matches
#: the mine+verify+commit span — the regime pipelining exists for
BENCH_SPEC = SustainedSpec(
    num_clients=6,
    num_providers=3,
    num_miners=3,
    rounds=int(os.environ.get("DECLOUD_RUNTIME_ROUNDS", "").strip() or 8),
    seed=11,
    difficulty_bits=4,
    mean_interarrival=0.18,
)

#: committed floor for the pipelined vs lockstep-schedule speedup
THROUGHPUT_FLOOR = 1.5


def test_pipelining_throughput_floor():
    pipelined = run_sustained(BENCH_SPEC, pipeline=True)
    lockstepped = run_sustained(BENCH_SPEC, pipeline=False)
    assert pipelined.rounds_committed == BENCH_SPEC.rounds
    assert lockstepped.rounds_committed == BENCH_SPEC.rounds
    assert pipelined.overlap_rounds == BENCH_SPEC.rounds - 1
    assert lockstepped.overlap_rounds == 0
    # schedule-only optimization: identical chains either way
    assert pipelined.block_hashes == lockstepped.block_hashes
    speedup = (
        pipelined.rounds_per_virtual_second
        / lockstepped.rounds_per_virtual_second
    )
    print(
        f"\nsustained throughput: pipelined "
        f"{pipelined.rounds_per_virtual_second:.3f} rounds/vs, lockstep "
        f"{lockstepped.rounds_per_virtual_second:.3f} rounds/vs "
        f"({speedup:.2f}x)"
    )
    assert speedup >= THROUGHPUT_FLOOR


def test_bench_runtime_pipelined(benchmark):
    result = benchmark.pedantic(
        run_sustained,
        args=(BENCH_SPEC,),
        kwargs={"pipeline": True},
        rounds=1,
        iterations=1,
    )
    assert result.rounds_committed == BENCH_SPEC.rounds
    assert result.errors == []
    assert result.overlap_rounds == BENCH_SPEC.rounds - 1


def test_bench_runtime_lockstep_engine(benchmark):
    result = benchmark.pedantic(
        run_sustained,
        args=(BENCH_SPEC,),
        kwargs={"engine": "lockstep"},
        rounds=1,
        iterations=1,
    )
    assert result.rounds_committed == BENCH_SPEC.rounds
    assert result.errors == []
    # same committed welfare as the reactor drives out of the same spec
    reactor = run_sustained(BENCH_SPEC, pipeline=True)
    assert result.welfare == pytest.approx(reactor.welfare, abs=1e-9)
    assert result.block_hashes == reactor.block_hashes
