"""Ledger-layer benchmarks: PoW solving and a full protocol round.

``test_bench_pow_naive_rebuild`` times the pre-optimization mining loop
(re-concatenating ``payload + nonce.to_bytes(8, "big")`` every attempt)
against the same puzzle, so the benchmark report shows what the hoisted
payload buffer in :func:`repro.ledger.pow.solve` buys; the speedup test
pins that win and asserts both loops find the identical nonce.
"""

from __future__ import annotations

import hashlib
import time

from repro.common.timewindow import TimeWindow
from repro.ledger import pow as pow_mod
from repro.market.bids import Offer, Request
from repro.protocol.exposure import Participant, build_miner_network

POW_PAYLOAD = b"decloud-block-payload"
POW_BITS = 12


def _naive_solve(payload: bytes, difficulty_bits: int) -> int:
    """The pre-optimization hot loop: rebuild the hashed message and
    re-count leading zero bits on every nonce attempt."""
    nonce = 0
    while nonce < pow_mod.MAX_NONCE:
        digest = hashlib.sha256(
            payload + nonce.to_bytes(8, "big")
        ).digest()
        if pow_mod.leading_zero_bits(digest) >= difficulty_bits:
            return nonce
        nonce += 1
    raise AssertionError("unreachable at bench difficulty")


def test_bench_pow_solve(benchmark):
    nonce = benchmark(pow_mod.solve, POW_PAYLOAD, POW_BITS)
    assert pow_mod.check(POW_PAYLOAD, nonce, POW_BITS)


def test_bench_pow_naive_rebuild(benchmark):
    nonce = benchmark(_naive_solve, POW_PAYLOAD, POW_BITS)
    assert pow_mod.check(POW_PAYLOAD, nonce, POW_BITS)


def test_pow_hoisted_payload_speedup():
    """Same nonce as the naive scan, found measurably faster."""
    start = time.perf_counter()
    naive_nonce = _naive_solve(POW_PAYLOAD, POW_BITS)
    naive_seconds = time.perf_counter() - start

    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fast_nonce = pow_mod.solve(POW_PAYLOAD, POW_BITS)
        best = min(best, time.perf_counter() - start)

    assert fast_nonce == naive_nonce
    speedup = naive_seconds / max(best, 1e-9)
    print(
        f"\npow solve at {POW_BITS} bits: naive {naive_seconds:.4f}s, "
        f"hoisted {best:.4f}s, speedup {speedup:.1f}x"
    )
    assert speedup > 1.0, (
        f"hoisted PoW loop is not faster than the naive rebuild "
        f"({speedup:.2f}x)"
    )


def test_bench_protocol_round(benchmark):
    def full_round():
        protocol = build_miner_network(num_miners=3, difficulty_bits=8)
        clients = [Participant(participant_id=f"cli-{i}") for i in range(8)]
        providers = [Participant(participant_id=f"prov-{i}") for i in range(4)]
        for i, client in enumerate(clients):
            protocol.submit(
                client,
                Request(
                    request_id=f"req-{i}",
                    client_id=client.participant_id,
                    submit_time=0.1 * i,
                    resources={"cpu": 2, "ram": 8, "disk": 50},
                    window=TimeWindow(0, 10),
                    duration=4,
                    bid=1.0 + 0.2 * i,
                ),
            )
        for i, provider in enumerate(providers):
            protocol.submit(
                provider,
                Offer(
                    offer_id=f"off-{i}",
                    provider_id=provider.participant_id,
                    submit_time=0.05 * i,
                    resources={"cpu": 8, "ram": 32, "disk": 500},
                    window=TimeWindow(0, 24),
                    bid=0.3 + 0.1 * i,
                ),
            )
        return protocol.run_round(clients + providers)

    result = benchmark.pedantic(full_round, rounds=3, iterations=1)
    assert len(result.accepted_by) == 3
    assert result.outcome.num_trades > 0
