"""Ledger-layer benchmarks: PoW solving and a full protocol round."""

from __future__ import annotations

from repro.common.timewindow import TimeWindow
from repro.ledger import pow as pow_mod
from repro.market.bids import Offer, Request
from repro.protocol.exposure import Participant, build_miner_network


def test_bench_pow_solve(benchmark):
    nonce = benchmark(pow_mod.solve, b"decloud-block-payload", 12)
    assert pow_mod.check(b"decloud-block-payload", nonce, 12)


def test_bench_protocol_round(benchmark):
    def full_round():
        protocol = build_miner_network(num_miners=3, difficulty_bits=8)
        clients = [Participant(participant_id=f"cli-{i}") for i in range(8)]
        providers = [Participant(participant_id=f"prov-{i}") for i in range(4)]
        for i, client in enumerate(clients):
            protocol.submit(
                client,
                Request(
                    request_id=f"req-{i}",
                    client_id=client.participant_id,
                    submit_time=0.1 * i,
                    resources={"cpu": 2, "ram": 8, "disk": 50},
                    window=TimeWindow(0, 10),
                    duration=4,
                    bid=1.0 + 0.2 * i,
                ),
            )
        for i, provider in enumerate(providers):
            protocol.submit(
                provider,
                Offer(
                    offer_id=f"off-{i}",
                    provider_id=provider.participant_id,
                    submit_time=0.05 * i,
                    resources={"cpu": 8, "ram": 32, "disk": 500},
                    window=TimeWindow(0, 24),
                    bid=0.3 + 0.1 * i,
                ),
            )
        return protocol.run_round(clients + providers)

    result = benchmark.pedantic(full_round, rounds=3, iterations=1)
    assert len(result.accepted_by) == 3
    assert result.outcome.num_trades > 0
