"""Price-dynamics bench: clearing prices respond to a demand surge."""

from __future__ import annotations

from repro.experiments import price_dynamics


def test_bench_price_dynamics(benchmark):
    result = benchmark.pedantic(
        price_dynamics.run,
        kwargs={"horizon": 18.0, "block_interval": 2.0},
        rounds=1,
        iterations=1,
    )
    rows = result.rows
    assert rows, "no rounds simulated"
    third = 18.0 / 3
    before = [
        r["mean_price"] for r in rows if r["time"] <= third and r["mean_price"] > 0
    ]
    during_after = [
        r["mean_price"] for r in rows if r["time"] > third and r["mean_price"] > 0
    ]
    if before and during_after:
        mean_before = sum(before) / len(before)
        mean_later = sum(during_after) / len(during_after)
        # The surge raises prices relative to the calm opening.
        assert mean_later >= mean_before * 0.9
    # Demand/supply ratio peaks after the surge begins.
    peak_time = max(rows, key=lambda r: r["demand_supply_ratio"])["time"]
    assert peak_time > third
