#!/usr/bin/env python
"""Observability demo: trace and meter one full DeCloud round.

Attaches a live :class:`repro.obs.Observability` to the two-phase
exposure protocol and to the paired DeCloud/benchmark market simulator,
then renders everything the instruments captured:

* the span tree of the protocol round
  (``seal -> round(mine, reveal, propose, verify, commit)``);
* the metrics registry (auction, protocol, ledger series) in the
  Prometheus text format;
* the per-phase wall-time split.

Run:  python examples/observability_demo.py
      python examples/observability_demo.py --trace round.jsonl \\
          --metrics round.prom        # write artifacts (CI uploads these)

Inspect an exported trace later with::

    python -m repro.obs.report round.jsonl --tree
"""

from __future__ import annotations

import argparse

from repro.market import Offer, Request
from repro.common import TimeWindow
from repro.obs import Observability
from repro.obs.export import write_prometheus
from repro.obs.report import render_tree, summarize
from repro.obs.trace import load_jsonl
from repro.protocol import Participant, build_miner_network
from repro.sim.engine import MarketSimulator
from repro.workloads.generators import MarketScenario


def _bid_window() -> TimeWindow:
    return TimeWindow(0, 24)


def run_protocol_round(obs: Observability) -> None:
    """Mine one sealed-bid block with full instrumentation attached."""
    protocol = build_miner_network(num_miners=3, difficulty_bits=6, obs=obs)
    # seal_seed makes the sealed ciphertexts (and therefore the mined
    # preamble and its PoW scan) bit-reproducible across runs, so the
    # exported trace/metrics artifacts are stable for a given commit.
    clients = [
        Participant(
            participant_id=f"cli-{i}",
            deterministic=True,
            seal_seed=b"obs-demo",
        )
        for i in range(3)
    ]
    provider = Participant(
        participant_id="prov-0", deterministic=True, seal_seed=b"obs-demo"
    )
    for i, client in enumerate(clients):
        protocol.submit(
            client,
            Request(
                request_id=f"req-{i}",
                client_id=client.participant_id,
                submit_time=0.0,
                resources={"cpu": 2, "ram": 4},
                window=_bid_window(),
                duration=4.0,
                bid=2.0 - 0.25 * i,
            ),
        )
    protocol.submit(
        provider,
        Offer(
            offer_id="off-0",
            provider_id=provider.participant_id,
            submit_time=0.0,
            resources={"cpu": 8, "ram": 32},
            window=_bid_window(),
            bid=0.5,
        ),
    )
    result = protocol.run_round(clients + [provider])
    print(
        f"protocol round committed: height={result.block.height} "
        f"trades={result.outcome.num_trades} "
        f"approvals={len(result.accepted_by)}"
    )


def run_market_block(obs: Observability) -> None:
    """Clear one paired DeCloud/benchmark block under the same registry."""
    scenario = MarketScenario(n_requests=40, offers_per_request=0.5, seed=7)
    requests, offers = scenario.generate()
    simulator = MarketSimulator(seed=7, obs=obs)
    metrics, _, _ = simulator.run_block(requests, offers)
    print(
        f"market block: {metrics.decloud_trades} trades "
        f"(benchmark {metrics.benchmark_trades}), "
        f"welfare ratio {metrics.welfare_ratio:.3f}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="write the round trace (JSONL) here")
    parser.add_argument(
        "--metrics", help="write the registry (Prometheus text) here"
    )
    args = parser.parse_args()

    obs = Observability("observability-demo")
    run_protocol_round(obs)
    run_market_block(obs)

    records = load_jsonl(obs.trace_jsonl())
    print()
    print(summarize(records))
    print()
    print("span tree:")
    print(render_tree(records))
    print()
    print(obs.timer.report("phase split"))

    if args.trace:
        obs.tracer.write_jsonl(args.trace)
        print(f"\nwrote trace to {args.trace}")
    if args.metrics:
        write_prometheus(obs.registry, args.metrics)
        print(f"wrote metrics to {args.metrics}")
    print("\nOK")


if __name__ == "__main__":
    main()
