#!/usr/bin/env python
"""Economic security end to end: escrow settlement + the challenge game.

The full money pipeline of a DeCloud deployment:

1. a block is mined through the two-phase protocol;
2. instead of every miner re-executing, the leader posts a **deposit**
   and the block enters a challenge window (TrueBit-style, §VI);
3. an honest challenger audits the allocation with
   :func:`repro.core.audit.audit_outcome` and challenges only when it
   finds violations — frivolous challenges cost the challenger its stake;
4. accepted matches settle through **escrow**: the client's payment is
   locked at `accept`, released to the provider on completion, refunded
   on default.

Run:  python examples/challenge_and_settlement.py
"""

from __future__ import annotations

import dataclasses

from repro.common import TimeWindow
from repro.core import audit_outcome
from repro.ledger import Block, ChallengeGame
from repro.market import Offer, Request
from repro.protocol import (
    DecloudAllocator,
    Participant,
    SettlementProcessor,
    TokenLedger,
    build_miner_network,
)


def main() -> None:
    # --- mine a block through the protocol -----------------------------
    protocol = build_miner_network(num_miners=2, difficulty_bits=6)
    clients = [
        Participant(participant_id=f"cli-{i}", fresh_key=True) for i in range(4)
    ]
    provider = Participant(participant_id="prov-0", fresh_key=True)
    requests = []
    for i, client in enumerate(clients):
        request = Request(
            request_id=f"req-{i}",
            client_id=client.participant_id,
            submit_time=0.1 * i,
            resources={"cpu": 2, "ram": 4, "disk": 20},
            window=TimeWindow(0, 12),
            duration=4.0,
            bid=1.0 + 0.3 * i,
        )
        requests.append(request)
        protocol.submit(client, request)
    offer = Offer(
        offer_id="off-0",
        provider_id="prov-0",
        submit_time=0.0,
        resources={"cpu": 16, "ram": 64, "disk": 500},
        window=TimeWindow(0, 24),
        bid=2.0,
    )
    protocol.submit(provider, offer)
    result = protocol.run_round(clients + [provider])
    outcome = result.outcome
    print(f"block mined: {outcome.num_trades} trades, "
          f"welfare {outcome.welfare:.3f}")

    # --- independent audit (what a challenger runs) --------------------
    report = audit_outcome(requests, [offer], outcome)
    print(f"honest allocation audit -> {report}")

    # --- challenge game -------------------------------------------------
    tokens = TokenLedger()
    tokens.mint("leader", 50.0)
    tokens.mint("watchdog", 50.0)
    game = ChallengeGame(ledger=tokens, deposit=10.0)

    block_hash = game.propose("leader", result.block)
    print(f"\nleader deposited 10.0 (balance {tokens.balance('leader'):.1f})")
    # The watchdog audits; the block is honest, so it declines to
    # challenge and the proposal finalizes.
    if report.ok:
        game.finalize_unchallenged(block_hash)
        print("watchdog found nothing; block finalized, deposit returned")
    print(f"leader balance after finalize: {tokens.balance('leader'):.1f}")

    # Now a cheating leader: doctor the body and watch the slash.
    body = result.block.require_complete()
    doctored = dataclasses.replace(
        body, allocation={**body.allocation, "matches": []}
    ).signed_by(protocol.miners[0].keypair, result.block.preamble.hash())
    cheat_block = Block(preamble=result.block.preamble, body=doctored)
    cheat_hash = game.propose("leader", cheat_block)
    game.raise_challenge("watchdog", cheat_hash)
    referee = protocol.miners[1]
    # The referee needs a fresh chain view at the disputed height; use a
    # new miner with identical allocation code.
    from repro.ledger import Miner

    fresh_referee = Miner(
        miner_id="referee", allocate=DecloudAllocator(), difficulty_bits=6
    )
    won = game.adjudicate(cheat_hash, fresh_referee)
    print(
        f"\ncheating leader challenged -> challenge "
        f"{'succeeded' if won else 'failed'}; "
        f"leader {tokens.balance('leader'):.1f}, "
        f"watchdog {tokens.balance('watchdog'):.1f}"
    )

    # --- settlement ------------------------------------------------------
    print("\n=== settlement for the honest block ===")
    processor = SettlementProcessor(ledger=tokens)
    escrow_ids = processor.settle_block(outcome.matches, auto_fund=True)
    for i, (request_id, escrow_id) in enumerate(escrow_ids.items()):
        if i == 0:
            processor.default(escrow_id)  # provider failed this one
            print(f"  {request_id}: provider defaulted -> client refunded")
        else:
            processor.complete(escrow_id)
            print(f"  {request_id}: completed -> provider paid")
    print(f"provider balance: {tokens.balance('prov-0'):.4f}")
    expected = sum(
        m.payment for i, m in enumerate(outcome.matches) if i != 0
    )
    assert abs(tokens.balance("prov-0") - expected) < 1e-9
    print("settlement conserves every token  OK")


if __name__ == "__main__":
    main()
