#!/usr/bin/env python
"""Sharding sweep: what the zone-sharded fabric buys and what it costs.

Clears the same zone markets three ways — the global vectorized auction,
the sharded fabric on one core (``shard_workers=0``), and the sharded
fabric across a process pool — over a grid of block sizes and locality
regimes, and reports for every point:

* end-to-end clear time and throughput (bids/second),
* welfare ratio sharded/global (the fabric's trade-off: cross-zone
  pairs only meet in the spillover round, against leftovers instead of
  the full book — under strong locality the fabric usually *gains*
  welfare instead, because the global clear pools everything into one
  giant mini-auction whose trade reduction sacrifices far more trades),
* shard count, spillover volume, and spillover trades.

The sweep is deterministic; the sharded rows are bit-identical across
worker counts by the fabric's evidence-derived-stream construction (the
differential suite asserts this; here it shows up as equal welfare).

Run:  python examples/sharding_sweep.py

Env knobs (CI smoke shrinks the grid):

- ``DECLOUD_SWEEP_SIZES``   — bid counts (default ``2000 6000 10000``)
- ``DECLOUD_SWEEP_WORKERS`` — pooled worker count (default ``4``)
- ``DECLOUD_SWEEP_CSV``     — also write the grid to this CSV path
"""

from __future__ import annotations

import csv
import os
import time

from repro.core import AuctionConfig, DecloudAuction, ShardPlan
from repro.workloads.generators import generate_zone_market

SIZES = tuple(
    int(token)
    for token in os.environ.get(
        "DECLOUD_SWEEP_SIZES", "2000 6000 10000"
    ).split()
)
WORKERS = int(os.environ.get("DECLOUD_SWEEP_WORKERS", "4"))
CSV_PATH = os.environ.get("DECLOUD_SWEEP_CSV", "").strip()

COLUMNS = [
    "n_bids", "locality", "mode", "seconds", "bids_per_second",
    "trades", "welfare", "welfare_ratio", "shards", "spillover_bids",
    "spillover_trades",
]


def _market(n_bids: int, locality: str):
    return generate_zone_market(
        n_bids // 2,
        n_zones=max(4, n_bids // 500),
        seed=42,
        kind="network",
        locality=locality,
        cross_zone_fraction=0.05,
    )[:2]


def _modes():
    yield "global", AuctionConfig(engine="vectorized")
    for label, workers in (("sharded", 0), (f"sharded-w{WORKERS}", WORKERS)):
        yield label, AuctionConfig(
            engine="vectorized",
            sharding=ShardPlan(kind="network", shard_workers=workers),
        )


def main() -> None:
    print(
        f"sharding sweep: sizes {list(SIZES)}, strong + weak locality, "
        f"pooled workers {WORKERS}\n"
    )
    header = (
        f"{'bids':>6}  {'locality':>8}  {'mode':>10}  {'time':>7}  "
        f"{'bids/s':>8}  {'trades':>6}  {'welfare':>10}  {'w-ratio':>7}  "
        f"{'shards':>6}  {'spill':>6}"
    )
    print(header)
    print("-" * len(header))
    rows = []
    for n_bids in SIZES:
        for locality in ("strong", "weak"):
            requests, offers = _market(n_bids, locality)
            global_welfare = None
            for mode, config in _modes():
                auction = DecloudAuction(config)
                start = time.perf_counter()
                outcome = auction.run(
                    requests, offers, evidence=b"sharding-sweep"
                )
                seconds = time.perf_counter() - start
                welfare = sum(m.welfare for m in outcome.matches)
                if global_welfare is None:
                    global_welfare = welfare
                ratio = welfare / max(global_welfare, 1e-12)
                stats = auction.last_shard_stats
                spill = (
                    stats.get("spillover_requests", 0)
                    + stats.get("spillover_offers", 0)
                )
                row = {
                    "n_bids": n_bids,
                    "locality": locality,
                    "mode": mode,
                    "seconds": round(seconds, 3),
                    "bids_per_second": round(n_bids / seconds, 1),
                    "trades": len(outcome.matches),
                    "welfare": round(welfare, 2),
                    "welfare_ratio": round(ratio, 4),
                    "shards": stats.get("shards", 1),
                    "spillover_bids": spill,
                    "spillover_trades": stats.get("spillover_trades", 0),
                }
                rows.append(row)
                print(
                    f"{n_bids:>6}  {locality:>8}  {mode:>10}  "
                    f"{seconds:>6.2f}s  {row['bids_per_second']:>8.1f}  "
                    f"{row['trades']:>6}  {welfare:>10.1f}  "
                    f"{ratio:>7.3f}  {row['shards']:>6}  {spill:>6}"
                )
        print()

    # the two sharded rows of every (size, locality) must agree exactly
    by_point = {}
    for row in rows:
        if row["mode"] != "global":
            by_point.setdefault(
                (row["n_bids"], row["locality"]), set()
            ).add(row["welfare"])
    assert all(len(v) == 1 for v in by_point.values()), (
        "sharded welfare diverged across worker counts"
    )

    if CSV_PATH:
        with open(CSV_PATH, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=COLUMNS)
            writer.writeheader()
            writer.writerows(rows)
        print(f"wrote {len(rows)} rows to {CSV_PATH}")
    print("OK")


if __name__ == "__main__":
    main()
