#!/usr/bin/env python
"""The two-phase bid exposure protocol, step by step — with an attack.

Walks the Fig. 2 workflow manually (no convenience wrappers) so each
phase is visible, then demonstrates the security properties:

* bids in the preamble are ciphertext — an observer learns nothing;
* a participant cannot swap its temporary key after the preamble is
  fixed (commitment check);
* a cheating leader proposing a doctored allocation is rejected by every
  verifying peer (re-execution mismatch).

Run:  python examples/sealed_bid_ledger.py
"""

from __future__ import annotations

from repro.common import TimeWindow
from repro.common.errors import InvalidBlockError, ProtocolError
from repro.ledger import Block, Miner
from repro.market import Offer, Request
from repro.protocol import DecloudAllocator, Participant


def main() -> None:
    # --- setup: three miners with identical allocation code -----------
    miners = [
        Miner(
            miner_id=f"miner-{i}",
            allocate=DecloudAllocator(),
            difficulty_bits=8,
        )
        for i in range(3)
    ]
    leader, verifier_1, verifier_2 = miners

    # fresh_key=True is the documented default for protocol deployments:
    # id-derived keys are reproducible but forgeable by anyone.
    alice = Participant(participant_id="alice", fresh_key=True)
    bob = Participant(participant_id="bob", fresh_key=True)
    carol_provider = Participant(participant_id="carol", fresh_key=True)

    bids = [
        (
            alice,
            Request(
                request_id="req-alice",
                client_id="alice",
                submit_time=0.0,
                resources={"cpu": 2, "ram": 4, "disk": 10},
                window=TimeWindow(0, 10),
                duration=4.0,
                bid=2.0,
            ),
        ),
        (
            bob,
            Request(
                request_id="req-bob",
                client_id="bob",
                submit_time=0.1,
                resources={"cpu": 4, "ram": 8, "disk": 20},
                window=TimeWindow(0, 10),
                duration=5.0,
                bid=3.5,
            ),
        ),
        (
            carol_provider,
            Offer(
                offer_id="off-carol",
                provider_id="carol",
                submit_time=0.2,
                resources={"cpu": 8, "ram": 32, "disk": 500},
                window=TimeWindow(0, 24),
                bid=1.0,
            ),
        ),
    ]

    # --- phase 1: sealed bidding --------------------------------------
    print("=== phase 1: sealed bids ===")
    for participant, bid in bids:
        tx = participant.seal(bid)
        for miner in miners:
            miner.accept_transaction(tx)
        print(
            f"  {participant.participant_id}: ciphertext "
            f"{tx.box.ciphertext[:16].hex()}... "
            f"(plaintext hidden, signature valid={tx.verify_signature()})"
        )

    preamble = leader.build_preamble()
    print(
        f"\npreamble mined: height={preamble.height}, "
        f"PoW nonce={preamble.pow_nonce}, "
        f"{len(preamble.transactions)} sealed bids"
    )

    # --- phase 2: reveal, allocate, verify -----------------------------
    print("\n=== phase 2: key disclosure and allocation ===")
    reveals = []
    for participant, _ in bids:
        reveals.extend(participant.reveals_for(preamble))
    body = leader.build_body(preamble, tuple(reveals))
    block = Block(preamble=preamble, body=body)
    print(f"allocation suggestion: {body.allocation['matches']}")

    for verifier in (verifier_1, verifier_2):
        verifier.accept_block(block)
        print(f"  {verifier.miner_id}: re-executed allocation, block accepted")
    leader.chain.append(block)

    # --- attack 1: tampered key reveal ---------------------------------
    print("\n=== attack: swapped temporary key ===")
    import dataclasses

    bad_reveal = dataclasses.replace(reveals[0], temp_key=b"\x00" * 32)
    try:
        leader.build_body(preamble, (bad_reveal,) + tuple(reveals[1:]))
    except ProtocolError as exc:
        print(f"  rejected: {exc}")

    # --- attack 2: cheating leader -------------------------------------
    print("\n=== attack: leader proposes a doctored allocation ===")
    doctored = dict(body.allocation)
    doctored["matches"] = []  # pretend nobody matched (censorship)
    bad_body = dataclasses.replace(body, allocation=doctored).signed_by(
        leader.keypair, preamble.hash()
    )
    # The doctored block extends the *old* tip, so verify against a fresh
    # miner that has not appended the honest block yet.
    fresh_verifier = Miner(
        miner_id="fresh", allocate=DecloudAllocator(), difficulty_bits=8
    )
    try:
        fresh_verifier.verify_block(Block(preamble=preamble, body=bad_body))
    except InvalidBlockError as exc:
        print(f"  rejected by re-execution: {exc}")

    print("\nfinal chain heights:", [len(m.chain) for m in miners])


if __name__ == "__main__":
    main()
