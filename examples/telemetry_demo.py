#!/usr/bin/env python
"""Telemetry-plane demo: worker shipping, stall flames, and SLO gates.

Three legs, one merged registry story (PR 10's ``repro.obs.telemetry``):

1. **Worker metric shipping** — a sharded block clears with
   ``Observability(telemetry=True)``: every shard runs under its own
   worker-local bundle and ships its full metric/trace delta home,
   where it merges deterministically under ``shard=…, worker=…``
   labels.  The demo proves the shipped phase timings sum to the
   parent-side totals.
2. **Pipeline stall profiler** — the async reactor runs a sustained
   market with a :class:`repro.obs.profile.PipelineProfiler` attached
   (per-round seal-wait / mine / verify / commit attribution on the
   virtual clock) and a :class:`repro.obs.TelemetryAggregator`
   subscribed to the runtime's periodic snapshot-diff frames.  The
   folded flame-graph export is written for CI to upload.
3. **SLO gate** — a short round history lands in a
   :class:`repro.obs.timeseries.TimeSeriesStore`, and declarative
   objectives (welfare floor, clear-latency ceiling) evaluate against
   it with error budgets; ``repro.obs.report --slo`` exits nonzero when
   one is violated.

Run:  python examples/telemetry_demo.py
      python examples/telemetry_demo.py --out telemetry-bundle
          # write artifacts (CI uploads the bundle)

Inspect the artifacts later with::

    python -m repro.obs.report --flame telemetry-bundle/stalls.folded
    python -m repro.obs.report --slo telemetry-bundle/slo.json \\
        telemetry-bundle/history.jsonl
"""

from __future__ import annotations

import argparse
import json
import os

from repro.core.auction import DecloudAuction
from repro.core.config import AuctionConfig, ShardPlan
from repro.obs import Observability, TelemetryAggregator
from repro.obs.export import write_prometheus
from repro.obs.profile import PipelineProfiler
from repro.obs.slo import Objective, evaluate, render
from repro.obs.timeseries import TimeSeriesStore
from repro.runtime import Runtime
from repro.sim.sustained import SustainedSpec, build_round_inputs
from repro.workloads.generators import generate_zone_market

EVIDENCE = b"telemetry-demo"


def run_sharded_with_telemetry(obs: Observability) -> None:
    """Leg 1: shards ship their metrics home and the sums reconcile."""
    requests, offers, _ = generate_zone_market(
        120, n_zones=3, seed=7, kind="network", locality="strong",
        cross_zone_fraction=0.25,
    )
    config = AuctionConfig(
        engine="vectorized",
        sharding=ShardPlan(kind="network", shard_workers=2),
    )
    outcome = DecloudAuction(config).run(
        requests, offers, evidence=EVIDENCE, obs=obs
    )

    shards = sorted(
        {
            dict(labels)["shard"]
            for (name, labels) in obs.registry.counters
            if name == "worker_tasks_total"
            and dict(labels).get("worker") == "shard"
        }
    )
    print(
        f"sharded clear: {len(outcome.matches)} trades, "
        f"welfare {outcome.welfare:.3f}"
    )
    print(f"worker payloads merged from shards: {', '.join(shards)}")

    parent: dict = {}
    shipped: dict = {}
    for (name, labels), series in obs.registry.histograms.items():
        items = dict(labels)
        if name == "shard_phase_seconds":
            parent[items["phase"]] = (
                parent.get(items["phase"], 0.0) + series.sum
            )
        if name == "auction_phase_seconds" and items.get("worker") == "shard":
            shipped[items["phase"]] = (
                shipped.get(items["phase"], 0.0) + series.sum
            )
    drift = max(
        abs(parent.get(phase, 0.0) - total) for phase, total in shipped.items()
    )
    assert drift < 1e-9, "shipped phase totals diverged from parent's"
    print(
        f"shipped phase seconds reconcile with parent totals across "
        f"{len(shipped)} phases (max drift {drift:.1e}s)"
    )


def run_runtime_with_profiler(out_dir: str | None) -> PipelineProfiler:
    """Leg 2: stall attribution + periodic frames into an aggregator."""
    spec = SustainedSpec(rounds=3, seed=7, difficulty_bits=4)
    seal_seed = f"sustained-{spec.seed}".encode("ascii")
    from repro.ledger.miner import Miner
    from repro.protocol.allocator import DecloudAllocator
    from repro.protocol.exposure import Participant

    participants = {
        pid: Participant(
            participant_id=pid, deterministic=True, seal_seed=seal_seed
        )
        for pid in [f"cli-{i}" for i in range(spec.num_clients)]
        + [f"prov-{j}" for j in range(spec.num_providers)]
    }
    miners = [
        Miner(
            miner_id=f"m{i}",
            allocate=DecloudAllocator(spec.config),
            difficulty_bits=spec.difficulty_bits,
        )
        for i in range(spec.num_miners)
    ]

    obs = Observability("telemetry-demo-runtime")
    profiler = PipelineProfiler()
    runtime = Runtime(
        miners,
        schedule_seed="telemetry-demo",
        obs=obs,
        profiler=profiler,
        telemetry_interval=0.5,
    )
    aggregator = TelemetryAggregator()
    aggregator.subscribe(runtime.transport)
    report = runtime.run(build_round_inputs(spec, participants))

    print(
        f"\nruntime: {len(report.committed)}/{spec.rounds} rounds committed "
        f"in {report.virtual_time:.2f} virtual seconds, occupancy "
        f"{obs.registry.gauge_value('pipeline_occupancy'):.2f}"
    )
    print("stall attribution (virtual seconds by cause):")
    for cause, total in sorted(profiler.cause_totals().items()):
        unit = "events" if cause == "wal_append" else "s"
        print(f"  {cause:<16} {total:8.3f} {unit}")
    print(
        f"aggregator merged {aggregator.frames} snapshot-diff frames "
        f"from {aggregator.nodes()}"
    )
    committed = aggregator.counter_total("runtime_rounds_committed_total")
    assert committed == len(report.committed), "aggregated view diverged"

    if out_dir:
        path = os.path.join(out_dir, "stalls.folded")
        profiler.write_folded(path)
        print(f"wrote flame-graph folded stacks to {path}")
    return profiler


def run_slo_gate(out_dir: str | None) -> None:
    """Leg 3: objectives with error budgets over a round history."""
    store_path = (
        os.path.join(out_dir, "history.jsonl") if out_dir else None
    )
    rows = []
    obs = Observability("telemetry-demo-slo")
    store = TimeSeriesStore(store_path) if store_path else None
    requests, offers, _ = generate_zone_market(
        60, n_zones=2, seed=3, kind="network", locality="strong",
    )
    for round_index in range(4):
        DecloudAuction(AuctionConfig(engine="vectorized")).run(
            requests, offers,
            evidence=EVIDENCE + str(round_index).encode(),
            obs=obs,
        )
        snapshot = obs.registry.snapshot()
        if store is not None:
            store.append(snapshot, round=round_index)
        rows.append({"meta": {"round": round_index}, **snapshot})

    objectives = [
        Objective(
            name="welfare-floor",
            series="auction_last_welfare",
            kind="gauge", op=">=", target=1.0, budget=0.25,
        ),
        Objective(
            name="clear-latency",
            series="auction_phase_seconds{phase=clear}",
            kind="latency", op="<=", target=0.5, budget=0.1,
        ),
    ]
    results = evaluate(rows, objectives)
    print("\nSLO evaluation:")
    print(render(results))
    assert all(r.ok for r in results), "demo objectives must hold"

    if out_dir:
        slo_path = os.path.join(out_dir, "slo.json")
        with open(slo_path, "w") as fh:
            json.dump(
                {
                    "objectives": [
                        {
                            "name": o.name, "series": o.series,
                            "kind": o.kind, "op": o.op, "target": o.target,
                            "budget": o.budget,
                        }
                        for o in objectives
                    ]
                },
                fh, indent=2,
            )
        print(f"wrote objectives to {slo_path} and history to {store_path}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", help="directory for artifacts (trace, metrics, flame, SLO)"
    )
    args = parser.parse_args()
    if args.out:
        os.makedirs(args.out, exist_ok=True)

    obs = Observability("telemetry-demo", telemetry=True)
    run_sharded_with_telemetry(obs)
    run_runtime_with_profiler(args.out)
    run_slo_gate(args.out)

    if args.out:
        trace_path = os.path.join(args.out, "telemetry-trace.jsonl")
        metrics_path = os.path.join(args.out, "telemetry-metrics.prom")
        obs.tracer.write_jsonl(trace_path)
        write_prometheus(obs.registry, metrics_path)
        print(
            f"\nwrote merged worker trace to {trace_path} and metrics to "
            f"{metrics_path}"
        )
    print("\nOK")


if __name__ == "__main__":
    main()
