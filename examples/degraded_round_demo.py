#!/usr/bin/env python
"""Flight recorder walkthrough: a seeded degraded round, post-mortem included.

Two protocol rounds over a lossy network (25% drops, 20% duplicates,
20% reorders) with one Byzantine client that never reveals its sealing
key:

* **Round 0** completes despite the faults — the withholding client's
  sealed bid is excluded (the paper's denial path) and the block clears
  on the surviving bids.  The flight recorder archives the round's
  causal trace as a frame.
* **Round 1** loses two of the three miners mid-round, so no proposal
  can reach quorum.  The resulting ``QuorumError`` makes the flight
  recorder dump everything it has — the archived round-0 frame plus the
  failing round's records — into a self-contained JSONL bundle.

The script then renders the bundle exactly like
``python -m repro.obs.report --flight <bundle>`` would: the causal tree
across every actor with the failing path marked by ``!``, naming the
excluded bidder and the dropped/duplicated messages that caused it.

Everything is seeded, so the bundle is identical on every run.

Run:  python examples/degraded_round_demo.py [--out DIR]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.common.errors import QuorumError
from repro.common.timewindow import TimeWindow
from repro.faults.actors import WithholdingParticipant
from repro.faults.network import UnreliableNetwork
from repro.faults.plan import FaultPlan
from repro.ledger.miner import Miner
from repro.market.bids import Offer, Request
from repro.obs import Observability
from repro.obs.flight import FlightRecorder, load_flight
from repro.obs.monitors import MonitorSuite
from repro.obs.report import render_flight
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import ExposureProtocol, Participant

SEED = "flight-demo"


def submit_market(protocol, clients, provider, round_index: int) -> None:
    for i, client in enumerate(clients):
        protocol.submit(
            client,
            Request(
                request_id=f"req-{round_index}-{i}",
                client_id=client.participant_id,
                submit_time=0.1 * i,
                resources={"cpu": 2, "ram": 4, "disk": 10},
                window=TimeWindow(0, 10),
                duration=4.0,
                bid=2.0 + 0.5 * i,
            ),
        )
    protocol.submit(
        provider,
        Offer(
            offer_id=f"off-{round_index}",
            provider_id=provider.participant_id,
            submit_time=0.0,
            resources={"cpu": 8, "ram": 32, "disk": 500},
            window=TimeWindow(0, 24),
            bid=0.5,
        ),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None,
        help="directory for the flight bundle (default: a temp dir)",
    )
    args = parser.parse_args()
    out_dir = args.out or tempfile.mkdtemp(prefix="decloud-flight-")

    plan = FaultPlan(
        seed=SEED,
        drop_rate=0.25,
        duplicate_rate=0.2,
        reorder_rate=0.2,
        max_delay=0.05,
    )
    network = UnreliableNetwork(plan=plan)
    obs = Observability(
        run_id="degraded-demo",
        monitors=MonitorSuite(),
        flight=FlightRecorder(capacity=4, out_dir=out_dir),
    )
    miners = [
        Miner(
            miner_id=f"miner-{m}",
            allocate=DecloudAllocator(),
            difficulty_bits=4,
        )
        for m in range(3)
    ]
    protocol = ExposureProtocol(miners=miners, network=network, obs=obs)

    seal_seed = SEED.encode("ascii")
    byzantine = WithholdingParticipant(
        participant_id="cli-0", deterministic=True, seal_seed=seal_seed
    )
    honest = Participant(
        participant_id="cli-1", deterministic=True, seal_seed=seal_seed
    )
    provider = Participant(
        participant_id="prov-0", deterministic=True, seal_seed=seal_seed
    )
    participants = [byzantine, honest, provider]

    print(f"flight bundles -> {out_dir}\n")
    print("round 0: lossy network + withholding client cli-0 ...")
    submit_market(protocol, [byzantine, honest], provider, 0)
    result = protocol.run_round(participants)
    print(
        f"  completed: {result.outcome.num_trades} trade(s), "
        f"{len(result.excluded_txids)} sealed bid(s) excluded"
    )

    print("round 1: two of three miners crash -> no quorum ...")
    submit_market(protocol, [byzantine, honest], provider, 1)
    network.crash_node("miner-1")
    network.crash_node("miner-2")
    try:
        protocol.run_round(participants)
    except QuorumError as exc:
        print(f"  failed as designed: {exc}")
    else:
        raise SystemExit("expected the quorum to fail")

    bundle = obs.flight.dumps[-1]
    print(f"  flight recorder dumped {bundle}\n")
    with open(bundle, "r", encoding="utf-8") as handle:
        meta, records, headers = load_flight(handle.read())
    report = render_flight(meta, records, headers)
    print(report)

    if "cli-0" not in report:
        raise SystemExit("bundle does not name the excluded bidder")
    print("\nOK")


if __name__ == "__main__":
    main()
