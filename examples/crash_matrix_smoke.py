#!/usr/bin/env python
"""Crash-matrix smoke: a seeded subset of crash points, CI-gated.

Runs the durable-round differential on a strided subset of WAL append
boundaries (every boundary × {clean, torn, corrupt} is the full matrix
covered by ``tests/test_crash_matrix.py``; CI samples it to stay fast).
For every sampled crash point the node is killed mid-append, restarted
from (snapshot, valid log prefix), and the recovered run must be
bit-identical to the uninterrupted reference — committed outcomes,
chain tip, state digest, zero monitor alerts.

On any mismatch the failing cell is re-run with a flight recorder
attached and its bundle is written to ``--out`` (CI uploads it as the
``crash-matrix`` artifact), then the script exits non-zero.

Run:  python examples/crash_matrix_smoke.py
Env:  CHAOS_CRASH_STRIDE (default 4), CHAOS_CRASH_ROUNDS (default 1)
"""

from __future__ import annotations

import argparse
import os

from repro.faults.crash import CrashPoint
from repro.obs import Observability
from repro.obs.flight import FlightRecorder
from repro.obs.monitors import MonitorSuite
from repro.sim.chaos import ChaosSpec, run_crash_matrix, run_durable_scenario


def smoke_spec(rounds: int) -> ChaosSpec:
    # degraded (one withholding client) but delivery-deterministic:
    # bit-equality needs the replayed round to see the exact message
    # stream the first attempt saw
    return ChaosSpec(
        num_clients=2,
        num_providers=1,
        num_miners=3,
        rounds=rounds,
        seed=5,
        withholding_clients=1,
        max_delay=0.0,
    )


def dump_mismatch_bundle(spec, point, out_dir: str) -> str:
    """Re-run one mismatched cell with a flight recorder and dump it."""
    flight = FlightRecorder(capacity=8, out_dir=out_dir)
    obs = Observability(
        run_id=f"crash-matrix-{point.at_append}-{point.mode}",
        monitors=MonitorSuite(),
        flight=flight,
    )
    run = run_durable_scenario(
        spec,
        crash_point=CrashPoint(at_append=point.at_append, mode=point.mode),
        snapshot_every=1,
        obs=obs,
    )
    return flight.dump(
        trigger="recovery-mismatch",
        error=(
            f"at_append={point.at_append} mode={point.mode}: "
            f"{point.detail} (crashes={run.crashes}, "
            f"replayed={run.replayed_rounds}, resumed={run.resumed_rounds})"
        ),
        round_index=point.at_append,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="crash-matrix-bundles",
        help="directory for flight bundles on mismatch",
    )
    args = parser.parse_args()
    stride = int(os.environ.get("CHAOS_CRASH_STRIDE", "4"))
    rounds = int(os.environ.get("CHAOS_CRASH_ROUNDS", "1"))
    spec = smoke_spec(rounds)

    matrix = run_crash_matrix(spec, snapshot_every=1, stride=stride)
    reference = matrix.reference
    print(
        f"crash-matrix smoke: {reference.append_count} WAL boundaries, "
        f"stride {stride} -> {len(matrix.points)} cells "
        f"(x3 modes), {rounds} round(s), seed {spec.seed}"
    )
    print(
        f"reference: {reference.rounds_completed} round(s) committed, "
        f"tip {reference.tip_hash[:12]}..., "
        f"digest {reference.state_digest[:12]}..."
    )
    header = f"{'append':>6}  {'mode':>7}  {'recovered':>9}  detail"
    print(header)
    print("-" * len(header))
    for point in matrix.points:
        verdict = "ok" if point.matches_reference else "MISMATCH"
        path = (
            "replayed" if point.replayed_rounds else
            "resumed" if point.resumed_rounds else "none"
        )
        print(
            f"{point.at_append:>6}  {point.mode:>7}  {verdict:>9}  "
            f"{point.detail or f'via {path} path'}"
        )

    if matrix.mismatches:
        for point in matrix.mismatches:
            bundle = dump_mismatch_bundle(spec, point, args.out)
            print(f"flight bundle for the failing cell: {bundle}")
        raise SystemExit(
            f"{len(matrix.mismatches)} crash point(s) did NOT recover "
            "bit-identically — durability contract violated"
        )
    print(
        f"\nall {len(matrix.points)} sampled crash points recovered "
        "bit-identically to the uninterrupted run"
    )


if __name__ == "__main__":
    main()
