#!/usr/bin/env python
"""Flexibility trade-offs: what a client gains by relaxing requirements.

Reproduces the Fig. 5d-5f story at example scale: as the supply and
demand distributions diverge (similarity = 1 - KLD drops), strict
clients increasingly fail to match, while clients accepting 80% of their
requested resources keep finding hosts — at higher welfare.

Run:  python examples/flexibility_tradeoffs.py
"""

from __future__ import annotations

from repro.experiments.sweeps import eval_config
from repro.sim import MarketSimulator
from repro.workloads import DivergenceScenario, tilt_for_similarity


def main() -> None:
    print("=== satisfaction / welfare vs similarity and flexibility ===")
    print(
        f"{'similarity':>10} {'flexibility':>12} {'satisfaction':>13} "
        f"{'welfare':>9} {'trades':>7}"
    )
    for target in (0.9, 0.7, 0.5, 0.3, 0.1):
        tilt = tilt_for_similarity(target)
        for flexibility in (1.0, 0.8, 0.6):
            sat_sum = welfare_sum = trades_sum = 0.0
            seeds = range(3)
            for seed in seeds:
                scenario = DivergenceScenario(
                    tilt=tilt,
                    n_requests=120,
                    n_offers=60,
                    flexibility=flexibility,
                    seed=seed,
                )
                requests, offers = scenario.generate()
                simulator = MarketSimulator(config=eval_config(), seed=seed)
                metrics, _, _ = simulator.run_block(requests, offers)
                sat_sum += metrics.decloud_satisfaction
                welfare_sum += metrics.decloud_welfare
                trades_sum += metrics.decloud_trades
            n = len(list(seeds))
            print(
                f"{target:>10.1f} {flexibility:>12.1f} "
                f"{sat_sum / n:>13.3f} {welfare_sum / n:>9.1f} "
                f"{trades_sum / n:>7.1f}"
            )
        print()

    print(
        "Reading: at every similarity level the 80%-flexible clients match\n"
        "more often and generate more welfare than strict ones; the gap is\n"
        "what a client buys by tolerating a slightly smaller machine."
    )


if __name__ == "__main__":
    main()
