#!/usr/bin/env python
"""Privacy-sensitive workloads: SGX demands plus remote attestation.

A hospital wants its analytics container inside a hardware enclave
(§II-D).  The demand is expressed as a strict ``sgx`` resource, so the
mechanism only matches SGX-capable machines; before entering the
agreement, the client additionally checks the provider's *attestation
quote* — a vendor-signed proof that the machine really runs the expected
enclave runtime — and denies the match when the proof is missing or
stale.

Run:  python examples/private_enclave_market.py
"""

from __future__ import annotations

from repro.common import TimeWindow
from repro.core import AuctionConfig, DecloudAuction
from repro.market import Offer, Request
from repro.protocol import (
    AttestationRegistry,
    AttestationService,
    enforce_attestation,
)

MEASUREMENT = "sha256:decloud-enclave-runtime-v1"


def main() -> None:
    offers = [
        Offer(
            offer_id="off-attested",
            provider_id="telco-edge",
            submit_time=0.0,
            resources={"cpu": 8, "ram": 32, "sgx": 1.0},
            window=TimeWindow(0, 24),
            bid=3.0,
        ),
        Offer(
            offer_id="off-claims-sgx",  # claims SGX, never proves it
            provider_id="shady-host",
            submit_time=0.1,
            resources={"cpu": 8, "ram": 32, "sgx": 1.0},
            window=TimeWindow(0, 24),
            bid=1.5,
        ),
        Offer(
            offer_id="off-plain",
            provider_id="campus-lab",
            submit_time=0.2,
            resources={"cpu": 8, "ram": 32},
            window=TimeWindow(0, 24),
            bid=1.0,
        ),
    ]
    requests = [
        Request(
            request_id="req-health-analytics",
            client_id="hospital",
            submit_time=1.0,
            resources={"cpu": 4, "ram": 8, "sgx": 1.0},  # sgx strict
            window=TimeWindow(0, 24),
            duration=6.0,
            bid=4.0,
        ),
        Request(
            request_id="req-web-cache",
            client_id="cdn",
            submit_time=1.1,
            resources={"cpu": 2, "ram": 4},
            window=TimeWindow(0, 24),
            duration=8.0,
            bid=2.0,
        ),
    ]

    outcome = DecloudAuction(AuctionConfig(cluster_breadth=2)).run(
        requests, offers, evidence=b"enclave-market"
    )
    print("=== allocation ===")
    for match in outcome.matches:
        print(
            f"  {match.request.request_id:<24} -> {match.offer.offer_id:<16}"
            f" (provider {match.offer.provider_id})"
        )

    # Attestation: only the telco edge completed remote attestation.
    service = AttestationService()
    registry = AttestationRegistry(service=service)
    registry.present(service.issue_quote("telco-edge", MEASUREMENT, now=0.5))

    violations = enforce_attestation(
        outcome.matches,
        registry,
        expected_measurement=MEASUREMENT,
        now=1.0,
    )
    print("\n=== attestation screening ===")
    if violations:
        for match in violations:
            print(
                f"  DENY {match.request.request_id}: provider "
                f"{match.offer.provider_id} has no valid quote"
            )
    else:
        print("  every SGX match is backed by a valid quote")

    # The hospital's container must never be flagged when it landed on
    # the attested machine; the CDN's never needs a quote at all.
    for match in outcome.matches:
        if match.request.request_id == "req-health-analytics":
            if match.offer.provider_id == "telco-edge":
                assert match not in violations
            else:
                assert match in violations
        if match.request.request_id == "req-web-cache":
            assert match not in violations
    print("\nSGX policy enforced end to end  OK")


if __name__ == "__main__":
    main()
