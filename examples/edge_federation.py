#!/usr/bin/env python
"""Edge federation on a private blockchain — the full two-phase protocol.

The paper's §II-A: "some mid-scale or even large cloud providers can have
private blockchains, trading in DeCloud to balance the load and optimize
machine running costs."  This example runs that scenario end to end:

1. three federated operators run miner nodes (a private chain);
2. tenants seal their container requests with temporary keys, operators
   seal machine offers — nobody (miners included) can read a bid;
3. the leader mines the preamble, participants reveal keys, the leader
   computes the allocation, and every peer miner re-executes and
   verifies it before the block is accepted;
4. clients accept/deny the suggested matches via the smart-contract
   layer, with reputation tracked across rounds.

Run:  python examples/edge_federation.py
"""

from __future__ import annotations

from repro.common import TimeWindow, make_generator
from repro.market import Offer, Request
from repro.protocol import (
    AllocationContract,
    Participant,
    build_miner_network,
)


def main() -> None:
    rng = make_generator("edge-federation")
    protocol = build_miner_network(num_miners=3, difficulty_bits=8)
    print("=== private chain: 3 federated operator miners ===")

    operators = [
        Participant(participant_id=f"operator-{c}", fresh_key=True)
        for c in "abc"
    ]
    tenants = [
        Participant(participant_id=f"tenant-{i:02d}", fresh_key=True)
        for i in range(9)
    ]

    # Operators post spare machines; tenants post container requests.
    for round_index in range(3):
        start = 24.0 * round_index
        for j, operator in enumerate(operators):
            cores = int(rng.choice([4, 8, 16]))
            offer = Offer(
                offer_id=f"off-r{round_index}-{operator.participant_id}",
                provider_id=operator.participant_id,
                submit_time=start + 0.01 * j,
                resources={"cpu": cores, "ram": cores * 4, "disk": 300},
                window=TimeWindow(start, start + 24.0),
                bid=0.05 * cores * 24.0 * float(rng.uniform(0.8, 1.2)),
            )
            protocol.submit(operator, offer)
        for i, tenant in enumerate(tenants):
            cores = float(rng.choice([1, 2, 4]))
            duration = float(rng.uniform(2.0, 10.0))
            request = Request(
                request_id=f"req-r{round_index}-{tenant.participant_id}",
                client_id=tenant.participant_id,
                submit_time=start + 0.1 + 0.01 * i,
                resources={"cpu": cores, "ram": cores * 3, "disk": 20},
                window=TimeWindow(start, start + 24.0),
                duration=duration,
                bid=0.08 * cores * duration * float(rng.uniform(0.8, 2.0)),
            )
            protocol.submit(tenant, request)

        result = protocol.run_round(tenants + operators)
        outcome = result.outcome
        print(
            f"\nblock {result.block.height}: verified by "
            f"{len(result.accepted_by)} miners, trades={outcome.num_trades}, "
            f"welfare={outcome.welfare:.3f}"
        )

        # Smart-contract agreement: clients accept their matches; one
        # picky tenant denies, taking a reputation penalty.
        leader = protocol.miners[0]
        contract = AllocationContract(chain=leader.chain)
        block_hash = result.block.hash()
        client_index = {
            match.request.request_id: match.request.client_id
            for match in outcome.matches
        }
        contract.register_block(block_hash, client_index)
        for k, match in enumerate(outcome.matches):
            client = match.request.client_id
            if k == 0 and round_index == 1:
                contract.deny(client, block_hash, match.request.request_id)
                print(
                    f"  {client} DENIED its match; reputation now "
                    f"{contract.reputation.score(client):.2f}; offer "
                    f"{match.offer.offer_id} queued for resubmission"
                )
            else:
                contract.accept(client, block_hash, match.request.request_id)
        agreed = len(contract.agreements())
        print(f"  agreements registered: {agreed}")

    print("\n=== chain state ===")
    for miner in protocol.miners:
        ok = miner.chain.verify_linkage()
        print(
            f"  {miner.miner_id}: height={len(miner.chain)}, "
            f"linkage+PoW valid={ok}"
        )


if __name__ == "__main__":
    main()
