#!/usr/bin/env python
"""Online market: continuous arrivals cleared in block rounds (§VI).

Participants arrive as Poisson streams; the chain clears whatever is
pending every block interval; unallocated bids resubmit automatically
until their windows expire.  The script reports how the block interval
(the chain's throughput) trades off against client-perceived delay,
served fraction, and welfare — the "online appearance ... with some
observed delay" the paper describes, quantified.

Run:  python examples/online_market.py
"""

from __future__ import annotations

from repro.analysis import clearing_report
from repro.experiments.sweeps import eval_config
from repro.sim import ArrivalProcess, OnlineSimulator

HORIZON = 24.0  # hours


def main() -> None:
    process = ArrivalProcess(
        request_rate=12.0,  # clients per hour
        offer_rate=5.0,  # machines per hour
        horizon=HORIZON,
        request_patience=10.0,
        offer_span=24.0,
        seed=11,
    )
    requests, offers = process.generate()
    print(
        f"=== arrival stream: {len(requests)} requests, "
        f"{len(offers)} offers over {HORIZON:.0f} h ==="
    )

    print(
        f"\n{'interval (h)':>12} {'rounds':>7} {'trades':>7} "
        f"{'welfare':>9} {'served':>8} {'delay (h)':>10}"
    )
    for interval in (0.5, 1.0, 2.0, 4.0, 8.0):
        simulator = OnlineSimulator(
            config=eval_config(), block_interval=interval, seed=11
        )
        result = simulator.run(requests, offers, horizon=HORIZON)
        delay_hours = result.mean_delay_blocks * interval
        print(
            f"{interval:>12.1f} {len(result.rounds):>7} "
            f"{result.total_trades:>7} {result.total_welfare:>9.1f} "
            f"{result.served_fraction:>8.2%} {delay_hours:>10.2f}"
        )

    # Zoom into one configuration round by round.
    print("\n=== per-round view (interval 2 h) ===")
    simulator = OnlineSimulator(
        config=eval_config(), block_interval=2.0, seed=11
    )
    result = simulator.run(requests, offers, horizon=HORIZON)
    for record in result.rounds:
        report = clearing_report(record.outcome)
        print(
            f"  t={record.time:>5.1f}h pending={record.n_requests:>3}/"
            f"{record.n_offers:<3} {report}"
        )
    print(
        f"\nexpired without service: {len(result.expired_requests)} "
        f"({1 - result.served_fraction:.1%})"
    )
    print(
        "Reading: shorter block intervals cut waiting time; the trade and\n"
        "welfare totals stay roughly level because unallocated bids simply\n"
        "resubmit — the mechanism is robust to the chain's block rate."
    )


if __name__ == "__main__":
    main()
