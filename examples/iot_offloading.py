#!/usr/bin/env python
"""IoT/AR offloading: latency and SGX as first-class resources.

The paper's bidding language treats "generic properties essential for
edge computing, such as network latency or physical location, also as a
specific resource" (§II-C), and privacy-sensitive clients can require a
trusted execution environment (§II-D).  This example shows both:

* an AR renderer weights *low latency* heavily (significance 0.9) but is
  flexible about disk;
* a health-data aggregator strictly requires SGX (significance 1.0 — a
  hard constraint);
* a batch analytics job cares only about cores and is happy anywhere.

Latency is encoded as ``headroom = max_tolerable_ms - actual_ms`` so that
"more is better" like every other resource.

Run:  python examples/iot_offloading.py
"""

from __future__ import annotations

from repro.common import TimeWindow
from repro.core import AuctionConfig, DecloudAuction, quality_of_match
from repro.core.matching import block_maxima
from repro.market import Offer, Request

MAX_TOLERABLE_MS = 100.0


def latency_headroom(actual_ms: float) -> float:
    return max(0.0, MAX_TOLERABLE_MS - actual_ms)


def main() -> None:
    offers = [
        Offer(
            offer_id="off-5g-tower",  # close, SGX-capable, pricey
            provider_id="telco",
            submit_time=0.0,
            resources={
                "cpu": 8,
                "ram": 16,
                "latency": latency_headroom(5.0),
                "sgx": 1.0,
            },
            window=TimeWindow(0, 12),
            bid=6.0,
            location="cell-0231",
        ),
        Offer(
            offer_id="off-campus-nuc",  # near, no SGX, cheap
            provider_id="university",
            submit_time=0.1,
            resources={
                "cpu": 4,
                "ram": 8,
                "latency": latency_headroom(18.0),
            },
            window=TimeWindow(0, 12),
            bid=1.5,
            location="campus",
        ),
        Offer(
            offer_id="off-remote-dc",  # far, big, cheap per core
            provider_id="cloud-co",
            submit_time=0.2,
            resources={
                "cpu": 32,
                "ram": 128,
                "latency": latency_headroom(80.0),
                "sgx": 1.0,
            },
            window=TimeWindow(0, 12),
            bid=8.0,
            location="region-dc",
        ),
    ]

    requests = [
        Request(
            request_id="req-ar-renderer",
            client_id="ar-app",
            submit_time=1.0,
            resources={
                "cpu": 4,
                "ram": 4,
                "latency": latency_headroom(10.0),  # wants <= 10 ms
            },
            significance={"cpu": 0.6, "ram": 0.4, "latency": 0.9},
            window=TimeWindow(0, 12),
            duration=3.0,
            bid=2.4,
            flexibility=0.8,
        ),
        Request(
            request_id="req-health-agg",
            client_id="hospital",
            submit_time=1.1,
            resources={"cpu": 2, "ram": 4, "sgx": 1.0},
            significance={"cpu": 0.5, "ram": 0.5, "sgx": 1.0},  # SGX is hard
            window=TimeWindow(0, 12),
            duration=6.0,
            bid=3.0,
        ),
        Request(
            request_id="req-batch-analytics",
            client_id="data-team",
            submit_time=1.2,
            resources={"cpu": 16, "ram": 64},
            significance={"cpu": 0.8, "ram": 0.8},
            window=TimeWindow(0, 12),
            duration=8.0,
            bid=5.0,
            flexibility=0.7,
        ),
    ]

    print("=== quality-of-match scores (Eq. 18) ===")
    maxima = block_maxima(requests, offers)
    for request in requests:
        scores = {
            offer.offer_id: round(quality_of_match(request, offer, maxima), 3)
            for offer in offers
        }
        print(f"  {request.request_id:<22} {scores}")

    auction = DecloudAuction(AuctionConfig(cluster_breadth=2))
    outcome = auction.run(requests, offers, evidence=b"iot-offloading")
    print("\n=== allocation ===")
    for match in outcome.matches:
        print(
            f"  {match.request.request_id:<22} -> {match.offer.offer_id:<16}"
            f" pays {match.payment:.4f}"
        )
    for request in outcome.unmatched_requests + outcome.reduced_requests:
        print(f"  {request.request_id:<22} -> (not allocated)")

    # The SGX-hard request must never land on a non-SGX machine.
    for match in outcome.matches:
        if match.request.request_id == "req-health-agg":
            assert "sgx" in match.offer.resources, "hard constraint violated"
            print("\nSGX hard constraint respected  OK")


if __name__ == "__main__":
    main()
