#!/usr/bin/env python
"""Chaos sweep: how the decentralized auction degrades under faults.

Runs the full ledger-backed protocol over a fault-injecting network and
sweeps the message drop rate while one client withholds its keys and the
round-robin leader equivocates.  For each fault level it reports:

* auction success rate (rounds that produced a quorum-verified block),
* welfare retention versus the identical fault-free market,
* how many sealed bids were excluded (the paper's denial path),
* how often peers rejected a leader and fell back to the next miner,
* runtime monitor alerts — every completed block is checked by the
  mechanism monitors (budget balance, IR, resource conservation, ...),
  so any non-zero count means a block violated a §IV invariant.

The sweep is fully deterministic: rerunning this script reproduces the
exact same curve.

Run:  python examples/chaos_sweep.py
"""

from __future__ import annotations

import os

from repro.sim.chaos import ChaosSpec, run_chaos_sweep

DROP_RATES = (0.0, 0.1, 0.2, 0.3, 0.5)


def main() -> None:
    rounds = int(os.environ.get("CHAOS_ROUNDS", "3"))
    spec = ChaosSpec(
        num_clients=6,
        num_providers=3,
        num_miners=3,
        rounds=rounds,
        seed=7,
        difficulty_bits=4,
        withholding_clients=1,
        tampering_clients=1,
        equivocating_leader=True,
        reorder_rate=0.1,
        duplicate_rate=0.05,
    )
    print(
        "chaos sweep: 1 withholding + 1 tampering client, "
        "equivocating leader, reorder 10%, duplicates 5%"
    )
    print(f"{rounds} rounds per point, 3 miners, quorum = 2\n")
    header = (
        f"{'drop':>5}  {'success':>8}  {'retention':>9}  "
        f"{'excluded':>8}  {'fallbacks':>9}  {'msgs lost':>9}  "
        f"{'alerts':>6}"
    )
    print(header)
    print("-" * len(header))
    alerts = 0
    failed_rounds = 0
    for point in run_chaos_sweep(spec, drop_rates=DROP_RATES, monitored=True):
        print(
            f"{point.drop_rate:>5.2f}  "
            f"{point.success_rate:>8.2f}  "
            f"{point.welfare_retention:>9.2f}  "
            f"{point.excluded_bids:>8d}  "
            f"{point.fallback_rounds:>9d}  "
            f"{point.messages_dropped:>9d}  "
            f"{point.monitor_alerts:>6d}"
        )
        alerts += point.monitor_alerts
        if point.integrity_failures:
            raise SystemExit(
                "mechanism integrity violated under faults — "
                f"{point.integrity_failures} block(s) diverged from the "
                "fault-free replay"
            )
        failed_rounds += len(point.errors)
        for error in point.errors:
            print(f"        degraded: {error}")
    if alerts:
        raise SystemExit(
            f"mechanism monitors raised {alerts} alert(s) — a completed "
            "block violated a §IV invariant"
        )
    # the sweep is deterministic, so CI can gate on an exact failure
    # budget (default: none) rather than treating degraded rounds as
    # informational
    failure_budget = int(os.environ.get("CHAOS_MAX_FAILED_ROUNDS", "0"))
    if failed_rounds > failure_budget:
        raise SystemExit(
            f"{failed_rounds} round(s) failed to commit a block "
            f"(budget {failure_budget}) — see 'degraded' lines above"
        )
    print(
        "\nevery completed block matched a fault-free replay on its "
        "surviving bid set and passed all mechanism monitors — faults "
        "shrink the market, never corrupt the mechanism"
    )


if __name__ == "__main__":
    main()
