#!/usr/bin/env python
"""Quickstart: clear a small edge-cloud market with the DeCloud auction.

Builds a handful of client requests and provider offers by hand, runs the
truthful double auction, and prints the matches, payments, and the
economic invariants (individual rationality, strong budget balance).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.common import TimeWindow
from repro.core import AuctionConfig, DecloudAuction
from repro.market import Offer, Request


def build_market():
    """Three providers (different machine sizes), six clients."""
    offers = [
        Offer(
            offer_id="off-small",
            provider_id="garage-rack",
            submit_time=0.0,
            resources={"cpu": 4, "ram": 16, "disk": 200},
            window=TimeWindow(0, 24),
            bid=2.0,  # cost of offering the machine for the whole day
            location="helsinki-edge",
        ),
        Offer(
            offer_id="off-medium",
            provider_id="campus-lab",
            submit_time=0.1,
            resources={"cpu": 8, "ram": 32, "disk": 400},
            window=TimeWindow(0, 24),
            bid=4.5,
            location="helsinki-edge",
        ),
        Offer(
            offer_id="off-large",
            provider_id="regional-dc",
            submit_time=0.2,
            resources={"cpu": 16, "ram": 64, "disk": 800},
            window=TimeWindow(0, 24),
            bid=9.0,
            location="espoo-edge",
        ),
    ]
    requests = []
    demands = [
        ("video-transcode", {"cpu": 2, "ram": 4, "disk": 50}, 4.0, 1.2),
        ("ar-renderer", {"cpu": 4, "ram": 8, "disk": 20}, 2.0, 1.8),
        ("iot-aggregator", {"cpu": 1, "ram": 2, "disk": 100}, 8.0, 0.9),
        ("ml-inference", {"cpu": 8, "ram": 16, "disk": 60}, 3.0, 2.5),
        ("web-cache", {"cpu": 2, "ram": 8, "disk": 200}, 12.0, 1.5),
        ("batch-job", {"cpu": 4, "ram": 16, "disk": 40}, 6.0, 0.4),
    ]
    for i, (name, resources, duration, bid) in enumerate(demands):
        requests.append(
            Request(
                request_id=f"req-{name}",
                client_id=f"cli-{name}",
                submit_time=1.0 + 0.1 * i,
                resources=resources,
                window=TimeWindow(0, 24),
                duration=duration,
                bid=bid,
                location="helsinki-edge",
            )
        )
    return requests, offers


def main() -> None:
    requests, offers = build_market()
    auction = DecloudAuction(AuctionConfig(cluster_breadth=3))
    outcome = auction.run(requests, offers, evidence=b"quickstart-block")

    print("=== DeCloud quickstart ===")
    print(f"requests: {len(requests)}, offers: {len(offers)}")
    print(f"trades: {outcome.num_trades}, welfare: {outcome.welfare:.3f}")
    print(f"clearing price(s): {[round(p, 4) for p in outcome.prices]}")
    print()
    for match in outcome.matches:
        utility = match.request.bid - match.payment
        print(
            f"  {match.request.request_id:<20} -> {match.offer.offer_id:<12}"
            f" pays {match.payment:.4f}  (bid {match.request.bid:.2f},"
            f" utility {utility:+.4f})"
        )
    if outcome.reduced_requests:
        names = [r.request_id for r in outcome.reduced_requests]
        print(f"\n  excluded by trade reduction: {names}")
    if outcome.unmatched_requests:
        names = [r.request_id for r in outcome.unmatched_requests]
        print(f"  unmatched: {names}")

    # Why didn't the unmatched request trade?  Ask the mechanism.
    if outcome.unmatched_requests:
        from repro.core import explain_request

        print("\n=== explainability ===")
        explanation = explain_request(
            requests, offers, outcome,
            outcome.unmatched_requests[0].request_id,
        )
        print(explanation.render())

    # Economic invariants of the mechanism:
    print("\n=== invariants ===")
    for match in outcome.matches:
        assert match.payment <= match.request.bid + 1e-9, "IR violated!"
    print("individual rationality: every client pays at most its bid  OK")
    payments = outcome.total_payments
    revenues = sum(outcome.revenues().values())
    assert abs(payments - revenues) < 1e-9
    print(
        f"strong budget balance: payments {payments:.4f} == "
        f"revenues {revenues:.4f}  OK"
    )


if __name__ == "__main__":
    main()
