#!/usr/bin/env python
"""Pipelined runtime demo: overlap rounds, commit the same chain.

Drives one sustained-arrival market (bids trickle in on seeded
exponential inter-arrival times) through the async reactor twice —
pipelined, then back-to-back (the lockstep schedule on the virtual
clock) — and once through the synchronous ``ExposureProtocol``.  Prints
the per-round timeline, the virtual-clock throughput win, and checks
that all three schedules committed **bit-identical** blocks, which is
the whole point: pipelining reshapes the schedule, never the chain.

Run:  python examples/pipelined_runtime_demo.py

See docs/RUNTIME.md for the architecture and determinism contract.
"""

from __future__ import annotations

from repro.ledger.miner import Miner
from repro.protocol.allocator import DecloudAllocator
from repro.protocol.exposure import Participant
from repro.runtime import Runtime, RuntimeReport
from repro.sim.sustained import (
    SustainedSpec,
    build_round_inputs,
    run_sustained,
)

SPEC = SustainedSpec(
    num_clients=4,
    num_providers=2,
    num_miners=3,
    rounds=3,
    seed=7,
    difficulty_bits=4,
    mean_interarrival=0.18,
)


def _miners() -> list:
    return [
        Miner(
            miner_id=f"m{i}",
            allocate=DecloudAllocator(SPEC.config),
            difficulty_bits=SPEC.difficulty_bits,
        )
        for i in range(SPEC.num_miners)
    ]


def _participants() -> dict:
    # the same id-derived deterministic sealing run_sustained uses, so
    # the lockstep engine below seals byte-identical transactions
    seal_seed = f"sustained-{SPEC.seed}".encode("ascii")
    ids = [f"cli-{i}" for i in range(SPEC.num_clients)] + [
        f"prov-{j}" for j in range(SPEC.num_providers)
    ]
    return {
        pid: Participant(
            participant_id=pid, deterministic=True, seal_seed=seal_seed
        )
        for pid in ids
    }


def _drive(pipeline: bool) -> RuntimeReport:
    runtime = Runtime(
        _miners(), schedule_seed="demo-sched", pipeline=pipeline
    )
    return runtime.run(build_round_inputs(SPEC, _participants()))


def _timeline(label: str, report: RuntimeReport) -> None:
    print(f"\n{label}")
    print("  round  seal-open  committed  overlapped  block")
    for rnd in report.rounds:
        block_hash = rnd.result.block.hash()[:12] if rnd.result else "-"
        print(
            f"  {rnd.index:>5}  {rnd.seal_opened_at:>9.2f}"
            f"  {rnd.finished_at:>9.2f}  {str(rnd.overlapped):>10}"
            f"  {block_hash}"
        )
    print(
        f"  virtual time {report.virtual_time:.2f}s, "
        f"{len(report.committed)}/{len(report.rounds)} committed, "
        f"{report.overlap_rounds} overlapped, "
        f"{report.messages_delivered} messages delivered"
    )


def main() -> None:
    print(
        f"sustained market: {SPEC.num_clients} clients, "
        f"{SPEC.num_providers} providers, {SPEC.num_miners} miners, "
        f"{SPEC.rounds} rounds, mean inter-arrival "
        f"{SPEC.mean_interarrival}s (virtual)"
    )

    pipelined = _drive(pipeline=True)
    sequential = _drive(pipeline=False)
    _timeline("pipelined reactor", pipelined)
    _timeline("same reactor, pipeline off (lockstep schedule)", sequential)

    speedup = (
        pipelined.rounds_per_virtual_second
        / sequential.rounds_per_virtual_second
    )
    print(
        f"\nthroughput: pipelined "
        f"{pipelined.rounds_per_virtual_second:.3f} rounds/vs vs "
        f"{sequential.rounds_per_virtual_second:.3f} rounds/vs "
        f"({speedup:.2f}x)"
    )

    hashes = [
        tuple(r.block.hash() for r in report.committed)
        for report in (pipelined, sequential)
    ]
    lockstep = run_sustained(SPEC, engine="lockstep")
    hashes.append(lockstep.block_hashes)
    assert hashes[0] == hashes[1] == hashes[2], "schedules forked the chain"
    print(
        "pipelined, sequential, and lockstep-engine chains are "
        "bit-identical"
    )
    assert speedup > 1.0
    print("OK")


if __name__ == "__main__":
    main()
